"""Ablation: deterministic sampling aliasing and randomized intervals.

Paper §4.4: "if a program performs some uncommon behavior every 1000th
loop iteration, any sample interval that is a multiple of 1000 could
result in the uncommon behavior being observed on every sample"; the
suggested fix is a small random factor in the interval. We construct
exactly that pathology — a loop whose behaviour has period 2, sampled
at an even interval — and show the randomized counter recovering the
lost accuracy while plain counter sampling locks onto one phase.
"""

from benchmarks.conftest import once
from repro.frontend import compile_baseline
from repro.harness import render_table
from repro.instrument import FieldAccessInstrumentation
from repro.profiles import overlap_percentage
from repro.sampling import (
    CounterTrigger,
    RandomizedCounterTrigger,
    SamplingFramework,
    Strategy,
)
from repro.vm import run_program

PERIODIC = """
class Phase { field peven; field podd; }

func main() {
    var p = new Phase;
    var total = 0;
    for (var i = 0; i < 8000; i = i + 1) {
        if (i % 2 == 0) { p.peven = p.peven + 1; }
        else { p.podd = p.podd + 1; }
        total = (total + i) % 1000003;
    }
    print(total);
    return total;
}
"""


def measure(baseline, trigger):
    instr = FieldAccessInstrumentation()
    program = SamplingFramework(Strategy.FULL_DUPLICATION).transform(
        baseline, instr
    )
    run_program(program, trigger=trigger)
    return instr.profile


def sweep(save):
    baseline = compile_baseline(PERIODIC)
    perfect = measure(baseline, CounterTrigger(1))
    rows = []
    for label, trigger in (
        ("counter@100 (aliased)", CounterTrigger(100)),
        ("counter@101", CounterTrigger(101)),
        ("randomized@100 j=13", RandomizedCounterTrigger(100, jitter=13)),
        ("randomized@100 j=31", RandomizedCounterTrigger(100, jitter=31)),
    ):
        sampled = measure(baseline, trigger)
        rows.append([label, overlap_percentage(perfect, sampled)])
    text = render_table(
        ["trigger", "overlap%"],
        rows,
        title="Ablation: periodic behaviour vs sampling interval (§4.4)",
    )
    save("ablation_jitter", text)
    return {row[0]: row[1] for row in rows}


def test_randomized_interval_breaks_aliasing(benchmark, save):
    overlaps = once(benchmark, lambda: sweep(save))
    # period-2 behaviour + even interval = locked to one phase (~50%)
    assert overlaps["counter@100 (aliased)"] < 60.0
    # jitter restores most of the accuracy
    assert overlaps["randomized@100 j=13"] > 75.0
    assert overlaps["randomized@100 j=31"] > 75.0
