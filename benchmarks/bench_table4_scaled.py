"""Table 4 at larger scale: accuracy is a function of sample count.

EXPERIMENTS.md claims our accuracy knee sits at smaller intervals only
because default-scale runs execute ~100x fewer checks than the paper's.
This bench runs a three-workload subset at 6x scale and checks the
prediction: with ~6x the checks, interval 100's accuracy climbs toward
the paper's 98-99 band and interval 1000 becomes usable.
"""

from benchmarks.conftest import once
from repro.harness import render_table
from repro.harness.sweeps import interval_sweep

SCALE = 6
WORKLOADS = ("javac", "jack", "jess")


def sweep(runner, save):
    rows = []
    for name in WORKLOADS:
        points = interval_sweep(
            runner, name, intervals=(10, 100, 1000), scale=SCALE
        )
        for p in points:
            rows.append(
                [f"{name}@{p.interval}", p.samples, p.overhead_pct,
                 p.accuracy_pct]
            )
    text = render_table(
        ["config", "samples", "overhead%", "accuracy%"],
        rows,
        title=f"Table 4 subset at scale {SCALE} (more checks -> "
        "accuracy knee moves right)",
    )
    save("table4_scaled", text)
    return {row[0]: row for row in rows}


def test_accuracy_tracks_sample_count(benchmark, runner, save):
    rows = once(benchmark, lambda: sweep(runner, save))
    for name in WORKLOADS:
        at_100 = rows[f"{name}@100"]
        at_1000 = rows[f"{name}@1000"]
        # at 6x scale interval 100 collects a healthy sample set and is
        # comfortably accurate...
        assert at_100[1] > 50
        assert at_100[3] > 80.0, name
        # ...and more samples at the same interval means more accuracy
        # than the same interval saw at scale 1 (cross-checked against
        # the recorded default-scale sweeps by eye; here we just require
        # non-degenerate accuracy at interval 1000)
        assert at_1000[3] > 40.0, name
