"""Ablation: the usable operating range of the sample interval.

Table 4's practical conclusion — "a large range of sample intervals
... offer high accuracy with low overhead" — restated as a Pareto
sweep per workload: the usable band (accuracy >= 80%, overhead <= 15%)
must span a multiplicative range of intervals. (At our run sizes
(~10^4 checks) the band is a factor of 3-10; at the paper's ~10^7
checks it widens to the full 100..10,000 decade-pair, because accuracy
is a function of the absolute sample count.)
"""

from benchmarks.conftest import once
from repro.harness.sweeps import interval_sweep, operating_range, sweep_table


def sweep_all(runner, save):
    outputs = {}
    for name in ("javac", "jack"):
        points = interval_sweep(runner, name, scale=4)
        outputs[name] = points
        save(f"pareto_{name}", sweep_table(name, points).render())
    return outputs


def test_usable_interval_range_is_wide(benchmark, runner, save):
    outputs = once(benchmark, lambda: sweep_all(runner, save))
    for name, points in outputs.items():
        usable = operating_range(points, min_accuracy=80.0,
                                 max_overhead=15.0)
        assert usable, f"{name}: no usable interval at all"
        assert max(usable) >= 3 * min(usable), (
            f"{name}: usable range {usable} is not a band"
        )
