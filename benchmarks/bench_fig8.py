"""Regenerates Figure 8: the Jalapeño-specific yieldpoint optimization.

Paper: replacing checking-code yieldpoints with the checks themselves
drops framework overhead from 4.9% to 1.4% average (Table A), and total
sampling overhead converges to ~1.5% instead of ~5% (Table B) — 3.0% at
interval 1000, the headline "average total overhead of ~3%".
"""

from benchmarks.conftest import once
from repro.harness import figure8a, figure8b, table2


def test_figure8a_framework_overhead(benchmark, runner, save):
    result = once(benchmark, lambda: figure8a(runner))
    save("figure8a", result.render())

    opt_avg = result.rows[-1][1]
    plain_avg = table2(runner).rows[-1][1]
    # the optimization recovers most of the checking cost
    assert opt_avg < plain_avg / 2
    assert opt_avg < 5.0


def test_figure8b_total_sampling_overhead(benchmark, runner, save):
    result = once(benchmark, lambda: figure8b(runner))
    save("figure8b", result.render())

    by_interval = {row[0]: row[1] for row in result.rows}
    # monotone decrease, converging to a small framework floor
    assert by_interval[1] > by_interval[10] > by_interval[100]
    assert by_interval[100000] < 5.0
    # the paper's headline: a few percent total at interval 1000
    assert by_interval[1000] < 6.0
