"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures. Rendered
tables are printed (visible with ``pytest -s``) and written to
``benchmarks/results/`` so EXPERIMENTS.md can reference a captured run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    """One ExperimentRunner for the whole benchmark session, so every
    table reuses the same cached baselines."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def save():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments are deterministic and heavy; repeating them adds
    nothing but wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
