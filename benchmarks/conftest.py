"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures. Rendered
tables are printed (visible with ``pytest -s``) and written to
``benchmarks/results/`` so EXPERIMENTS.md can reference a captured run.

The session runner honours the parallel-harness knobs:

* ``REPRO_JOBS=N`` fans each table's experiment matrix over N worker
  processes (cells are deterministic, so results are identical at any
  N — only wall time changes);
* ``REPRO_CACHE_DIR=PATH`` relocates the persistent baseline cache,
  which otherwise lives at ``benchmarks/results/.baseline-cache`` — a
  repeated benchmark run skips every baseline execution. Delete the
  directory (or ``python -m repro cache clear --cache-dir ...``) to
  force cold-start numbers.

A timing/cache-hit report for the whole session is written to
``benchmarks/results/harness_report.txt`` at teardown.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    """One ExperimentRunner for the whole benchmark session, so every
    table reuses the same cached baselines and memoized cells. The
    worker count comes from $REPRO_JOBS; baselines persist on disk
    across sessions."""
    cache_dir = os.environ.get(
        "REPRO_CACHE_DIR", str(RESULTS_DIR / ".baseline-cache")
    )
    runner = ExperimentRunner(cache=cache_dir)
    yield runner
    RESULTS_DIR.mkdir(exist_ok=True)
    report = runner.timing_report(top=20)
    (RESULTS_DIR / "harness_report.txt").write_text(report + "\n")
    print(f"\n{report}")


@pytest.fixture(scope="session")
def save():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments are deterministic and heavy; repeating them adds
    nothing but wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
