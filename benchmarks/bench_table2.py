"""Regenerates Table 2: Full-Duplication framework overhead.

Paper: 4.9% average total (3.5% backedge checks + 1.3% entry checks),
~2x code size, +34% compile time. Our cost model runs ~1.8x the paper's
percentages (MiniJ ops are cheaper relative to a 5-cycle check than
Java bytecodes were); the breakdown structure is the claim under test.
"""

from benchmarks.conftest import once
from repro.harness import table2


def test_table2_framework_overhead(benchmark, runner, save):
    result = once(benchmark, lambda: table2(runner))
    save("table2", result.render())

    rows = {row[0]: row for row in result.rows}
    avg = rows["AVERAGE"]
    total, backedge, entry = avg[1], avg[3], avg[5]
    # Framework overhead is an order of magnitude below exhaustive
    # instrumentation (Table 1) and splits into backedge + entry parts.
    assert 2.0 < total < 20.0
    assert backedge + entry == __import__("pytest").approx(total, abs=3.0)
    # compress is among the most backedge-check-bound benchmarks
    # (paper: tight loops dominate _201_compress / _222_mpegaudio).
    non_avg = [row for name, row in rows.items() if name != "AVERAGE"]
    top_backedge = sorted((row[3] for row in non_avg), reverse=True)[:3]
    assert rows["compress"][3] in top_backedge
    # duplication roughly doubles code size
    assert all(row[7] > 0 for row in non_avg)
