"""Regenerates Table 4: sampled overhead & accuracy vs sample interval.

Paper: at interval 1000 the framework samples both instrumentations at
~6% total overhead with 93-98% overlap; interval 1 is *more* expensive
than exhaustive instrumentation; No-Duplication's total floor stays at
its (field-access-dominated) checking overhead. Our runs execute ~100x
fewer checks, so the accuracy collapse appears at smaller intervals —
same shape, earlier knee.
"""

import pytest

from benchmarks.conftest import once
from repro.harness import table4


def test_table4_interval_sweep(benchmark, runner, save):
    result = once(benchmark, lambda: table4(runner))
    save("table4", result.render())

    rows = {row[0]: row for row in result.rows}

    for strategy in ("full-duplication", "no-duplication"):
        # interval 1 reproduces the perfect profile by construction
        assert rows[f"{strategy}@1"][6] == pytest.approx(100.0)
        assert rows[f"{strategy}@1"][8] == pytest.approx(100.0)
        # total overhead decreases monotonically with the interval
        totals = [
            rows[f"{strategy}@{i}"][4] for i in (1, 10, 100, 1000)
        ]
        assert totals == sorted(totals, reverse=True)
        # sample counts scale ~1/interval
        s1 = rows[f"{strategy}@1"][1]
        s100 = rows[f"{strategy}@100"][1]
        assert s1 > 50 * s100
        # accuracy degrades as samples get scarce
        assert rows[f"{strategy}@10"][6] > rows[f"{strategy}@1000"][6]

    # Full-Duplication's framework floor is lower than No-Duplication's
    # when field-access instrumentation is in the mix (Table 4's
    # "Total" columns converge to ~5% vs ~55% in the paper).
    assert (
        rows["full-duplication@100000"][4]
        < rows["no-duplication@100000"][4]
    )
