"""Regenerates Figure 7: the javac call-edge profile, perfect vs sampled.

Paper: at interval 1000 (on ~10^7 checks) the sampled javac profile
overlaps the perfect one 93.8%, with circles (sampled percentages)
hugging the bars (perfect percentages). We run the javac analog at a
larger scale and a proportionally smaller interval and render the same
bars-and-markers chart in ASCII.
"""

from benchmarks.conftest import once
from repro.harness import figure7
from repro.harness.experiment import RunSpec
from repro.profiles import ascii_bar_chart
from repro.sampling import Strategy


def test_figure7_javac_profile(benchmark, runner, save):
    table, overlap = once(
        benchmark, lambda: figure7(runner, interval=100, scale=20)
    )

    # Rebuild the two profiles for the ASCII chart.
    perfect = runner.perfect_profiles("javac", ("call-edge",), 20)[
        "call-edge"
    ]
    sampled_run = runner.run(
        RunSpec(
            "javac",
            Strategy.FULL_DUPLICATION,
            ("call-edge",),
            trigger="counter",
            interval=100,
            scale=20,
        )
    )
    chart = ascii_bar_chart(
        perfect, sampled_run.profiles["call-edge"], top_n=25, width=46
    )
    save("figure7", table.render() + "\n\n" + chart)

    # Shape: a highly accurate sampled profile (paper: 93.8%).
    assert overlap > 85.0
    # the hot head of the distribution is present in both profiles
    top = table.rows[0]
    assert top[1] > 5.0 and top[2] > 0.0
