"""Ablation: where the checking overhead comes from.

DESIGN.md §5 (check placement): entry checks vs backedge checks
dominate different workloads — the paper's Table 2 breakdown explains
why tight-loop benchmarks (compress/mpegaudio) pay backedge cost while
call-dense ones (opt-compiler) pay entry cost. This bench also measures
the PowerPC-style fused decrement-and-check (check cost 1, §2.2),
quantifying how much hardware support would recover.
"""

from benchmarks.conftest import once
from repro.harness import ExperimentRunner, RunSpec, render_table
from repro.sampling import Strategy
from repro.vm import CostModel, powerpc_ctr_model


NAMES = ("compress", "jess", "optcompiler", "volano")


def sweep(save):
    rows = []
    default_runner = ExperimentRunner(cost_model=CostModel())
    fused_runner = ExperimentRunner(cost_model=powerpc_ctr_model())
    # Batch each runner's matrix through the pool ($REPRO_JOBS workers).
    default_runner.prefetch(
        [
            RunSpec(name, strategy, instr)
            for name in NAMES
            for strategy, instr in (
                (Strategy.CHECKS_ONLY_ENTRY, ()),
                (Strategy.CHECKS_ONLY_BACKEDGE, ()),
                (Strategy.FULL_DUPLICATION, ("none",)),
            )
        ]
    )
    fused_runner.prefetch(
        [RunSpec(name, Strategy.FULL_DUPLICATION, ("none",)) for name in NAMES]
    )
    for name in NAMES:
        entry = default_runner.overhead_pct(
            RunSpec(name, Strategy.CHECKS_ONLY_ENTRY, ())
        )
        backedge = default_runner.overhead_pct(
            RunSpec(name, Strategy.CHECKS_ONLY_BACKEDGE, ())
        )
        full = default_runner.overhead_pct(
            RunSpec(name, Strategy.FULL_DUPLICATION, ("none",))
        )
        fused = fused_runner.overhead_pct(
            RunSpec(name, Strategy.FULL_DUPLICATION, ("none",))
        )
        rows.append([name, entry, backedge, full, fused])
    text = render_table(
        ["benchmark", "entry-only%", "backedge-only%", "full%", "fused%"],
        rows,
        title="Ablation: check placement and fused checks",
    )
    save("ablation_checks", text)
    return rows


def test_check_placement_ablation(benchmark, save):
    rows = once(benchmark, lambda: sweep(save))
    by_name = {row[0]: row for row in rows}
    # tight loops pay backedge cost; call storms pay entry cost
    assert by_name["compress"][2] > by_name["compress"][1]
    assert by_name["optcompiler"][1] > by_name["optcompiler"][2]
    # the fused (hardware) check recovers most framework overhead
    for row in rows:
        assert row[4] < row[3]
