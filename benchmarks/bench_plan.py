"""Acceptance: the static strategy planner vs fixed strategies.

ISSUE 9's gate: over the full 12-workload suite, the planned
per-function configuration must beat or tie *every* uniform
fixed-strategy baseline at an equal sample interval on at least 10
workloads. Instrumentation is ``call-edge + block-count`` — dense
enough that duplication placement matters, so the planner has a real
decision to make per function (sparse call-edge alone degenerates to
all-No-Duplication and the comparison is vacuous).

Each planned cell is audited and reconciled like any other cell: the
per-function certificate from the plan's mixed-strategy transform is
checked against the run's counters, so a "win" here is a win under the
same Property-1 gate the fixed baselines face.

Results feed the continuous perf-regression ledger
(``BENCH_history.jsonl``) under ``bench=plan``.
"""

import pathlib

from benchmarks.conftest import once
from repro.analysis import plan_program
from repro.harness import RunSpec, render_table
from repro.profiling import LEDGER_FILENAME, PerfLedger, make_record
from repro.sampling import Strategy
from repro.workloads import get_workload, workload_names

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

KINDS = ("call-edge", "block-count")
INTERVAL = 1000
TRIGGER = "counter"

BASELINES = (
    Strategy.FULL_DUPLICATION,
    Strategy.PARTIAL_DUPLICATION,
    Strategy.NO_DUPLICATION,
)


def _spec(name, strategy, plan_key=None):
    return RunSpec(
        name,
        strategy,
        KINDS,
        trigger=TRIGGER,
        interval=INTERVAL,
        plan=plan_key,
    )


def sweep(runner, save):
    plans = {
        name: plan_program(
            get_workload(name).compile(), instrumentation=KINDS
        )
        for name in workload_names()
    }
    specs = []
    for name, plan in plans.items():
        specs.append(_spec(name, Strategy.FULL_DUPLICATION, plan.key()))
        specs.extend(_spec(name, strategy) for strategy in BASELINES)
    runner.prefetch(specs)

    rows = []
    records = []
    wins = 0
    for name, plan in plans.items():
        planned = runner.run(
            _spec(name, Strategy.FULL_DUPLICATION, plan.key())
        )
        fixed = {
            strategy: runner.run(_spec(name, strategy)).cycles
            for strategy in BASELINES
        }
        best_fixed = min(fixed.values())
        won = planned.cycles <= best_fixed
        wins += won
        counts = plan.strategy_counts()
        mix = ",".join(
            f"{value}:{count}" for value, count in sorted(counts.items())
        )
        rows.append(
            [
                name,
                planned.cycles,
                fixed[Strategy.FULL_DUPLICATION],
                fixed[Strategy.PARTIAL_DUPLICATION],
                fixed[Strategy.NO_DUPLICATION],
                "<=" if won else ">",
                mix,
            ]
        )
        records.append(
            make_record(
                bench="plan",
                key=f"{name}/planned",
                metric="cycles",
                value=float(planned.cycles),
                higher_is_better=False,
                meta={
                    "best_fixed": best_fixed,
                    "interval": INTERVAL,
                    "instrumentation": list(KINDS),
                    "strategies": {
                        str(k): v for k, v in sorted(counts.items())
                    },
                },
            )
        )

    text = render_table(
        ["workload", "planned", "full", "partial", "no-dup", "vs best",
         "plan mix"],
        rows,
        title=(
            f"Planned vs fixed strategies "
            f"({'+'.join(KINDS)}, counter@{INTERVAL}); "
            f"planned wins/ties {wins}/{len(rows)}"
        ),
        decimals=0,
    )
    save("plan_acceptance", text)
    PerfLedger(REPO_ROOT / LEDGER_FILENAME).append_many(records)
    return rows


def test_planned_beats_fixed_baselines(benchmark, runner, save):
    rows = once(benchmark, lambda: sweep(runner, save))
    assert len(rows) == 12
    wins = sum(1 for row in rows if row[5] == "<=")
    # The acceptance gate: planned beats/ties every fixed strategy on
    # at least 10 of the 12 workloads.
    assert wins >= 10, f"planner won only {wins}/12 workloads"
    # The planner must actually mix strategies somewhere — an all-one-
    # strategy plan would make this bench a tautology.
    assert any("," in row[6] for row in rows)
