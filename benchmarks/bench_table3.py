"""Regenerates Table 3: No-Duplication checking overhead.

Paper: 1.3% average for call-edge (checks at entries only — a big win
over Full-Duplication) vs 51.1% for field-access (a guard per access
costs nearly as much as the access's instrumentation — "completely
ineffective"). The ratio of No-Duplication to exhaustive field-access
overhead is the paper's sharpest quantitative claim here (~0.85).
"""

import pytest

from benchmarks.conftest import once
from repro.harness import table1, table3


def test_table3_no_duplication_overhead(benchmark, runner, save):
    result = once(benchmark, lambda: table3(runner))
    save("table3", result.render())

    rows = {row[0]: row for row in result.rows}
    avg_call, avg_field = rows["AVERAGE"][1], rows["AVERAGE"][3]
    # call-edge guarding is cheap; field-access guarding is not
    assert avg_call < 8.0
    assert avg_field > 3 * avg_call

    # the "ineffective for field access" ratio: No-Dup checking /
    # exhaustive field overhead should be close to 1 (paper: 51.1/60.4)
    exhaustive = {row[0]: row for row in table1(runner).rows}
    ratio = avg_field / exhaustive["AVERAGE"][3]
    assert 0.55 <= ratio <= 1.1, ratio
