"""Regenerates Table 1: exhaustive instrumentation overhead.

Paper: call-edge averages 88.3%, field-access 60.4% — far too expensive
to run unnoticed online, which is the problem the framework solves.
"""

from benchmarks.conftest import once
from repro.harness import table1


def test_table1_exhaustive_overhead(benchmark, runner, save):
    result = once(benchmark, lambda: table1(runner))
    save("table1", result.render())

    rows = {row[0]: row for row in result.rows}
    avg_call, avg_field = rows["AVERAGE"][1], rows["AVERAGE"][3]
    # Shape: exhaustive instrumentation is way too expensive for online
    # use (tens of percent), with call-edge costlier than field-access
    # on average (matching the paper's 88.3 vs 60.4 ordering).
    assert avg_call > 30.0
    assert avg_field > 5.0
    assert avg_call > avg_field
    # db is the cheapest row for both instrumentations (paper: 8.3/7.7).
    non_avg = [row for name, row in rows.items() if name != "AVERAGE"]
    assert rows["db"][1] == min(row[1] for row in non_avg)
