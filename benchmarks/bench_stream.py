"""Streaming-overhead gate: live export must ride nearly free.

The streaming spool (docs/OBSERVABILITY.md, "Live streaming & CCT")
exists so telemetry can be watched *during* a run — which is only
worth having if flushing epochs to disk does not meaningfully slow
the run down. This bench times the same cell twice on the same
engine:

* **baseline** — a context-keyed ``CompactingRecorder`` (everything
  streaming does in memory, minus the spool);
* **streamed** — a ``StreamingRecorder`` flushing delta-encoded
  epochs to a spool directory.

Both runs are bit-identical in what they retain (pinned by
tests/test_streaming.py), so the timing difference isolates the
export pipeline: JSON encoding, delta verification, and appends.

Methodology matches the other tight gates in
``bench_vm_throughput.py``: adjacent baseline/streamed pairs with the
order flipped every pair (host drift hits both sides equally), and
the reported overhead is the **median of per-pair ratios**. CI's
``stream-gate`` job holds javac and osr on the compiled engine to
≤5% and keeps the spool as a build artifact.

Usage:
    PYTHONPATH=src python benchmarks/bench_stream.py \
        --engine compiled --gate 5 --spool-dir stream-spools
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import statistics
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.experiment import make_instrumentations  # noqa: E402
from repro.profiling import (  # noqa: E402
    LEDGER_FILENAME,
    PerfLedger,
    make_record,
)
from repro.sampling import (  # noqa: E402
    CounterTrigger,
    SamplingFramework,
    Strategy,
)
from repro.telemetry import CompactingRecorder, StreamingRecorder  # noqa: E402
from repro.vm import run_program  # noqa: E402
from repro.vm.engine import resolve_engine  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_stream.json"
DEFAULT_LEDGER = REPO_ROOT / LEDGER_FILENAME

#: (workload, scale) cells the gate holds — mirrors the compaction
#: gate: javac is the check-dense static shape, osr the dynamic-code
#: path (LOADFN/REPLACEFN/OSR all emit ctx-tagged events).
GATE_CELLS = (("javac", 500), ("osr", 150))

INTERVAL = 1000
PAIRS = 7


def _prepare(workload: str, scale: int):
    program = get_workload(workload).compile(scale)
    return SamplingFramework(Strategy.FULL_DUPLICATION).transform(
        program, make_instrumentations(("call-edge",))
    )


def _time_run(transformed, engine: str, recorder) -> float:
    started = time.perf_counter()
    run_program(
        transformed,
        trigger=CounterTrigger(INTERVAL),
        engine=engine,
        recorder=recorder,
    )
    recorder.sync_metrics()
    if isinstance(recorder, StreamingRecorder):
        recorder.close()
    return time.perf_counter() - started


def measure_cell(
    workload: str,
    scale: int,
    engine: str,
    spool_dir: pathlib.Path,
    pairs: int = PAIRS,
) -> Dict:
    transformed = _prepare(workload, scale)
    # Warm the engine's code caches and both recorder paths out of
    # band: the first run after compilation is reliably slower, and a
    # single warm-up run has been observed to leave the *next* run
    # still 5-10% slow — warm each side once.
    warm = spool_dir / f"{workload}-warmup"
    _time_run(transformed, engine, CompactingRecorder(context=True))
    _time_run(transformed, engine, StreamingRecorder(warm))
    shutil.rmtree(warm, ignore_errors=True)
    ratios: List[float] = []
    base_seconds: List[float] = []
    stream_seconds: List[float] = []
    events = 0
    for pair in range(pairs):
        spool = spool_dir / f"{workload}-pair{pair}"
        if spool.exists():
            shutil.rmtree(spool)
        streamed_rec = StreamingRecorder(spool)
        baseline_first = pair % 2 == 0
        if baseline_first:
            base = _time_run(
                transformed, engine, CompactingRecorder(context=True)
            )
            stream = _time_run(transformed, engine, streamed_rec)
        else:
            stream = _time_run(transformed, engine, streamed_rec)
            base = _time_run(
                transformed, engine, CompactingRecorder(context=True)
            )
        events = max(events, streamed_rec.compactor.events_in)
        base_seconds.append(base)
        stream_seconds.append(stream)
        ratios.append(stream / base)
        # Keep exactly one spool per workload as the artifact.
        if pair != pairs - 1:
            shutil.rmtree(spool, ignore_errors=True)
        else:
            spool.rename(spool_dir / workload)
    median_ratio = statistics.median(ratios)
    return {
        "workload": workload,
        "scale": scale,
        "engine": engine,
        "interval": INTERVAL,
        "pairs": pairs,
        "events": events,
        "baseline_seconds_median": statistics.median(base_seconds),
        "streamed_seconds_median": statistics.median(stream_seconds),
        "overhead_pct": (median_ratio - 1.0) * 100.0,
        "spool": str(spool_dir / workload),
    }


def measure(
    engine: str, spool_dir: pathlib.Path, pairs: int = PAIRS
) -> Dict:
    spool_dir.mkdir(parents=True, exist_ok=True)
    cells = {
        workload: measure_cell(workload, scale, engine, spool_dir, pairs)
        for workload, scale in GATE_CELLS
    }
    return {
        "engine": engine,
        "cells": cells,
        "worst_overhead_pct": max(
            row["overhead_pct"] for row in cells.values()
        ),
    }


def render(report: Dict) -> str:
    lines = [
        f"streaming overhead ({report['engine']} engine, "
        f"median of per-pair ratios)",
        f"{'workload':12s} {'base s':>8s} {'stream s':>9s} {'overhead':>9s}",
    ]
    for name, row in report["cells"].items():
        lines.append(
            f"{name:12s} {row['baseline_seconds_median']:8.4f} "
            f"{row['streamed_seconds_median']:9.4f} "
            f"{row['overhead_pct']:+8.2f}%"
        )
    lines.append(
        f"worst overhead: {report['worst_overhead_pct']:+.2f}%"
    )
    return "\n".join(lines)


def ledger_append(report: Dict, ledger: PerfLedger) -> int:
    records = []
    for name, row in report["cells"].items():
        records.append(
            make_record(
                bench="stream",
                key=f"{name}/{row['engine']}",
                metric="overhead_pct",
                value=row["overhead_pct"],
                higher_is_better=False,
                meta={
                    "scale": row["scale"],
                    "interval": row["interval"],
                    "pairs": row["pairs"],
                },
            )
        )
    return ledger.append_many(records)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine", default=None,
        help="execution engine (default $REPRO_ENGINE, else fast)",
    )
    parser.add_argument(
        "--pairs", type=int, default=PAIRS,
        help="baseline/streamed timing pairs per cell",
    )
    parser.add_argument(
        "--gate", type=float, default=None, metavar="PCT",
        help="exit nonzero if the worst cell's overhead exceeds PCT",
    )
    parser.add_argument(
        "--spool-dir", default=None,
        help="keep one spool per workload here (CI artifact); "
        "default: a temp dir, removed afterwards",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument(
        "--ledger", default=str(DEFAULT_LEDGER),
        help="perf-regression ledger to append bench=stream records to",
    )
    parser.add_argument("--no-ledger", action="store_true")
    args = parser.parse_args(argv)

    engine = resolve_engine(args.engine)
    temp_spools = args.spool_dir is None
    spool_dir = pathlib.Path(
        tempfile.mkdtemp(prefix="bench-stream-")
        if temp_spools
        else args.spool_dir
    )
    try:
        report = measure(engine, spool_dir, pairs=args.pairs)
    finally:
        if temp_spools:
            shutil.rmtree(spool_dir, ignore_errors=True)
    print(render(report))
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[wrote {out}]")
    if not args.no_ledger:
        ledger = PerfLedger(args.ledger)
        appended = ledger_append(report, ledger)
        print(f"[appended {appended} record(s) to {ledger.path}]")
    if args.gate is not None and (
        report["worst_overhead_pct"] > args.gate
    ):
        print(
            f"error: streaming overhead "
            f"{report['worst_overhead_pct']:+.2f}% exceeds gate "
            f"{args.gate:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
