"""Ablation: loop unrolling as a backedge-check reducer (paper §4.3).

The paper attributes its worst framework overheads to tight loops and
predicts "loop unrolling ... would significantly reduce this overhead
by reducing the number of backedges executed". Jalapeño lacked the
pass; we have it, so the prediction is testable: unroll the baseline,
then apply Full-Duplication, and compare framework overhead on the
loop-bound workloads.
"""

from benchmarks.conftest import once
from repro.harness import render_table
from repro.instrument import assign_call_site_ids
from repro.instrument.base import EmptyInstrumentation
from repro.opt import unroll_program
from repro.sampling import SamplingFramework, Strategy
from repro.vm import run_program
from repro.workloads import get_workload


def framework_overhead(baseline):
    base = run_program(baseline, fuel=60_000_000)
    transformed = SamplingFramework(Strategy.FULL_DUPLICATION).transform(
        baseline, EmptyInstrumentation()
    )
    result = run_program(transformed, fuel=60_000_000)
    assert result.value == base.value
    return (
        100.0 * (result.stats.cycles / base.stats.cycles - 1.0),
        base.stats.backward_jumps,
    )


def sweep(save):
    rows = []
    for name in ("compress", "db", "mpegaudio"):
        baseline = get_workload(name).compile()
        plain_oh, plain_back = framework_overhead(baseline)

        unrolled = unroll_program(baseline, factor=4)
        assign_call_site_ids(unrolled)
        unrolled_oh, unrolled_back = framework_overhead(unrolled)
        rows.append(
            [name, plain_oh, unrolled_oh, plain_back, unrolled_back]
        )
    text = render_table(
        ["benchmark", "framework%", "unrolled+framework%",
         "backedges", "backedges(unrolled)"],
        rows,
        title="Ablation: 4x loop unrolling before Full-Duplication",
    )
    save("ablation_unroll", text)
    return rows


def test_unrolling_reduces_backedge_check_overhead(benchmark, save):
    rows = once(benchmark, lambda: sweep(save))
    for name, plain_oh, unrolled_oh, plain_back, unrolled_back in rows:
        # unrolling cuts dynamic backedges substantially (only
        # innermost single-backedge loops are eligible, so the
        # reduction is less than the full 4x factor)...
        assert unrolled_back < 0.75 * plain_back, name
        # ...and with them the framework's checking overhead
        assert unrolled_oh < plain_oh, name
