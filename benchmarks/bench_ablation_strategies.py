"""Ablation: duplication strategy vs instrumentation density.

DESIGN.md §5: which strategy wins depends on how often instrumentation
operations execute relative to entries+backedges (§3.2's closing
advice). Sparse instrumentation (call-edge) favours No-Duplication;
dense instrumentation (field-access, block counts) favours
Full-Duplication; Partial-Duplication tracks Full-Duplication's
dynamic check count while using less space.
"""

from benchmarks.conftest import once
from repro.harness import ExperimentRunner, RunSpec, render_table
from repro.sampling import Strategy

STRATEGIES = (
    Strategy.FULL_DUPLICATION,
    Strategy.PARTIAL_DUPLICATION,
    Strategy.NO_DUPLICATION,
)


def sweep(runner, save):
    # One batch for the whole matrix: fans out over $REPRO_JOBS workers.
    runner.prefetch(
        [
            RunSpec(name, strategy, (kind,))
            for name in ("jess", "jack")
            for kind in ("call-edge", "field-access")
            for strategy in STRATEGIES
        ]
    )
    rows = []
    for name in ("jess", "jack"):
        for kind in ("call-edge", "field-access"):
            row = [f"{name}/{kind}"]
            for strategy in STRATEGIES:
                result = runner.run(RunSpec(name, strategy, (kind,)))
                base = runner.baseline_cycles(name)
                row.append(100.0 * (result.cycles / base - 1.0))
            # code-size ratio of partial vs full duplication
            full = runner.run(
                RunSpec(name, Strategy.FULL_DUPLICATION, (kind,))
            ).code_bytes
            partial = runner.run(
                RunSpec(name, Strategy.PARTIAL_DUPLICATION, (kind,))
            ).code_bytes
            row.append(partial / full)
            rows.append(row)
    text = render_table(
        ["config", "full%", "partial%", "no-dup%", "partial/full size"],
        rows,
        title="Ablation: strategy vs instrumentation density "
        "(checking overhead, no samples)",
        decimals=2,
    )
    save("ablation_strategies", text)
    return rows


def test_strategy_density_ablation(benchmark, runner, save):
    rows = once(benchmark, lambda: sweep(runner, save))
    by_config = {row[0]: row for row in rows}
    # sparse (call-edge) instrumentation: No-Duplication wins
    assert by_config["jess/call-edge"][3] < by_config["jess/call-edge"][1]
    # dense (field-access) instrumentation: Full-Duplication wins
    assert by_config["jack/field-access"][1] < by_config["jack/field-access"][3]
    # partial duplication always saves space over full duplication
    for row in rows:
        assert row[4] < 1.0
