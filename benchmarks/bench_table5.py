"""Regenerates Table 5: time-based vs counter-based trigger accuracy.

Paper: with matched sample counts, the counter trigger averages 84%
overlap vs 63% for the timer trigger, because timer ticks land inside
long-latency operations and the *following* check takes the sample.
Our deterministic machine has fewer noise sources than real hardware
(no OS jitter, no JIT pauses), so the timer's handicap is milder but
the ordering and the worst-case-on-I/O-workloads shape persist.
"""

from benchmarks.conftest import once
from repro.harness import table5


def test_table5_trigger_accuracy(benchmark, runner, save):
    result = once(benchmark, lambda: table5(runner))
    save("table5", result.render())

    rows = {row[0]: row for row in result.rows}
    avg_timer, avg_counter = rows["AVERAGE"][1], rows["AVERAGE"][3]
    # counter-based sampling is the more accurate trigger on average
    assert avg_counter >= avg_timer
    # counter accuracy is high in absolute terms (paper: 84%)
    assert avg_counter > 75.0
    # sample counts were matched within a factor of ~2 per benchmark
    for name, row in rows.items():
        if name == "AVERAGE":
            continue
        t_samples, c_samples = row[5], row[6]
        assert 0.5 <= c_samples / max(1, t_samples) <= 2.0, name
