"""Ablation: counted backedges vs trigger-side bursts.

Two ways to observe N consecutive loop iterations per sample: the
paper's §2 counted backedge (recompiled into the duplicated code) and
a burst trigger (no recompilation, but one check-taken transfer per
burst member). The counted backedge skips checks during the burst, so
it should deliver the same per-sample coverage at lower overhead.
"""

from benchmarks.conftest import once
from repro.harness import render_table
from repro.instrument import BlockCountInstrumentation
from repro.sampling import (
    BurstTrigger,
    CounterTrigger,
    SamplingFramework,
    Strategy,
)
from repro.vm import run_program
from repro.workloads import get_workload

N = 6
INTERVAL = 53


def measure(baseline, base_cycles, mode):
    instr = BlockCountInstrumentation()
    if mode == "counted-backedge":
        fw = SamplingFramework(
            Strategy.FULL_DUPLICATION, sample_iterations=N
        )
        trigger = CounterTrigger(INTERVAL)
    else:
        fw = SamplingFramework(Strategy.FULL_DUPLICATION)
        trigger = BurstTrigger(INTERVAL, burst_length=N)
    program = fw.transform(baseline, instr)
    result = run_program(program, trigger=trigger)
    overhead = 100.0 * (result.stats.cycles / base_cycles - 1.0)
    per_sample = instr.profile.total() / max(1, trigger.samples_triggered)
    return overhead, per_sample, result.stats.checks_taken


def sweep(save):
    rows = []
    for name in ("compress", "jack"):
        baseline = get_workload(name).compile()
        base_cycles = run_program(baseline).stats.cycles
        for mode in ("counted-backedge", "burst-trigger"):
            overhead, per_sample, taken = measure(
                baseline, base_cycles, mode
            )
            rows.append([f"{name}/{mode}", overhead, per_sample, taken])
    text = render_table(
        ["config", "overhead%", "instr-ops/sample", "transfers"],
        rows,
        title=(
            f"Ablation: N={N} consecutive iterations per sample, "
            f"interval {INTERVAL}"
        ),
    )
    save("ablation_bursts", text)
    return rows


def test_counted_backedges_cheaper_than_bursts(benchmark, save):
    rows = once(benchmark, lambda: sweep(save))
    by_config = {row[0]: row for row in rows}
    for name in ("compress", "jack"):
        counted = by_config[f"{name}/counted-backedge"]
        burst = by_config[f"{name}/burst-trigger"]
        # both observe multiple windows per sample...
        assert counted[2] > 2.0 and burst[2] > 2.0
        # ...but the counted backedge pays fewer cold transfers
        assert counted[3] < burst[3]
