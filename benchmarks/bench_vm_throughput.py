"""VM throughput: fast and compiled engines vs reference interpreter.

docs/VM_PERF.md: the fast engine pre-compiles every function into a
direct-threaded handler list whose straight-line segments are fused
into generated Python superinstructions; the compiled engine transpiles
whole functions into generated Python regions (guest locals as host
locals, the operand stack as SSA temporaries, eligible leaf calls
outlined into frameless helpers). All engines are bit-identical in
stats/output/profiles (tests/test_engine_differential.py), so the only
interesting axis left is wall clock. This bench times each workload at
its default scale on every engine — the engines are *interleaved* per
repeat and the best-of-N per engine is kept, so drift on a noisy host
hits all tiers alike — and records instructions/second per engine plus
the per-workload and geometric-mean speedups over reference.

Results land in ``BENCH_vm.json`` at the repo root so the numbers have
a tracked trajectory; per-workload throughput records are additionally
appended to the continuous perf-regression ledger
(``BENCH_history.jsonl``, machine-normalized — docs/PROFILING.md) and
trend-checked against a rolling baseline. CI runs the standalone entry
point on one workload as a regression tripwire::

    python benchmarks/bench_vm_throughput.py --workload compress \
        --min-speedup 2.0 --profiler-gate 2.0
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.profiling import LEDGER_FILENAME, PerfLedger, make_record
from repro.profiling.profiler import OverheadProfiler
from repro.telemetry import NullRecorder
from repro.vm.interpreter import VM
from repro.workloads import all_workloads, get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_vm.json"
DEFAULT_LEDGER = REPO_ROOT / LEDGER_FILENAME

#: Best-of-N repeats. Three is enough to absorb the fast engine's
#: cold-start segment compilation (a few ms, cached process-wide after
#: the first VM for a given program shape) and OS jitter.
REPEATS = 3


def _time_engine(program, engine: str, repeats: int, recorder=None):
    """Best-of-*repeats* wall time for one engine; returns (result, s)."""
    best = None
    result = None
    for _ in range(repeats):
        vm = VM(program, engine=engine, recorder=recorder)
        started = time.perf_counter()
        result = vm.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def measure_telemetry_overhead(
    names: Optional[Sequence[str]] = None, repeats: int = REPEATS
) -> Dict:
    """Fast engine with telemetry hooks attached vs detached.

    ``recorder=None`` is the null fast path: the engine compiles
    hook-free superinstruction closures, so disabled telemetry must be
    free. An attached :class:`NullRecorder` exercises the other side —
    hook-bearing closures calling no-op methods — which bounds the cost
    of the observer surface itself. CI gates the attached side at a few
    percent (``--telemetry-gate``); see docs/OBSERVABILITY.md.
    """
    workloads = (
        [get_workload(name) for name in names]
        if names
        else list(all_workloads())
    )
    rows: Dict[str, Dict] = {}
    worst = 0.0
    for wl in workloads:
        program = wl.compile(None)
        off_result, off_s = _time_engine(program, "fast", repeats)
        null_result, null_s = _time_engine(
            program, "fast", repeats, recorder=NullRecorder()
        )
        if off_result.stats.as_dict() != null_result.stats.as_dict():
            raise AssertionError(
                f"telemetry hooks perturbed execution on {wl.name}"
            )
        overhead = 100.0 * (null_s / off_s - 1.0)
        worst = max(worst, overhead)
        rows[wl.name] = {
            "disabled_seconds": round(off_s, 6),
            "null_recorder_seconds": round(null_s, 6),
            "overhead_pct": round(overhead, 2),
        }
    return {
        "repeats": repeats,
        "workloads": rows,
        "worst_overhead_pct": round(worst, 2),
    }


#: Gate-measurement shape: each timing sample executes the workload
#: GATE_BATCH times back to back (longer samples absorb scheduler
#: jitter that dominates single ~30 ms runs), GATE_PAIRS adjacent
#: (detached, disabled) sample pairs are taken with the order flipped
#: every pair, and the reported overhead is the *median* of the
#: per-pair ratios. On a noisy shared host this statistic holds a ±1%
#: floor where best-of-N single runs swing ±3% — tight enough for the
#: 2% gate (docs/PROFILING.md).
GATE_BATCH = 5
GATE_PAIRS = 15


def measure_profiler_overhead(
    names: Optional[Sequence[str]] = None,
) -> Dict:
    """Fast engine with a disabled self-profiler attached vs detached.

    ``profiler=None`` and an attached-but-disabled
    :class:`OverheadProfiler` must compile the *same* hook-free
    superinstruction closures (the engine checks ``prof.enabled`` at
    compile time), so the disabled path is gated tighter than the
    null-recorder path (CI uses ``--profiler-gate 2``). Stats identity
    is asserted, not assumed — a disabled profiler that perturbed
    execution would invalidate every decomposition report.
    """
    workloads = (
        [get_workload(name) for name in names]
        if names
        else list(all_workloads())
    )
    rows: Dict[str, Dict] = {}
    worst = 0.0
    for wl in workloads:
        program = wl.compile(None)

        def batch_seconds(attach_profiler):
            started = time.perf_counter()
            for _ in range(GATE_BATCH):
                result = VM(
                    program,
                    engine="fast",
                    profiler=(
                        OverheadProfiler(enabled=False)
                        if attach_profiler
                        else None
                    ),
                ).run()
            return time.perf_counter() - started, result

        ratios = []
        off_seconds = attached_seconds = 0.0
        off_result = attached_result = None
        for pair in range(GATE_PAIRS):
            if pair % 2:
                attached, attached_result = batch_seconds(True)
                off, off_result = batch_seconds(False)
            else:
                off, off_result = batch_seconds(False)
                attached, attached_result = batch_seconds(True)
            off_seconds += off
            attached_seconds += attached
            ratios.append(attached / off)
        if off_result.stats.as_dict() != attached_result.stats.as_dict():
            raise AssertionError(
                f"disabled profiler perturbed execution on {wl.name}"
            )
        ratios.sort()
        median = ratios[len(ratios) // 2]
        overhead = 100.0 * (median - 1.0)
        worst = max(worst, overhead)
        runs = GATE_PAIRS * GATE_BATCH
        rows[wl.name] = {
            "detached_seconds": round(off_seconds / runs, 6),
            "disabled_profiler_seconds": round(attached_seconds / runs, 6),
            "overhead_pct": round(overhead, 2),
        }
    return {
        "pairs": GATE_PAIRS,
        "batch": GATE_BATCH,
        "workloads": rows,
        "worst_overhead_pct": round(worst, 2),
    }


#: Engines the throughput matrix covers, reference first (the speedup
#: denominator).
MEASURED_ENGINES = ("reference", "fast", "compiled")


def measure(
    names: Optional[Sequence[str]] = None, repeats: int = REPEATS
) -> Dict:
    """Time every requested workload on all three engines.

    Engines are interleaved within each repeat (ref, fast, compiled,
    ref, fast, ...) so slow thermal/scheduler drift cancels out of the
    ratios; per-engine best-of-N is kept. Also asserts bit-identity of
    value/output/stats across the engines — a throughput number for a
    diverging engine would be meaningless.
    """
    workloads = (
        [get_workload(name) for name in names]
        if names
        else list(all_workloads())
    )
    rows: Dict[str, Dict] = {}
    speedups: Dict[str, List[float]] = {
        e: [] for e in MEASURED_ENGINES[1:]
    }
    for wl in workloads:
        program = wl.compile(None)
        best: Dict[str, float] = {}
        results: Dict[str, object] = {}
        for _ in range(repeats):
            for engine in MEASURED_ENGINES:
                vm = VM(program, engine=engine)
                started = time.perf_counter()
                results[engine] = vm.run()
                elapsed = time.perf_counter() - started
                if engine not in best or elapsed < best[engine]:
                    best[engine] = elapsed
        ref_result = results["reference"]
        for engine in MEASURED_ENGINES[1:]:
            result = results[engine]
            if (
                result.value != ref_result.value
                or result.output != ref_result.output
                or result.stats.as_dict() != ref_result.stats.as_dict()
            ):
                raise AssertionError(
                    f"{engine} engine diverged on {wl.name}: "
                    "cannot report throughput"
                )
        instructions = ref_result.stats.instructions
        row: Dict[str, object] = {
            "scale": wl.default_scale,
            "instructions": instructions,
        }
        for engine in MEASURED_ENGINES:
            row[engine] = {
                "seconds": round(best[engine], 6),
                "instr_per_sec": round(instructions / best[engine], 1),
            }
        row["speedup"] = round(best["reference"] / best["fast"], 3)
        row["compiled_speedup"] = round(
            best["reference"] / best["compiled"], 3
        )
        speedups["fast"].append(best["reference"] / best["fast"])
        speedups["compiled"].append(best["reference"] / best["compiled"])
        rows[wl.name] = row

    def _geomean(values: List[float]) -> float:
        return math.exp(sum(math.log(v) for v in values) / len(values))

    return {
        "repeats": repeats,
        "workloads": rows,
        "geomean_speedup": round(_geomean(speedups["fast"]), 3),
        "compiled_geomean_speedup": round(
            _geomean(speedups["compiled"]), 3
        ),
    }


def render(report: Dict) -> str:
    lines = [
        f"{'workload':12s} {'scale':>5s} {'ref Mi/s':>9s} "
        f"{'fast Mi/s':>9s} {'comp Mi/s':>9s} {'fast':>6s} {'comp':>6s}"
    ]
    for name, row in report["workloads"].items():
        lines.append(
            f"{name:12s} {row['scale']:5d} "
            f"{row['reference']['instr_per_sec'] / 1e6:9.2f} "
            f"{row['fast']['instr_per_sec'] / 1e6:9.2f} "
            f"{row['compiled']['instr_per_sec'] / 1e6:9.2f} "
            f"{row['speedup']:5.2f}x "
            f"{row['compiled_speedup']:5.2f}x"
        )
    lines.append(
        f"geomean speedup: fast {report['geomean_speedup']:.2f}x, "
        f"compiled {report['compiled_geomean_speedup']:.2f}x"
    )
    return "\n".join(lines)


def ledger_append(report: Dict, ledger: PerfLedger) -> int:
    """One machine-normalized throughput record per (workload, engine).

    This is the bench's feed into the continuous perf-regression ledger
    (docs/PROFILING.md): every invocation extends the per-machine-class
    trajectory that ``repro ledger check`` trends against.
    """
    records = []
    for name, row in report["workloads"].items():
        for engine in MEASURED_ENGINES:
            records.append(
                make_record(
                    bench="vm_throughput",
                    key=f"{name}/{engine}",
                    metric="instr_per_sec",
                    value=row[engine]["instr_per_sec"],
                    meta={
                        "scale": row["scale"],
                        "repeats": report["repeats"],
                        "speedup": row["speedup"],
                        "compiled_speedup": row["compiled_speedup"],
                    },
                )
            )
    return ledger.append_many(records)


def sweep(save, names: Optional[Sequence[str]] = None) -> Dict:
    report = measure(names)
    save("vm_throughput", render(report))
    DEFAULT_OUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_vm_throughput(benchmark, save):
    from benchmarks.conftest import once

    report = once(benchmark, lambda: sweep(save))
    # Every tier must beat the reference in geomean; the hard
    # multipliers live in the CI smoke job (--min-speedup,
    # --min-compiled-speedup), where the machine is known.
    assert report["geomean_speedup"] > 1.0
    assert report["compiled_geomean_speedup"] > 1.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark fast- and compiled-engine vs "
        "reference-interpreter throughput and write BENCH_vm.json"
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        help="restrict to this workload (repeatable; default: all)",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero if the fast-engine geomean speedup falls "
        "below this",
    )
    parser.add_argument(
        "--min-compiled-speedup",
        type=float,
        default=None,
        help="exit nonzero if the compiled-engine geomean speedup falls "
        "below this",
    )
    parser.add_argument(
        "--telemetry-gate",
        type=float,
        default=None,
        metavar="PCT",
        help="also time the fast engine with an attached NullRecorder; "
        "exit nonzero if any workload's overhead exceeds PCT percent",
    )
    parser.add_argument(
        "--profiler-gate",
        type=float,
        default=None,
        metavar="PCT",
        help="also time the fast engine with a disabled self-profiler "
        "attached; exit nonzero if any workload's overhead exceeds PCT "
        "percent",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT), help="where to write BENCH_vm.json"
    )
    parser.add_argument(
        "--ledger", default=str(DEFAULT_LEDGER),
        help="perf-regression ledger to append per-workload records to",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="skip the BENCH_history.jsonl append and trend check",
    )
    args = parser.parse_args(argv)

    report = measure(args.workload, repeats=args.repeats)
    print(render(report))
    failed = False
    if args.telemetry_gate is not None:
        telemetry = measure_telemetry_overhead(
            args.workload, repeats=args.repeats
        )
        report["telemetry"] = telemetry
        for name, row in telemetry["workloads"].items():
            print(
                f"telemetry overhead {name:12s} "
                f"{row['overhead_pct']:+6.2f}% "
                f"(off {row['disabled_seconds']:.4f}s, "
                f"null-recorder {row['null_recorder_seconds']:.4f}s)"
            )
        if telemetry["worst_overhead_pct"] > args.telemetry_gate:
            print(
                f"error: null-recorder overhead "
                f"{telemetry['worst_overhead_pct']:.2f}% exceeds gate "
                f"{args.telemetry_gate:.2f}%",
                file=sys.stderr,
            )
            failed = True
    if args.profiler_gate is not None:
        profiler = measure_profiler_overhead(args.workload)
        report["profiler"] = profiler
        for name, row in profiler["workloads"].items():
            print(
                f"profiler overhead {name:12s} "
                f"{row['overhead_pct']:+6.2f}% "
                f"(detached {row['detached_seconds']:.4f}s, "
                f"disabled {row['disabled_profiler_seconds']:.4f}s)"
            )
        if profiler["worst_overhead_pct"] > args.profiler_gate:
            print(
                f"error: disabled-profiler overhead "
                f"{profiler['worst_overhead_pct']:.2f}% exceeds gate "
                f"{args.profiler_gate:.2f}%",
                file=sys.stderr,
            )
            failed = True
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[wrote {out}]")
    if not args.no_ledger:
        ledger = PerfLedger(args.ledger)
        appended = ledger_append(report, ledger)
        print(f"[appended {appended} record(s) to {ledger.path}]")
        trend = ledger.check()
        # Warn-only: cross-machine noise makes a hard ledger gate
        # counterproductive; the CI perf-trend job surfaces the report.
        for verdict in trend.regressions:
            print(f"warning: {verdict.summary()}", file=sys.stderr)
    if (
        args.min_speedup is not None
        and report["geomean_speedup"] < args.min_speedup
    ):
        print(
            f"error: fast geomean speedup "
            f"{report['geomean_speedup']:.2f}x "
            f"below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if (
        args.min_compiled_speedup is not None
        and report["compiled_geomean_speedup"] < args.min_compiled_speedup
    ):
        print(
            f"error: compiled geomean speedup "
            f"{report['compiled_geomean_speedup']:.2f}x "
            f"below required {args.min_compiled_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
