"""The self-sampling overhead profiler: the paper's trigger, aimed at us.

The framework's central artifact is a *counter-based sampling trigger*
(Figure 3): a global counter decremented at every check; reaching zero
takes a sample and resets the counter. :class:`OverheadProfiler`
dogfoods exactly that mechanism against the host interpreters
themselves. Both engines expose the same *observer boundaries* they
already use for cycle accounting and telemetry (CHECK, GUARDED_INSTR,
INSTR, YIELDPOINT, and every other segment head); the profiler polls a
:class:`~repro.sampling.triggers.CounterTrigger` at each boundary and,
when it fires, attributes the wall-clock time since the previous sample
to the *component* the VM was executing:

========== =================================================================
component  meaning
========== =================================================================
dispatch   plain bytecode execution (checking/original code)
compiled   plain execution inside compiled-tier generated regions
           (``engine="compiled"``), so transpiled code never inflates
           ``dispatch``
check      an unfired CHECK or GUARDED_INSTR: check evaluation plus its
           trigger poll
dup        plain dispatch while the thread is resident in duplicated code
trampoline a fired CHECK: the transfer into duplicated code
payload    instrumentation payload execution (INSTR; a fired GUARDED_INSTR)
poll       YIELDPOINT scheduling polls and virtual-timer machinery
runtime    head/tail residue outside sampled execution: engine compilation
           before the first boundary, scheduler teardown after the last
========== =================================================================

Because every inter-sample wall-clock delta is attributed to exactly one
component, the component sum *partitions* the profiled span — the
overhead-decomposition report reconciles against measured wall time by
construction, not by luck (tolerance covers only clock-call jitter).

The profiler's own cost obeys a Property-1-style bound inherited from
the trigger it reuses: ``samples <= boundaries // interval + 1``
(checked by :func:`repro.analysis.reconcile_profile`, and enforced per
cell by the experiment harness). With the profiler detached or disabled
the fast engine compiles **zero** profiling branches — the disabled
path is gated at <=2% next to the null-recorder gate in CI.

Snapshots are plain JSON-able dicts whose merge
(:func:`merge_snapshots`) is associative and commutative, so pool
workers' profiles fold together in any grouping — the same contract
metrics snapshots honour (docs/PROFILING.md).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.bytecode.opcodes import Op
from repro.sampling.triggers import CounterTrigger

#: Attribution components, in rendering order.
COMPONENTS: Tuple[str, ...] = (
    "dispatch",
    "compiled",
    "check",
    "dup",
    "trampoline",
    "payload",
    "poll",
    "runtime",
)

#: Snapshot schema version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1

#: Default profiler sample interval (boundaries per sample). Small by
#: design: boundaries are orders of magnitude rarer than instructions,
#: and each sample is cheap (one clock read plus dict bumps).
DEFAULT_INTERVAL = 64

_CHECK_OP = int(Op.CHECK)
_GUARDED_OP = int(Op.GUARDED_INSTR)
_INSTR_OP = int(Op.INSTR)
_YIELDPOINT_OP = int(Op.YIELDPOINT)


class OverheadProfiler:
    """Counter-based sampling profiler over the VM's observer boundaries.

    Args:
        interval: boundaries per sample — the paper's sample interval,
            driving a private :class:`CounterTrigger` (never the VM's
            own sampling trigger, so guest sampling is unperturbed).
        enabled: start disabled to measure the null path; a disabled
            profiler compiles no hooks into the fast engine and adds a
            single predictable branch to the reference ladder.
        clock: injectable time source (tests substitute a fake clock to
            make wall attribution deterministic).
        suppress: batch consecutive samples that land on the same
            (component, function, pc, op, stack) into one pending run,
            folded into the aggregate tables on the first differing
            sample (or on :meth:`stop`/:meth:`snapshot`). Totals are
            unchanged — only the per-sample dict churn moves off the hot
            path — but tables lag until a flush, so suppression is
            opt-in and callers that poke ``sample_counts`` mid-run must
            leave it off.
        cct: additionally fold every sample into a first-class
            :class:`~repro.profiling.cct.CallingContextTree`, splitting
            each calling context's samples by overhead component
            (check/dispatch/payload/...). The tree surfaces as a gated
            ``"cct"`` snapshot subdict that merges associatively like
            every other table; off by default so plain snapshots are
            byte-for-byte unchanged.

    The hot surface is three methods the engines call at boundaries —
    :meth:`boundary`, :meth:`check_boundary`, :meth:`guarded_boundary` —
    everything else is cold reporting.
    """

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        suppress: bool = False,
        cct: bool = False,
    ):
        self.interval = interval
        self.enabled = enabled
        self.trigger = CounterTrigger(interval)
        self._clock = clock
        self.suppress = suppress
        #: open run: [key, n, wall] where key = (component, function,
        #: pc, op, stack); None when no run is open
        self._pending: Optional[list] = None
        self.suppression_samples = 0
        self.suppression_flushes = 0
        self.suppression_max_run = 0
        self.wall: Dict[str, float] = {c: 0.0 for c in COMPONENTS}
        self.sample_counts: Dict[str, int] = {c: 0 for c in COMPONENTS}
        #: (function name, pc) -> samples landing on that block head
        self.heat: Dict[Tuple[str, int], int] = {}
        #: opcode int -> samples landing on that opcode
        self.op_heat: Dict[int, int] = {}
        #: calling-context tuple (root..leaf function names) -> [samples, wall]
        self.stacks: Dict[Tuple[str, ...], list] = {}
        if cct:
            from repro.profiling.cct import CallingContextTree

            self.cct: Optional[CallingContextTree] = CallingContextTree()
        else:
            self.cct = None
        self.elapsed_seconds = 0.0
        self.runs = 0
        #: tids currently resident in duplicated code (mirrors the
        #: telemetry recorder's per-thread dup spans)
        self._dup: set = set()
        self._last: Optional[float] = None
        self._run_started: Optional[float] = None

    # -- lifecycle (called by VM.run) ---------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def start(self) -> None:
        """Open a profiled span. The VM calls this on entry to ``run()``
        so engine compilation and scheduling are inside the span."""
        now = self._clock()
        self._run_started = now
        self._last = now
        self.runs += 1

    def stop(self) -> None:
        """Close the span: the tail since the last sample is attributed
        to ``runtime`` so the component sum keeps partitioning the span."""
        if self._run_started is None:
            return
        self._flush_run()
        now = self._clock()
        if self._last is not None:
            self.wall["runtime"] += now - self._last
        self.elapsed_seconds += now - self._run_started
        self._run_started = None
        self._last = None
        self._dup.clear()

    # -- hot boundary hooks --------------------------------------------------

    def boundary(self, component, function, pc, op, frames, tid) -> None:
        """One observer boundary of *component*; polls the counter."""
        if self.trigger.poll():
            self._take(component, function, pc, op, frames, tid)

    def check_boundary(self, fired, function, pc, frames, tid) -> None:
        """A CHECK executed. Maintains duplicated-code residency exactly
        like the telemetry recorder: any check boundary ends a resident
        span; a fired check begins one."""
        dup = self._dup
        if tid in dup:
            dup.discard(tid)
        if fired:
            dup.add(tid)
        self.boundary(
            "trampoline" if fired else "check",
            function, pc, _CHECK_OP, frames, tid,
        )

    def guarded_boundary(self, fired, function, pc, frames, tid) -> None:
        """A GUARDED_INSTR executed (fired = payload ran)."""
        self.boundary(
            "payload" if fired else "check",
            function, pc, _GUARDED_OP, frames, tid,
        )

    def _take(self, component, function, pc, op, frames, tid) -> None:
        if tid in self._dup and (
            component == "dispatch" or component == "compiled"
        ):
            component = "dup"
        now = self._clock()
        last = self._last
        delta = now - last if last is not None else 0.0
        self._last = now
        stack = tuple(f.function.name for f in frames)
        if self.suppress:
            self.suppression_samples += 1
            key = (component, function, pc, op, stack)
            pending = self._pending
            if pending is not None and pending[0] == key:
                pending[1] += 1
                pending[2] += delta
                return
            self._flush_run()
            self._pending = [key, 1, delta]
            return
        self._apply(component, function, pc, op, stack, 1, delta)

    def _apply(self, component, function, pc, op, stack, n, wall) -> None:
        """Fold *n* samples worth *wall* seconds into the aggregate
        tables — the single write path for both eager and batched takes."""
        self.wall[component] += wall
        self.sample_counts[component] += n
        key = (function, pc)
        heat = self.heat
        heat[key] = heat.get(key, 0) + n
        op_heat = self.op_heat
        op_heat[op] = op_heat.get(op, 0) + n
        cell = self.stacks.get(stack)
        if cell is None:
            self.stacks[stack] = [n, wall]
        else:
            cell[0] += n
            cell[1] += wall
        if self.cct is not None:
            self.cct.record(stack, component, n, wall)

    def _flush_run(self) -> None:
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        (component, function, pc, op, stack), n, wall = pending
        self._apply(component, function, pc, op, stack, n, wall)
        self.suppression_flushes += 1
        if n > self.suppression_max_run:
            self.suppression_max_run = n

    # -- cold read side ------------------------------------------------------

    @property
    def samples(self) -> int:
        return self.trigger.samples_triggered

    @property
    def boundaries(self) -> int:
        return self.trigger.checks_polled

    def bound(self) -> int:
        """The Property-1-style cap on profiling work: at most one sample
        per *interval* boundaries, plus the in-flight countdown."""
        return self.boundaries // self.interval + 1

    def bound_holds(self) -> bool:
        return self.samples <= self.bound()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able, associatively mergeable state dump.

        ``heat`` keys render as ``function@pc`` and ``op_heat`` keys as
        opcode names so snapshots are self-describing in manifests.
        """
        self._flush_run()
        elapsed = self.elapsed_seconds
        if self._run_started is not None:  # span still open
            elapsed += self._clock() - self._run_started
        snap = {
            "version": SNAPSHOT_VERSION,
            "interval": self.interval,
            "runs": self.runs,
            "boundaries": self.boundaries,
            "samples": self.samples,
            "elapsed_seconds": elapsed,
            "wall_seconds": {c: self.wall[c] for c in COMPONENTS},
            "sample_counts": {c: self.sample_counts[c] for c in COMPONENTS},
            "heat": {
                f"{fn}@{pc}": n
                for (fn, pc), n in sorted(self.heat.items())
            },
            "op_heat": {
                Op(op).name: n for op, n in sorted(self.op_heat.items())
            },
            "stacks": {
                ";".join(stack): [n, wall]
                for stack, (n, wall) in sorted(self.stacks.items())
            },
        }
        if self.suppress:
            # Gated: absent unless suppression is on, so eager-profile
            # snapshots (and their merges) are byte-for-byte unchanged.
            snap["suppression"] = {
                "samples": self.suppression_samples,
                "flushes": self.suppression_flushes,
                "max_run": self.suppression_max_run,
            }
        if self.cct is not None:
            # Gated like "suppression" and sorted like "stacks".
            table = self.cct.snapshot()
            snap["cct"] = {
                key: table[key] for key in sorted(table)
            }
        return snap


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots into one; associative and commutative.

    Counts and wall times add; ``interval`` survives only if every input
    agrees (mixed-interval merges keep ``None`` — the merged bound is no
    longer a single formula). An empty iterable yields an empty-profile
    snapshot.
    """
    merged: Dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "interval": None,
        "runs": 0,
        "boundaries": 0,
        "samples": 0,
        "elapsed_seconds": 0.0,
        "wall_seconds": {c: 0.0 for c in COMPONENTS},
        "sample_counts": {c: 0 for c in COMPONENTS},
        "heat": {},
        "op_heat": {},
        "stacks": {},
    }
    first = True
    for snap in snapshots:
        if first:
            merged["interval"] = snap.get("interval")
            first = False
        elif merged["interval"] != snap.get("interval"):
            merged["interval"] = None
        merged["runs"] += snap.get("runs", 0)
        merged["boundaries"] += snap.get("boundaries", 0)
        merged["samples"] += snap.get("samples", 0)
        merged["elapsed_seconds"] += snap.get("elapsed_seconds", 0.0)
        for comp, value in snap.get("wall_seconds", {}).items():
            merged["wall_seconds"][comp] = (
                merged["wall_seconds"].get(comp, 0.0) + value
            )
        for comp, value in snap.get("sample_counts", {}).items():
            merged["sample_counts"][comp] = (
                merged["sample_counts"].get(comp, 0) + value
            )
        for table in ("heat", "op_heat"):
            ours = merged[table]
            for key, n in snap.get(table, {}).items():
                ours[key] = ours.get(key, 0) + n
        ours = merged["stacks"]
        for key, (n, wall) in snap.get("stacks", {}).items():
            cell = ours.get(key)
            if cell is None:
                ours[key] = [n, wall]
            else:
                cell[0] += n
                cell[1] += wall
        cct = snap.get("cct")
        if cct is not None:
            from repro.profiling.cct import merge_cct_tables

            merged["cct"] = merge_cct_tables(merged.get("cct", {}), cct)
        supp = snap.get("suppression")
        if supp is not None:
            # Present in the merge iff present in any input; samples and
            # flushes add, max_run takes the max — associative either way.
            cell = merged.setdefault(
                "suppression", {"samples": 0, "flushes": 0, "max_run": 0}
            )
            cell["samples"] += supp.get("samples", 0)
            cell["flushes"] += supp.get("flushes", 0)
            cell["max_run"] = max(cell["max_run"], supp.get("max_run", 0))
    return merged
