"""Flame-graph exporters for profiler stack samples.

Three interchange formats over the same input — the ``stacks`` table of
an :class:`~repro.profiling.profiler.OverheadProfiler` snapshot, mapping
``"root;...;leaf"`` strings to ``[samples, wall_seconds]``:

* **collapsed** — Brendan Gregg's folded-stack lines (``a;b;c 42``),
  consumable by ``flamegraph.pl``, speedscope, and most flame tooling;
* **speedscope** — a ``sampled`` speedscope JSON profile
  (https://www.speedscope.app/file-format-schema.json), weights in
  milliseconds of attributed wall time;
* **Chrome trace_event** — complete ("X") slices laid out sequentially
  per stack, one nested slice per frame, so ``chrome://tracing`` /
  Perfetto renders a left-heavy flame graph next to the telemetry
  traces exported by :mod:`repro.telemetry.exporters`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Mapping, Sequence, Tuple, Union

Stacks = Mapping[str, Sequence]


def _rows(stacks: Stacks) -> List[Tuple[Tuple[str, ...], int, float]]:
    """Normalized (frames, samples, wall) rows in deterministic order."""
    rows = []
    for key, cell in sorted(stacks.items()):
        frames = tuple(f for f in key.split(";") if f) or ("(unknown)",)
        samples = int(cell[0])
        wall = float(cell[1]) if len(cell) > 1 else 0.0
        rows.append((frames, samples, wall))
    return rows


# -- collapsed stacks --------------------------------------------------------


def stacks_to_collapsed(stacks: Stacks) -> str:
    """Folded-stack lines: ``root;..;leaf <samples>``, one per context."""
    return "".join(
        f"{';'.join(frames)} {samples}\n"
        for frames, samples, _wall in _rows(stacks)
    )


def write_collapsed(
    stacks: Stacks, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(stacks_to_collapsed(stacks), encoding="utf-8")
    return path


# -- speedscope --------------------------------------------------------------


def stacks_to_speedscope(stacks: Stacks, name: str = "repro") -> Dict:
    """A single ``sampled`` speedscope profile; weights are milliseconds
    of attributed wall time (samples when no wall was recorded)."""
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[float] = []
    for stack, count, wall in _rows(stacks):
        indexed = []
        for frame in stack:
            idx = frame_index.get(frame)
            if idx is None:
                idx = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            indexed.append(idx)
        samples.append(indexed)
        weights.append(wall * 1000.0 if wall > 0.0 else float(count))
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.profiling",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "milliseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "activeProfileIndex": 0,
    }


def write_speedscope(
    stacks: Stacks, path: Union[str, pathlib.Path], name: str = "repro"
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(stacks_to_speedscope(stacks, name=name), indent=1) + "\n",
        encoding="utf-8",
    )
    return path


# -- Chrome trace_event ------------------------------------------------------


def stacks_to_chrome_flame(stacks: Stacks, name: str = "repro") -> Dict:
    """Synthesize a timeline from aggregated stacks: contexts are laid
    end to end (width = attributed wall time in µs, or sample count when
    no wall was recorded) with one nested ``X`` slice per frame."""
    trace: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": f"{name} (vm self-profile)"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "aggregated stacks"}},
    ]
    cursor = 0.0
    for frames, count, wall in _rows(stacks):
        width = wall * 1e6 if wall > 0.0 else float(count)
        for frame in frames:
            trace.append(
                {
                    "name": frame,
                    "ph": "X",
                    "ts": cursor,
                    "dur": width,
                    "pid": 1,
                    "tid": 0,
                    "cat": "vm-profile",
                    "args": {"samples": count},
                }
            )
        cursor += width
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"layout": "aggregated stacks, not a real timeline"},
    }


def write_chrome_flame(
    stacks: Stacks, path: Union[str, pathlib.Path], name: str = "repro"
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(stacks_to_chrome_flame(stacks, name=name), indent=1)
        + "\n",
        encoding="utf-8",
    )
    return path
