"""Continuous perf-regression ledger: append-only JSONL history plus a
rolling-baseline comparator.

The ROADMAP north star ("as fast as the hardware allows") needs a
persisted trajectory to be enforceable. Every benchmark run appends
machine-normalized records to ``BENCH_history.jsonl`` at the repo root;
the comparator then flags any series whose newest record falls outside
a noise band around a rolling baseline (the median of the preceding
``window`` records).

Machine normalization: raw wall-clock scores are divided by a host
*calibration score* — the throughput of a fixed pure-Python spin loop
measured on the spot — so records appended from a laptop and from a CI
runner land on a comparable scale. Normalization cannot erase
micro-architectural differences; the noise band (default 10%) is the
honest acknowledgment of that, and CI runs the comparator warn-only
(docs/PROFILING.md covers the methodology).

Record schema (one JSON object per line)::

    {"ts": "2026-08-06T12:00:00Z", "bench": "vm_throughput",
     "key": "compress/fast", "metric": "instr_per_sec",
     "value": 1.23e7, "normalized": 0.81, "higher_is_better": true,
     "host": {...}, "meta": {...}}
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Environment variable naming the default ledger path for harness runs.
LEDGER_ENV = "REPRO_LEDGER"

#: Default ledger filename (resolved against the cwd by the CLI, and
#: against the repo root by benchmarks/).
LEDGER_FILENAME = "BENCH_history.jsonl"

#: Rolling-baseline depth: the comparator baselines against the median
#: of up to this many records preceding the newest one.
DEFAULT_WINDOW = 5

#: Noise band, percent: deviations inside it are never flagged.
DEFAULT_NOISE_PCT = 10.0

_calibration_cache: Optional[float] = None


def _spin(n: int) -> int:
    total = 0
    for i in range(n):
        total += i ^ (total >> 3)
    return total


def calibration_score(loops: int = 300_000, repeats: int = 3) -> float:
    """Host speed in spin-loop iterations per second (best of N).

    Cached per process: every record appended by one run shares one
    calibration, so intra-run ratios stay exact.
    """
    global _calibration_cache
    if _calibration_cache is None:
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            _spin(loops)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        _calibration_cache = loops / best if best and best > 0 else 1.0
    return _calibration_cache


def host_fingerprint() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def make_record(
    bench: str,
    key: str,
    metric: str,
    value: float,
    higher_is_better: bool = True,
    meta: Optional[Dict[str, Any]] = None,
    ts: Optional[str] = None,
) -> Dict[str, Any]:
    """A ledger record with machine normalization applied.

    ``normalized`` is ``value / calibration_score()`` — dimensionless,
    comparable across hosts of different raw speed. The comparator
    prefers it whenever every record in a series carries one.
    """
    if ts is None:
        ts = (
            datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ")
        )
    return {
        "ts": ts,
        "bench": bench,
        "key": key,
        "metric": metric,
        "value": value,
        "normalized": value / calibration_score(),
        "higher_is_better": bool(higher_is_better),
        "host": host_fingerprint(),
        "meta": dict(meta or {}),
    }


@dataclass
class TrendVerdict:
    """Comparator outcome for one (bench, key, metric) series."""

    bench: str
    key: str
    metric: str
    records: int
    baseline: Optional[float]
    latest: Optional[float]
    delta_pct: float  # positive = regression (worse than baseline)
    noise_pct: float
    regressed: bool
    note: str = ""

    @property
    def label(self) -> str:
        return f"{self.bench}/{self.key}/{self.metric}"

    def summary(self) -> str:
        if self.baseline is None:
            return f"{self.label}: {self.note or 'insufficient history'}"
        status = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.label}: latest {self.latest:.4g} vs rolling baseline "
            f"{self.baseline:.4g} ({self.delta_pct:+.1f}% worse; band "
            f"{self.noise_pct:.0f}%): {status}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "key": self.key,
            "metric": self.metric,
            "records": self.records,
            "baseline": self.baseline,
            "latest": self.latest,
            "delta_pct": self.delta_pct,
            "noise_pct": self.noise_pct,
            "regressed": self.regressed,
            "note": self.note,
        }


@dataclass
class LedgerReport:
    """All series verdicts from one comparator pass."""

    verdicts: List[TrendVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[TrendVerdict]:
        return [v for v in self.verdicts if v.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        if not self.verdicts:
            return "perf ledger: no series to compare"
        lines = [v.summary() for v in self.verdicts]
        lines.append(
            f"perf ledger: {len(self.verdicts)} series, "
            f"{len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _score(record: Dict[str, Any], normalized: bool) -> Optional[float]:
    value = record.get("normalized") if normalized else record.get("value")
    return float(value) if value is not None else None


class PerfLedger:
    """Append-only JSONL perf history with a trend comparator."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)

    @classmethod
    def from_env(cls) -> Optional["PerfLedger"]:
        """A ledger at ``$REPRO_LEDGER``, or None when unset."""
        env = os.environ.get(LEDGER_ENV, "").strip()
        return cls(env) if env else None

    def append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def append_many(self, records: Sequence[Dict[str, Any]]) -> int:
        for record in records:
            self.append(record)
        return len(records)

    def records(
        self,
        bench: Optional[str] = None,
        key: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Records in file order, optionally filtered. Unparseable lines
        are skipped (an append-only log survives partial writes)."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if bench is not None and record.get("bench") != bench:
                continue
            if key is not None and record.get("key") != key:
                continue
            if metric is not None and record.get("metric") != metric:
                continue
            out.append(record)
        return out

    def series(self) -> Dict[Tuple[str, str, str], List[Dict[str, Any]]]:
        """Records grouped by (bench, key, metric), file order kept."""
        grouped: Dict[Tuple[str, str, str], List[Dict[str, Any]]] = {}
        for record in self.records():
            ident = (
                str(record.get("bench", "?")),
                str(record.get("key", "?")),
                str(record.get("metric", "?")),
            )
            grouped.setdefault(ident, []).append(record)
        return grouped

    def check(
        self,
        window: int = DEFAULT_WINDOW,
        noise_pct: float = DEFAULT_NOISE_PCT,
    ) -> LedgerReport:
        """Compare each series' newest record against its rolling
        baseline (median of up to *window* preceding records)."""
        report = LedgerReport()
        for (bench, key, metric), records in sorted(self.series().items()):
            report.verdicts.append(
                _check_series(bench, key, metric, records, window, noise_pct)
            )
        return report


def _check_series(
    bench: str,
    key: str,
    metric: str,
    records: List[Dict[str, Any]],
    window: int,
    noise_pct: float,
) -> TrendVerdict:
    if len(records) < 2:
        return TrendVerdict(
            bench=bench, key=key, metric=metric, records=len(records),
            baseline=None, latest=None, delta_pct=0.0,
            noise_pct=noise_pct, regressed=False,
            note=f"insufficient history ({len(records)} record(s))",
        )
    # Normalized scores only when the whole series has them — mixing
    # normalized and raw values would compare incomparable units.
    normalized = all(r.get("normalized") is not None for r in records)
    history = records[-(window + 1):-1]
    scores = [_score(r, normalized) for r in history]
    scores = [s for s in scores if s is not None]
    latest = _score(records[-1], normalized)
    if not scores or latest is None:
        return TrendVerdict(
            bench=bench, key=key, metric=metric, records=len(records),
            baseline=None, latest=None, delta_pct=0.0,
            noise_pct=noise_pct, regressed=False,
            note="records carry no comparable score",
        )
    baseline = _median(scores)
    higher_is_better = bool(records[-1].get("higher_is_better", True))
    if baseline <= 0:
        delta_pct = 0.0
    elif higher_is_better:
        delta_pct = 100.0 * (baseline - latest) / baseline
    else:
        delta_pct = 100.0 * (latest - baseline) / baseline
    return TrendVerdict(
        bench=bench, key=key, metric=metric, records=len(records),
        baseline=baseline, latest=latest, delta_pct=delta_pct,
        noise_pct=noise_pct, regressed=delta_pct > noise_pct,
    )


def resolve_ledger(
    ledger: Union["PerfLedger", str, pathlib.Path, bool, None]
) -> Optional["PerfLedger"]:
    """Interpret a ledger argument: a PerfLedger passes through, a path
    builds one, ``None`` falls back to ``$REPRO_LEDGER`` (else None),
    ``False`` disables explicitly (pool workers pass it so only the
    parent ever appends), ``True`` means the default filename in cwd."""
    if ledger is None:
        return PerfLedger.from_env()
    if ledger is False:
        return None
    if ledger is True:
        return PerfLedger(LEDGER_FILENAME)
    if isinstance(ledger, PerfLedger):
        return ledger
    return PerfLedger(ledger)
