"""Overhead-decomposition reports: component wall time vs measured wall.

A :class:`DecompositionReport` is the per-cell deliverable of the
self-sampling profiler: how the cell's wall-clock time splits across
the VM's cost components (see :mod:`repro.profiling.profiler` for the
component taxonomy). Because each inter-sample delta is attributed to
exactly one component and the head/tail residue lands in ``runtime``,
the component sum partitions the profiled span; reconciliation against
an independently measured wall time only has to absorb clock-call
jitter, hence the tight default tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.profiling.profiler import COMPONENTS

#: Default reconciliation tolerance: component sum within 5% of the
#: measured wall time (the acceptance bar in docs/PROFILING.md).
DEFAULT_TOLERANCE = 0.05


@dataclass
class DecompositionReport:
    """Component wall-time split for one profiled span."""

    components: Dict[str, float]
    sample_counts: Dict[str, int]
    measured_wall: float
    samples: int
    boundaries: int
    interval: Optional[int]
    tolerance: float = DEFAULT_TOLERANCE
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def component_sum(self) -> float:
        return sum(self.components.values())

    @property
    def error_pct(self) -> float:
        """Signed percent deviation of the component sum from measured
        wall time (0 when nothing was measured)."""
        if self.measured_wall <= 0.0:
            return 0.0
        return 100.0 * (self.component_sum / self.measured_wall - 1.0)

    def reconciles(self) -> bool:
        """Component sum within ``tolerance`` of measured wall time."""
        if self.measured_wall <= 0.0:
            return False
        return abs(self.component_sum - self.measured_wall) <= (
            self.tolerance * self.measured_wall
        )

    def share(self, component: str) -> float:
        total = self.component_sum
        if total <= 0.0:
            return 0.0
        return 100.0 * self.components.get(component, 0.0) / total

    def render(self) -> str:
        lines = [
            f"overhead decomposition ({self.samples} sample(s) / "
            f"{self.boundaries} boundaries"
            + (f", interval {self.interval}" if self.interval else "")
            + "):",
            f"  {'component':<12s} {'wall ms':>10s} {'share':>7s} "
            f"{'samples':>8s}",
        ]
        for comp in COMPONENTS:
            wall = self.components.get(comp, 0.0)
            count = self.sample_counts.get(comp, 0)
            if wall == 0.0 and count == 0:
                continue
            lines.append(
                f"  {comp:<12s} {wall * 1000.0:10.3f} "
                f"{self.share(comp):6.1f}% {count:8d}"
            )
        status = "ok" if self.reconciles() else "VIOLATED"
        lines.append(
            f"  component sum {self.component_sum * 1000.0:.3f} ms vs "
            f"measured {self.measured_wall * 1000.0:.3f} ms "
            f"({self.error_pct:+.2f}%; tolerance "
            f"{self.tolerance * 100.0:.0f}%): {status}"
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "components": dict(self.components),
            "sample_counts": dict(self.sample_counts),
            "measured_wall": self.measured_wall,
            "component_sum": self.component_sum,
            "error_pct": self.error_pct,
            "reconciles": self.reconciles(),
            "samples": self.samples,
            "boundaries": self.boundaries,
            "interval": self.interval,
            "tolerance": self.tolerance,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DecompositionReport":
        return cls(
            components=dict(payload["components"]),
            sample_counts=dict(payload.get("sample_counts", {})),
            measured_wall=payload["measured_wall"],
            samples=payload.get("samples", 0),
            boundaries=payload.get("boundaries", 0),
            interval=payload.get("interval"),
            tolerance=payload.get("tolerance", DEFAULT_TOLERANCE),
            extra=dict(payload.get("extra", {})),
        )


def decompose(
    snapshot: Dict[str, Any],
    measured_wall: Optional[float] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> DecompositionReport:
    """Build a report from a profiler snapshot.

    ``measured_wall`` is an *independent* wall-time measurement of the
    same span (the harness times ``VM.run()`` from outside); ``None``
    falls back to the profiler's own elapsed clock, which reconciles
    trivially and is only useful for rendering.
    """
    if measured_wall is None:
        measured_wall = snapshot.get("elapsed_seconds", 0.0)
    return DecompositionReport(
        components=dict(snapshot.get("wall_seconds", {})),
        sample_counts=dict(snapshot.get("sample_counts", {})),
        measured_wall=measured_wall,
        samples=snapshot.get("samples", 0),
        boundaries=snapshot.get("boundaries", 0),
        interval=snapshot.get("interval"),
        tolerance=tolerance,
    )
