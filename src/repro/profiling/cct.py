"""Calling-context trees: first-class context identity for profiles.

The overhead profiler has always captured calling-context *stacks*
(flat ``"a;b;c"`` strings folded into a collapsed-stack table); this
module promotes them to a first-class calling-context tree with two
pieces:

* :class:`ContextTracker` — an interner mapping full calling-context
  paths (root→leaf tuples of function names) to small integer ids,
  assigned in first-observation order. Because the engines' event
  streams are pinned bit-identical, interning contexts *in event
  order* yields identical ids on the reference, fast, and compiled
  engines — which is what lets context ids ride inside recorder
  events and context-keyed suppression windows stay bit-identical
  across engines (tests/test_streaming.py).

* :class:`CallingContextTree` — per-context accumulation of profiler
  samples split by overhead component (check / dispatch / payload /
  ...), with an associatively-mergeable snapshot form so CCTs compose
  across epochs and pool workers exactly like every other profile
  surface in the repo.

Snapshot form (the ``"cct"`` subdict of a profiler snapshot and the
profile sections of streamed epochs)::

    {"a;b;c": {"check": [samples, wall_seconds], "dispatch": [...]}}

Keys are ``;``-joined root→leaf paths (the collapsed-stack convention
shared with ``profiler.snapshot()["stacks"]``); values map component
name to a ``[count, wall]`` pair. Both fields are additive, so
:func:`merge_cct_tables` is associative and commutative and
:func:`diff_cct_table` composes through it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Separator for flattened context paths — matches the collapsed-stack
#: convention used by ``OverheadProfiler.snapshot()["stacks"]``.
PATH_SEPARATOR = ";"


def join_path(path: Sequence[str]) -> str:
    """Flatten a root→leaf path tuple to its snapshot key."""
    return PATH_SEPARATOR.join(path)


def split_path(key: str) -> Tuple[str, ...]:
    """Inverse of :func:`join_path`."""
    if not key:
        return ()
    return tuple(key.split(PATH_SEPARATOR))


class ContextTracker:
    """Interns calling-context paths to dense integer ids.

    Ids are assigned in first-observation order starting at 0, so two
    trackers fed the same observation sequence produce identical
    mappings — the determinism the cross-engine bit-identity contract
    leans on.
    """

    __slots__ = ("_ids", "_paths")

    def __init__(self) -> None:
        self._ids: Dict[Tuple[str, ...], int] = {}
        self._paths: List[Tuple[str, ...]] = []

    def __len__(self) -> int:
        return len(self._paths)

    def intern(self, path: Sequence[str]) -> int:
        """The id for *path*, allocating one on first observation."""
        key = tuple(path)
        ctx = self._ids.get(key)
        if ctx is None:
            ctx = len(self._paths)
            self._ids[key] = ctx
            self._paths.append(key)
        return ctx

    def intern_frames(self, frames) -> int:
        """Intern the path named by a live frame stack (root→leaf)."""
        return self.intern([f.function.name for f in frames])

    def path_of(self, ctx: int) -> Tuple[str, ...]:
        """The path interned as *ctx* (raises on unknown ids)."""
        return self._paths[ctx]

    def items(self) -> List[Tuple[int, Tuple[str, ...]]]:
        return list(enumerate(self._paths))

    def entries_since(self, mark: int) -> List[Tuple[int, str]]:
        """``(id, joined-path)`` pairs allocated at or after *mark* —
        the incremental context table a streaming epoch carries."""
        return [
            (ctx, join_path(path))
            for ctx, path in enumerate(self._paths[mark:], start=mark)
        ]

    def table(self) -> Dict[str, str]:
        """The full id→path mapping in JSON-friendly form."""
        return {str(ctx): join_path(path) for ctx, path in self.items()}


class CallingContextTree:
    """Per-context, per-component sample accumulation.

    The tree structure is implicit in the interned paths (a node's
    parent is its path minus the leaf); storage is a flat table per
    context id, which keeps the hot :meth:`record` path to a dict
    lookup and two adds.
    """

    __slots__ = ("tracker", "_cells")

    def __init__(self) -> None:
        self.tracker = ContextTracker()
        self._cells: Dict[int, Dict[str, List[float]]] = {}

    def record(
        self,
        path: Sequence[str],
        component: str,
        count: int = 1,
        wall: float = 0.0,
    ) -> int:
        """Attribute *count* samples / *wall* seconds of *component* to
        the context named by *path*; returns the context id."""
        ctx = self.tracker.intern(path)
        cell = self._cells.get(ctx)
        if cell is None:
            cell = {}
            self._cells[ctx] = cell
        slot = cell.get(component)
        if slot is None:
            cell[component] = [count, wall]
        else:
            slot[0] += count
            slot[1] += wall
        return ctx

    def nodes(self) -> int:
        return len(self._cells)

    def snapshot(self) -> Dict[str, Dict[str, List[float]]]:
        """The associative snapshot table (see module docstring)."""
        return {
            join_path(self.tracker.path_of(ctx)): {
                component: list(slot) for component, slot in cell.items()
            }
            for ctx, cell in self._cells.items()
        }


# ---------------------------------------------------------------------------
# snapshot-table algebra


def merge_cct_tables(
    base: Mapping[str, Mapping[str, Sequence[float]]],
    extra: Mapping[str, Mapping[str, Sequence[float]]],
) -> Dict[str, Dict[str, List[float]]]:
    """Fold two CCT snapshot tables additively (associative and
    commutative — both fields of every cell are sums)."""
    merged: Dict[str, Dict[str, List[float]]] = {
        key: {comp: list(slot) for comp, slot in cell.items()}
        for key, cell in base.items()
    }
    for key, cell in extra.items():
        target = merged.setdefault(key, {})
        for component, slot in cell.items():
            dest = target.get(component)
            if dest is None:
                target[component] = list(slot)
            else:
                dest[0] += slot[0]
                dest[1] += slot[1]
    return merged


def diff_cct_table(
    base: Mapping[str, Mapping[str, Sequence[float]]],
    current: Mapping[str, Mapping[str, Sequence[float]]],
) -> Dict[str, Dict[str, List[float]]]:
    """The increment such that ``merge_cct_tables(base, diff) ==
    current`` for append-only tables (cells only ever grow)."""
    delta: Dict[str, Dict[str, List[float]]] = {}
    for key, cell in current.items():
        base_cell = base.get(key, {})
        changed: Dict[str, List[float]] = {}
        for component, slot in cell.items():
            prev = base_cell.get(component)
            if prev is None:
                changed[component] = list(slot)
            else:
                dn = slot[0] - prev[0]
                dw = slot[1] - prev[1]
                if dn or dw:
                    changed[component] = [dn, dw]
        if changed:
            delta[key] = changed
    return delta


def context_totals(
    table: Mapping[str, Mapping[str, Sequence[float]]],
) -> Dict[str, Tuple[float, float]]:
    """Per-context ``(samples, wall)`` totals across components."""
    totals: Dict[str, Tuple[float, float]] = {}
    for key, cell in table.items():
        n = 0.0
        wall = 0.0
        for slot in cell.values():
            n += slot[0]
            wall += slot[1]
        totals[key] = (n, wall)
    return totals


def top_contexts(
    table: Mapping[str, Mapping[str, Sequence[float]]],
    limit: int = 10,
    component: Optional[str] = None,
) -> List[Tuple[str, float, float]]:
    """The *limit* hottest contexts as ``(path, samples, wall)``,
    ranked by sample count (wall breaks ties), optionally restricted to
    one overhead component."""
    rows: List[Tuple[str, float, float]] = []
    for key, cell in table.items():
        if component is not None:
            slot = cell.get(component)
            if slot is None:
                continue
            rows.append((key, slot[0], slot[1]))
        else:
            n = 0.0
            wall = 0.0
            for slot in cell.values():
                n += slot[0]
                wall += slot[1]
            rows.append((key, n, wall))
    rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
    return rows[:limit]


def cct_from_events(
    events: Iterable,
    contexts: Mapping[str, str],
) -> Dict[str, Dict[str, List[float]]]:
    """A CCT table recovered from recorder events carrying ``ctx``
    data fields (the fallback hotness surface when the profiler's CCT
    was not enabled — e.g. a spool written with ``context=True`` but
    ``profile=False``).

    Event kinds are mapped to pseudo-components: ``sample.fired`` →
    ``"sample"``, ``check.taken`` → ``"check"``, everything else to its
    own kind string. *contexts* is the spool's id→path table.
    """
    table: Dict[str, Dict[str, List[float]]] = {}
    for event in events:
        ctx: Optional[int] = None
        for key, value in event.data:
            if key == "ctx":
                ctx = int(value)
                break
        if ctx is None:
            continue
        path = contexts.get(str(ctx))
        if path is None:
            continue
        kind = event.kind
        if kind == "sample.fired":
            component = "sample"
        elif kind == "check.taken":
            component = "check"
        else:
            component = kind
        cell = table.setdefault(path, {})
        slot = cell.get(component)
        if slot is None:
            cell[component] = [1, 0.0]
        else:
            slot[0] += 1
    return table
