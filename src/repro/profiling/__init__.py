"""Self-sampling VM overhead profiling (docs/PROFILING.md).

The paper's counter-based sampling machinery, pointed at the host
interpreters themselves:

* :mod:`repro.profiling.profiler` — :class:`OverheadProfiler`, sampling
  at the engines' observer boundaries and attributing wall time to cost
  components (dispatch / compiled / check / dup / trampoline / payload / poll /
  runtime), plus heat maps and calling-context stack samples;
* :mod:`repro.profiling.decomposition` — per-cell overhead-decomposition
  reports whose component sum reconciles against measured wall time;
* :mod:`repro.profiling.flamegraph` — collapsed-stack, speedscope, and
  Chrome trace_event flame-graph exporters;
* :mod:`repro.profiling.ledger` — the continuous perf-regression
  ledger (``BENCH_history.jsonl``) and its rolling-baseline comparator;
* :mod:`repro.profiling.cct` — the first-class calling-context tree:
  dense context interning, per-context cost attribution, and the
  associative snapshot-table merges the streaming spool relies on.
"""

from repro.profiling.cct import (
    PATH_SEPARATOR,
    CallingContextTree,
    ContextTracker,
    cct_from_events,
    context_totals,
    diff_cct_table,
    join_path,
    merge_cct_tables,
    split_path,
    top_contexts,
)

from repro.profiling.decomposition import (
    DEFAULT_TOLERANCE,
    DecompositionReport,
    decompose,
)
from repro.profiling.flamegraph import (
    stacks_to_chrome_flame,
    stacks_to_collapsed,
    stacks_to_speedscope,
    write_chrome_flame,
    write_collapsed,
    write_speedscope,
)
from repro.profiling.ledger import (
    DEFAULT_NOISE_PCT,
    DEFAULT_WINDOW,
    LEDGER_ENV,
    LEDGER_FILENAME,
    LedgerReport,
    PerfLedger,
    TrendVerdict,
    calibration_score,
    host_fingerprint,
    make_record,
    resolve_ledger,
)
from repro.profiling.profiler import (
    COMPONENTS,
    DEFAULT_INTERVAL,
    OverheadProfiler,
    merge_snapshots,
)

__all__ = [
    "COMPONENTS",
    "CallingContextTree",
    "ContextTracker",
    "DEFAULT_INTERVAL",
    "DEFAULT_NOISE_PCT",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "DecompositionReport",
    "LEDGER_ENV",
    "LEDGER_FILENAME",
    "LedgerReport",
    "OverheadProfiler",
    "PATH_SEPARATOR",
    "PerfLedger",
    "TrendVerdict",
    "calibration_score",
    "cct_from_events",
    "context_totals",
    "decompose",
    "diff_cct_table",
    "host_fingerprint",
    "join_path",
    "make_record",
    "merge_cct_tables",
    "merge_snapshots",
    "resolve_ledger",
    "split_path",
    "top_contexts",
    "stacks_to_chrome_flame",
    "stacks_to_collapsed",
    "stacks_to_speedscope",
    "write_chrome_flame",
    "write_collapsed",
    "write_speedscope",
]
