"""The instrumentation-sampling framework (the paper's contribution)."""

from repro.sampling.budget import (
    BudgetSelection,
    hotness_from_samples,
    select_functions_within_budget,
)
from repro.sampling.checks import insert_checks_only
from repro.sampling.duplication import (
    DuplicationResult,
    dup_dag_edges,
    full_duplicate,
)
from repro.sampling.framework import (
    PlannedLoader,
    SamplingFramework,
    Strategy,
    TransformReport,
    transform_planned,
    transform_program,
)
from repro.sampling.no_duplication import no_duplicate
from repro.sampling.partial_duplication import (
    PartialDuplicationStats,
    partial_duplicate,
)
from repro.sampling.properties import (
    StaticCheckReport,
    check_budget,
    checking_code_blocks,
    property1_dynamic,
    verify_check_placement,
)
from repro.sampling.triggers import (
    BurstTrigger,
    CounterTrigger,
    NeverTrigger,
    PerThreadCounterTrigger,
    RandomizedCounterTrigger,
    TimerTrigger,
    Trigger,
    make_trigger,
)
from repro.sampling.yieldpoints import (
    count_yieldpoints,
    insert_yieldpoints,
    insert_yieldpoints_cfg,
)

__all__ = [
    "SamplingFramework",
    "Strategy",
    "TransformReport",
    "transform_program",
    "transform_planned",
    "PlannedLoader",
    "full_duplicate",
    "partial_duplicate",
    "no_duplicate",
    "DuplicationResult",
    "PartialDuplicationStats",
    "dup_dag_edges",
    "insert_checks_only",
    "BudgetSelection",
    "select_functions_within_budget",
    "hotness_from_samples",
    "Trigger",
    "NeverTrigger",
    "CounterTrigger",
    "BurstTrigger",
    "PerThreadCounterTrigger",
    "TimerTrigger",
    "RandomizedCounterTrigger",
    "make_trigger",
    "insert_yieldpoints",
    "insert_yieldpoints_cfg",
    "count_yieldpoints",
    "verify_check_placement",
    "checking_code_blocks",
    "StaticCheckReport",
    "property1_dynamic",
    "check_budget",
]
