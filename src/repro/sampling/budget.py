"""Space-budgeted method selection for instrumentation.

Paper §3: "an adaptive system will likely instrument only the hot
methods ... If space is limited, the number of methods instrumented
simultaneously can be limited." This helper implements that policy:
given a hotness estimate and a code-space budget, pick the hottest
methods whose *duplicated* size fits, for use as the framework's
``functions=`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bytecode.program import Program


@dataclass
class BudgetSelection:
    """Outcome of :func:`select_functions_within_budget`."""

    selected: List[str]
    skipped: List[str]
    budget_instructions: int
    used_instructions: int

    @property
    def utilization(self) -> float:
        if self.budget_instructions == 0:
            return 0.0
        return self.used_instructions / self.budget_instructions


def select_functions_within_budget(
    program: Program,
    hotness: Dict[str, float],
    budget_instructions: int,
    min_hotness: float = 0.0,
) -> BudgetSelection:
    """Choose the hottest methods whose duplication fits the budget.

    The space cost of instrumenting a method under Full-Duplication is
    approximately one extra copy of its body, so each candidate charges
    its instruction count against ``budget_instructions``. Methods are
    considered hottest-first (deterministic tie-break by name); a
    method that does not fit is skipped and later, smaller methods may
    still be selected (greedy knapsack).
    """
    if budget_instructions < 0:
        raise ValueError("budget must be >= 0")
    candidates = [
        (share, name)
        for name, share in hotness.items()
        if share >= min_hotness and name in program.functions
    ]
    candidates.sort(key=lambda item: (-item[0], item[1]))
    selected: List[str] = []
    skipped: List[str] = []
    used = 0
    for _share, name in candidates:
        size = program.functions[name].instruction_count()
        if used + size <= budget_instructions:
            selected.append(name)
            used += size
        else:
            skipped.append(name)
    return BudgetSelection(
        selected=selected,
        skipped=skipped,
        budget_instructions=budget_instructions,
        used_instructions=used,
    )


def hotness_from_samples(
    program: Program, call_edge_profile, floor: float = 0.0
) -> Dict[str, float]:
    """Convenience: method hotness restricted to functions that exist
    in *program* (sampled callee shares, see
    :func:`repro.adaptive.hotness.method_hotness`)."""
    from repro.adaptive.hotness import method_hotness

    return {
        name: share
        for name, share in method_hotness(call_edge_profile).items()
        if name in program.functions and share >= floor
    }
