"""Checks-only insertion: the paper's Table 2 breakdown configuration.

To attribute Full-Duplication's framework overhead between backedge
checks and method-entry checks, the paper inserts each kind of check
independently *without duplicating any code* (their footnote 2: "this
configuration cannot be used to sample instrumentation; it is included
solely to provide an approximate breakdown of the direct checking
overhead"). We reproduce that: a check whose taken target equals its
fallthrough — it costs exactly a check, and firing it is harmless.
"""

from __future__ import annotations

from repro.cfg.basic_block import CheckBranch
from repro.cfg.graph import CFG
from repro.cfg.loops import sampling_backedges


def insert_checks_only(
    cfg: CFG, entries: bool = True, backedges: bool = True
) -> int:
    """Insert self-targeting checks on entry and/or backedges, in place.

    Returns the number of checks inserted.
    """
    inserted = 0
    if backedges:
        for src, header in list(dict.fromkeys(sampling_backedges(cfg))):
            trampoline = cfg.split_edge(src, header)
            trampoline.terminator = CheckBranch(header, header)
            inserted += 1
    if entries:
        old_entry = cfg.entry
        entry_check = cfg.new_block(
            terminator=CheckBranch(old_entry, old_entry)
        )
        cfg.entry = entry_check.bid
        inserted += 1
    return inserted
