"""Partial-Duplication (paper §3.1): shrink the duplicated code.

Starting from Full-Duplication, remove every *top-node* and
*bottom-node* from the duplicated code without violating Property 1.
Both are defined on the duplicated-code DAG (duplicated blocks with the
redirected backedges excluded):

* **bottom-node** — a non-instrumented duplicated block from which no
  instrumented block is reachable. Once execution reaches one, no more
  instrumentation can run before returning to checking code, so it may
  as well return immediately: every duplicated edge into it is
  redirected to the corresponding *checking* block.
* **top-node** — a non-instrumented duplicated block such that no path
  from a duplicated-code entry point reaches it through an instrumented
  block (equivalently: it is not instrumented and has no instrumented
  DAG ancestor). Removing it requires two adjustments (the paper's
  list): (1) checks in the checking code that branch *to* a removed
  node are deleted; (2) for every duplicated edge from a removed
  top-node into a kept block, the corresponding checking-code edge
  gains a check targeting that kept duplicate.

The static number of checks may grow or shrink; the dynamic number is
≤ Full-Duplication's, and the instrumentation behaves identically —
both facts are exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.cfg.basic_block import CheckBranch, Goto
from repro.cfg.graph import CFG
from repro.sampling.duplication import (
    DuplicationResult,
    dup_dag_edges,
    full_duplicate,
)


@dataclass
class PartialDuplicationStats:
    """What the pruning removed/added (reported by the harness)."""

    top_nodes: int = 0
    bottom_nodes: int = 0
    checks_removed: int = 0
    checks_added: int = 0
    blocks_before: int = 0
    blocks_after: int = 0


def _instrumented_dup_blocks(result: DuplicationResult) -> Set[int]:
    return {
        bid
        for bid in result.dup_bids
        if bid in result.cfg.blocks
        and result.cfg.block(bid).has_instrumentation()
    }


def _reaches_instrumented(
    nodes: Set[int], edges: List[Tuple[int, int]], instrumented: Set[int]
) -> Set[int]:
    """Nodes from which an instrumented node is reachable (incl. self)."""
    preds: Dict[int, List[int]] = {bid: [] for bid in nodes}
    for src, dst in edges:
        preds[dst].append(src)
    marked = set(instrumented)
    stack = list(instrumented)
    while stack:
        bid = stack.pop()
        for pred in preds.get(bid, ()):
            if pred not in marked:
                marked.add(pred)
                stack.append(pred)
    return marked


def _has_instrumented_ancestor(
    nodes: Set[int], edges: List[Tuple[int, int]], instrumented: Set[int]
) -> Set[int]:
    """Nodes with an instrumented node on some DAG path above them
    (incl. instrumented nodes themselves)."""
    succs: Dict[int, List[int]] = {bid: [] for bid in nodes}
    for src, dst in edges:
        succs[src].append(dst)
    marked = set(instrumented)
    stack = list(instrumented)
    while stack:
        bid = stack.pop()
        for succ in succs.get(bid, ()):
            if succ not in marked:
                marked.add(succ)
                stack.append(succ)
    return marked


def partial_duplicate(
    cfg: CFG, yieldpoint_opt: bool = False
) -> Tuple[DuplicationResult, PartialDuplicationStats]:
    """Full-Duplication followed by top/bottom-node pruning, in place."""
    result = full_duplicate(cfg, yieldpoint_opt=yieldpoint_opt)
    stats = PartialDuplicationStats(blocks_before=len(cfg.blocks))

    dup_nodes = {bid for bid in result.dup_bids if bid in cfg.blocks}
    edges = dup_dag_edges(result)
    instrumented = _instrumented_dup_blocks(result)

    reaches = _reaches_instrumented(dup_nodes, edges, instrumented)
    below = _has_instrumented_ancestor(dup_nodes, edges, instrumented)
    bottoms = dup_nodes - reaches
    tops = dup_nodes - below - bottoms  # prefer the bottom rule on overlap
    stats.bottom_nodes = len(bottoms)
    stats.top_nodes = len(tops)
    removed = bottoms | tops
    if not removed:
        stats.blocks_after = len(cfg.blocks)
        return result, stats

    orig_of: Dict[int, int] = {dup: orig for orig, dup in result.dup_map.items()}

    # (1) Kept duplicated block -> removed bottom-node: branch to the
    # corresponding checking block instead.
    for src in sorted(dup_nodes - removed):
        block = cfg.block(src)
        for dst in block.successors():
            if dst in bottoms:
                block.terminator.retarget(dst, orig_of[dst])

    # (2) Checks that branch to a removed node are deleted.
    for bid in sorted(cfg.blocks):
        block = cfg.blocks[bid]
        term = block.terminator
        if isinstance(term, CheckBranch) and term.taken in removed:
            block.terminator = Goto(term.fallthrough)
            stats.checks_removed += 1

    # (3) Removed top-node -> kept duplicated block: the corresponding
    # checking edge gains a check that can re-enter duplicated code.
    for src in sorted(tops):
        block = cfg.block(src)
        for dst in list(dict.fromkeys(block.successors())):
            if dst in dup_nodes and dst not in removed:
                check_src = orig_of[src]
                check_dst = orig_of[dst]
                trampoline = cfg.split_edge(check_src, check_dst)
                trampoline.terminator = CheckBranch(dst, check_dst)
                result.trampolines.append(trampoline.bid)
                stats.checks_added += 1

    # Removed nodes are now unreachable (nothing targets them).
    cfg.remove_unreachable()
    stats.blocks_after = len(cfg.blocks)
    return result, stats
