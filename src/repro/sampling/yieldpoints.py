"""Yieldpoint insertion (the Jalapeño thread-scheduling substrate, §4.5).

Jalapeño implements quasi-preemptive threading by placing *yieldpoints*
— polls of a timer-set threadswitch bit — on every method entry and
backedge, guaranteeing finite time between scheduler opportunities.
Our baseline programs get the same treatment, so:

* baseline and instrumented programs pay the same scheduling tax (the
  paper's overheads are all relative to yieldpoint-bearing code);
* the Jalapeño-specific optimization (strip yieldpoints from checking
  code, because the finite sample interval keeps the distance between
  the duplicated code's surviving yieldpoints finite) is a real,
  testable scheduling transformation here, not just a cost tweak.

Run :func:`insert_yieldpoints` once on the freshly compiled program;
the sampling transforms then inherit (and, in Jalapeño mode, strip)
the yieldpoints.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.cfg.graph import CFG
from repro.cfg.linearize import linearize
from repro.cfg.loops import sampling_backedges


def insert_yieldpoints_cfg(cfg: CFG) -> int:
    """Insert YIELDPOINT at the entry and at each backedge source.

    The backedge yieldpoint goes at the *end* of the source block (just
    before the branch), so after Full-Duplication it travels with the
    block copy whose backedge transfers back to checking code — i.e. it
    lands in duplicated code exactly as §4.5 describes.

    Returns the number of yieldpoints inserted. Idempotence is the
    caller's concern; this function always inserts.
    """
    inserted = 0
    entry = cfg.entry_block()
    entry.instructions.insert(0, Instruction(Op.YIELDPOINT))
    inserted += 1
    for src, _header in dict.fromkeys(sampling_backedges(cfg)):
        cfg.block(src).instructions.append(Instruction(Op.YIELDPOINT))
        inserted += 1
    return inserted


def insert_yieldpoints(
    program: Program, functions: Optional[Iterable[str]] = None
) -> Program:
    """Return a copy of *program* with yieldpoints in every function
    (or the selected ones)."""
    result = program.copy()
    names = list(functions) if functions is not None else result.function_names()
    for name in names:
        cfg = CFG.from_function(result.function(name))
        insert_yieldpoints_cfg(cfg)
        fn = linearize(cfg, notes={"yieldpoints": True})
        result.replace_function(fn)
    return result


def count_yieldpoints(program: Program) -> int:
    return sum(
        fn.count_op(Op.YIELDPOINT) for fn in program.functions.values()
    )
