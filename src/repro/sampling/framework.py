"""The instrumentation-sampling framework facade.

This module is the public entry point of the paper's contribution: give
it a program, an instrumentation, and a strategy, and it returns a
transformed program whose instrumentation executes only during samples.

Typical use::

    from repro.sampling import SamplingFramework, Strategy
    from repro.sampling.triggers import CounterTrigger
    from repro.instrument import CallEdgeInstrumentation

    instr = CallEdgeInstrumentation()
    framework = SamplingFramework(Strategy.FULL_DUPLICATION)
    sampled = framework.transform(program, instr)
    run_program(sampled, trigger=CounterTrigger(interval=1000))
    print(instr.profile.top(10))

Strategies:

* ``EXHAUSTIVE`` — no sampling; instrumentation runs on every event
  (the Table 1 baseline).
* ``FULL_DUPLICATION`` — §2's transform (checks on entry+backedges,
  whole body duplicated).
* ``PARTIAL_DUPLICATION`` — §3.1 (top/bottom-node pruning).
* ``NO_DUPLICATION`` — §3.2 (each operation individually guarded).
* ``CHECKS_ONLY_ENTRY`` / ``CHECKS_ONLY_BACKEDGE`` — measurement-only
  configurations for Table 2's overhead breakdown (checks inserted,
  nothing sampled, instrumentation dropped).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.bytecode.function import Function
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program
from repro.cfg.graph import CFG
from repro.cfg.linearize import linearize
from repro.errors import TransformError
from repro.instrument.base import CombinedInstrumentation, Instrumentation
from repro.sampling.checks import insert_checks_only
from repro.sampling.duplication import full_duplicate
from repro.sampling.no_duplication import no_duplicate
from repro.sampling.partial_duplication import (
    PartialDuplicationStats,
    partial_duplicate,
)


class Strategy(enum.Enum):
    """How instrumentation cost is controlled."""

    EXHAUSTIVE = "exhaustive"
    FULL_DUPLICATION = "full-duplication"
    PARTIAL_DUPLICATION = "partial-duplication"
    NO_DUPLICATION = "no-duplication"
    CHECKS_ONLY_ENTRY = "checks-only-entry"
    CHECKS_ONLY_BACKEDGE = "checks-only-backedge"


@dataclass
class TransformReport:
    """Per-function accounting from one framework application."""

    strategy: Strategy
    yieldpoint_opt: bool = False
    functions_transformed: int = 0
    instructions_before: int = 0
    instructions_after: int = 0
    static_checks: int = 0
    guarded_ops: int = 0
    partial_stats: Dict[str, PartialDuplicationStats] = field(
        default_factory=dict
    )

    @property
    def code_growth(self) -> float:
        """Instructions-after / instructions-before (>= 1 for
        duplication strategies)."""
        if self.instructions_before == 0:
            return 1.0
        return self.instructions_after / self.instructions_before


class RuntimeLoader:
    """Instrument-at-load hook for dynamically arriving code.

    Attached to every transformed program by
    :meth:`SamplingFramework.transform`; when the running program
    executes ``LOADFN``/``REPLACEFN``, :meth:`Program.define_at_runtime`
    hands the raw template here and installs what :meth:`load` returns —
    so functions that arrive mid-run get exactly the same checks,
    duplicated bodies, and instrumentation hooks as the statically
    transformed code, and Property 1 keeps holding over the grown
    program.  The loader is stateless (framework config plus the shared
    instrumentation object), so program copies can share it.
    """

    def __init__(
        self,
        framework: "SamplingFramework",
        instrumentation: Optional[Instrumentation],
    ):
        self.framework = framework
        self.instrumentation = instrumentation

    def load(self, template: Function, name: str, program: Program) -> Function:
        fn = template.copy(name=name)
        transformed = self.framework.transform_function(
            fn, program, self.instrumentation
        )
        if self.framework.verify:
            from repro.bytecode.verifier import verify_function

            verify_function(transformed, program)
        return transformed


class SamplingFramework:
    """Applies a sampling strategy to instrumented programs.

    Args:
        strategy: cost-control strategy (see :class:`Strategy`).
        yieldpoint_opt: apply the Jalapeño-specific optimization
            (§4.5) — only meaningful for the duplication strategies,
            and only on programs that carry yieldpoints.
        verify: run the bytecode verifier on every transformed program
            (cheap insurance that the rewrite preserved well-formedness).
    """

    def __init__(
        self,
        strategy: Strategy = Strategy.FULL_DUPLICATION,
        yieldpoint_opt: bool = False,
        verify: bool = True,
        sample_iterations: int = 1,
    ):
        if yieldpoint_opt and strategy not in (
            Strategy.FULL_DUPLICATION,
            Strategy.PARTIAL_DUPLICATION,
        ):
            raise TransformError(
                "the yieldpoint optimization requires a duplication strategy"
            )
        if sample_iterations < 1:
            raise TransformError("sample_iterations must be >= 1")
        if sample_iterations > 1 and strategy is not Strategy.FULL_DUPLICATION:
            raise TransformError(
                "counted backedges (sample_iterations > 1) require "
                "Full-Duplication"
            )
        self.strategy = strategy
        self.yieldpoint_opt = yieldpoint_opt
        self.verify = verify
        self.sample_iterations = sample_iterations
        self.last_report: Optional[TransformReport] = None

    # -- public API ---------------------------------------------------------

    def transform(
        self,
        program: Program,
        instrumentation: Union[Instrumentation, Sequence[Instrumentation], None],
        functions: Optional[Iterable[str]] = None,
    ) -> Program:
        """Return a transformed copy of *program*.

        ``instrumentation`` may be a single kind, a sequence (combined
        into one pass — multiple instrumentations share one set of
        checks and one duplicated body), or None for the checks-only
        strategies.
        """
        instr = self._normalize_instrumentation(instrumentation)
        report = TransformReport(self.strategy, self.yieldpoint_opt)
        result = program.copy()
        names = (
            list(functions)
            if functions is not None
            else result.function_names()
        )
        for name in names:
            original = result.function(name)
            report.instructions_before += original.instruction_count()
            transformed = self.transform_function(original, result, instr, report)
            report.instructions_after += transformed.instruction_count()
            report.functions_transformed += 1
            result.replace_function(transformed)
        # Dynamically loaded code must be transformed the same way the
        # static functions were: route the program's load events back
        # through this framework (instrument-at-load).
        result.loader = RuntimeLoader(self, instr)
        if self.verify:
            verify_program(result)
        self.last_report = report
        return result

    def transform_function(
        self,
        fn: Function,
        program: Program,
        instrumentation: Optional[Instrumentation],
        report: Optional[TransformReport] = None,
    ) -> Function:
        """Transform a single function (used directly by the adaptive
        controller, which instruments one hot method at a time)."""
        report = report if report is not None else TransformReport(self.strategy)
        cfg = CFG.from_function(fn)
        strategy = self.strategy
        cold = None

        if strategy in (Strategy.CHECKS_ONLY_ENTRY, Strategy.CHECKS_ONLY_BACKEDGE):
            insert_checks_only(
                cfg,
                entries=strategy is Strategy.CHECKS_ONLY_ENTRY,
                backedges=strategy is Strategy.CHECKS_ONLY_BACKEDGE,
            )
        else:
            if instrumentation is None:
                raise TransformError(
                    f"strategy {strategy.value} requires an instrumentation"
                )
            instrumentation.instrument_cfg(cfg, program)
            if strategy is Strategy.EXHAUSTIVE:
                pass
            elif strategy is Strategy.FULL_DUPLICATION:
                result = full_duplicate(
                    cfg,
                    yieldpoint_opt=self.yieldpoint_opt,
                    sample_iterations=self.sample_iterations,
                )
                cold = result.cold_blocks()
            elif strategy is Strategy.PARTIAL_DUPLICATION:
                result, pstats = partial_duplicate(
                    cfg, yieldpoint_opt=self.yieldpoint_opt
                )
                cold = result.cold_blocks()
                report.partial_stats[fn.name] = pstats
            elif strategy is Strategy.NO_DUPLICATION:
                report.guarded_ops += no_duplicate(cfg)
            else:  # pragma: no cover - exhaustive enum handling
                raise TransformError(f"unhandled strategy {strategy!r}")

        transformed = linearize(
            cfg,
            cold_blocks=cold,
            notes={
                "sampling": strategy.value,
                "yieldpoint_opt": self.yieldpoint_opt,
                "sample_iterations": self.sample_iterations,
            },
        )
        report.static_checks += transformed.count_op(Op.CHECK)
        return transformed

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _normalize_instrumentation(
        instrumentation: Union[Instrumentation, Sequence[Instrumentation], None],
    ) -> Optional[Instrumentation]:
        if instrumentation is None:
            return None
        if isinstance(instrumentation, Instrumentation):
            return instrumentation
        parts = list(instrumentation)
        if len(parts) == 1:
            return parts[0]
        return CombinedInstrumentation(parts)


def transform_program(
    program: Program,
    instrumentation: Union[Instrumentation, Sequence[Instrumentation], None],
    strategy: Strategy = Strategy.FULL_DUPLICATION,
    functions: Optional[Iterable[str]] = None,
    yieldpoint_opt: bool = False,
    verify: bool = True,
) -> Program:
    """Functional shorthand for one-off transforms."""
    framework = SamplingFramework(strategy, yieldpoint_opt, verify)
    return framework.transform(program, instrumentation, functions)


class PlannedLoader:
    """Instrument-at-load dispatch for mixed-strategy programs.

    The per-strategy :class:`RuntimeLoader` applies one framework to
    every arriving function; a planned program instead carries a
    function→strategy map (a :class:`~repro.analysis.planner`
    ``StrategyPlan``), so code loaded mid-run must be transformed under
    the strategy *planned for its install name* — falling back to the
    template's name (the planner plans loadables by template) and then
    to the plan's default. Frameworks are created lazily per strategy
    and shared with :func:`transform_planned`'s static pass, so static
    and dynamic code of the same function are transformed identically.
    """

    def __init__(
        self,
        assignments: Dict[str, Strategy],
        default: Strategy,
        instrumentation: Optional[Instrumentation],
        yieldpoint_opt: bool = False,
        verify: bool = True,
    ):
        self.assignments = dict(assignments)
        self.default = default
        self.instrumentation = instrumentation
        self.yieldpoint_opt = yieldpoint_opt
        self.verify = verify
        self._frameworks: Dict[Strategy, SamplingFramework] = {}

    def strategy_for(
        self, name: str, template_name: Optional[str] = None
    ) -> Strategy:
        if name in self.assignments:
            return self.assignments[name]
        if template_name is not None and template_name in self.assignments:
            return self.assignments[template_name]
        return self.default

    def framework(self, strategy: Strategy) -> SamplingFramework:
        framework = self._frameworks.get(strategy)
        if framework is None:
            # The yieldpoint optimization is only legal on duplication
            # strategies; a plan mixing strategies drops it elsewhere.
            opt = self.yieldpoint_opt and strategy in (
                Strategy.FULL_DUPLICATION,
                Strategy.PARTIAL_DUPLICATION,
            )
            framework = SamplingFramework(
                strategy, yieldpoint_opt=opt, verify=self.verify
            )
            self._frameworks[strategy] = framework
        return framework

    def load(self, template: Function, name: str, program: Program) -> Function:
        framework = self.framework(self.strategy_for(name, template.name))
        fn = template.copy(name=name)
        transformed = framework.transform_function(
            fn, program, self.instrumentation
        )
        if self.verify:
            from repro.bytecode.verifier import verify_function

            verify_function(transformed, program)
        return transformed


def transform_planned(
    program: Program,
    instrumentation: Union[Instrumentation, Sequence[Instrumentation], None],
    assignments: Dict[str, Union[Strategy, str]],
    default: Strategy = Strategy.FULL_DUPLICATION,
    yieldpoint_opt: bool = False,
    verify: bool = True,
) -> Program:
    """Transform *program* under a per-function strategy assignment.

    *assignments* maps function (or loadable-template) names to
    strategies — :class:`Strategy` members or their string values, as a
    ``StrategyPlan`` serializes them; unnamed functions fall back to
    *default*. Each function is stamped ``fn.notes["sampling"]`` by its
    own framework, so ``audit_program(strategy=None)`` audits the mix
    under the per-function rules with no auditor changes, and the
    attached :class:`PlannedLoader` keeps dynamically arriving code on
    plan.
    """
    instr = SamplingFramework._normalize_instrumentation(instrumentation)
    normalized = {
        name: (value if isinstance(value, Strategy) else Strategy(value))
        for name, value in assignments.items()
    }
    loader = PlannedLoader(normalized, default, instr, yieldpoint_opt, verify)
    result = program.copy()
    for name in result.function_names():
        framework = loader.framework(loader.strategy_for(name))
        transformed = framework.transform_function(
            result.function(name), result, instr
        )
        result.replace_function(transformed)
    result.loader = loader
    if verify:
        verify_program(result)
    return result
