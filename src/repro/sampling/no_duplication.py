"""No-Duplication (paper §3.2, Figure 6).

No code is duplicated; instead every instrumentation operation is
individually guarded by the sample condition: INSTR becomes
GUARDED_INSTR, which polls the trigger and executes the action only on
a fire. Property 1 is *not* guaranteed — a block with three
instrumentation operations polls three times per execution — but when
instrumentation is sparser than backedges+entries (the paper's
call-edge example, 1.3% checking overhead) this executes *fewer* checks
than Full-Duplication.

Sampling semantics differ slightly from Full-Duplication (one fired
guard runs one action; a taken duplication check runs all actions until
the next backedge), but both execute instrumented operations
proportionally to their frequency, so the resulting profiles agree —
Table 4 shows near-identical accuracy columns, and our test suite
checks the same property.
"""

from __future__ import annotations

from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import Op
from repro.cfg.graph import CFG


def no_duplicate(cfg: CFG) -> int:
    """Guard every instrumentation operation in place.

    Returns the number of operations guarded.
    """
    guarded = 0
    for block in cfg.blocks.values():
        body = block.instructions
        for index, ins in enumerate(body):
            if ins.op == Op.INSTR:
                body[index] = Instruction(Op.GUARDED_INSTR, ins.arg, ins.meta)
                guarded += 1
    return guarded
