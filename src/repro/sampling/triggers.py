"""Sample triggers: the mechanisms that decide *when* a check fires.

The paper's framework decouples *where* samples can start (checks on
method entries and backedges) from *when* they do (the trigger). Three
triggers are provided:

* :class:`CounterTrigger` — the paper's compiler-inserted counter-based
  sampling (Figure 3): a global counter decremented at every check;
  reaching zero triggers a sample and resets the counter to the sample
  interval. Deterministic, proportional to check execution frequency,
  tunable at runtime.
* :class:`TimerTrigger` — the §2.1 strawman: a virtual timer interrupt
  sets a bit; the *next* check executed takes the sample. Reproduces the
  mis-attribution bias (code following long-latency operations is
  over-sampled) evaluated in §4.6 / Table 5.
* :class:`RandomizedCounterTrigger` — counter-based with a small
  deterministic pseudo-random perturbation of each interval, the §4.4
  mitigation for programs whose behaviour correlates with a fixed
  sample period.

Triggers are plain objects polled by the VM at every CHECK /
GUARDED_INSTR; they hold no reference to the VM, so this module stays a
leaf import shared by :mod:`repro.vm` and :mod:`repro.sampling`.

Polling contract (what both execution engines must honour)
----------------------------------------------------------

A trigger's observable behaviour is a deterministic function of the
*sequence* of calls it receives, never of wall clock, host state, or
which engine drives it:

* ``poll()`` is invoked exactly once per executed CHECK /
  GUARDED_INSTR, in program execution order;
* ``notify_timer_tick()`` is invoked when accumulated cycle cost
  crosses a multiple of the timer period, *before* the next ``poll()``;
* ``notify_thread(tid)`` is invoked at every thread switch, before any
  ``poll()`` from the incoming thread.

The fast engine (:mod:`repro.vm.engine`) keeps every CHECK and
GUARDED_INSTR in its own segment precisely so this call sequence —
including its interleaving with tick and thread notifications — is
bit-identical to the reference interpreter's. Fused superinstructions
never skip, reorder, or batch trigger polls. Any new trigger must keep
``poll()`` free of engine-visible side effects beyond its own counters,
or the two engines could diverge.

Triggers are also reused *outside* guest sampling: the self-sampling
overhead profiler (:mod:`repro.profiling`) drives a private
:class:`CounterTrigger` from the engines' observer boundaries to sample
the host VM itself. The same Property-1-style cap applies there —
:meth:`Trigger.sample_bound` states it once, as a pure function of the
trigger's own counters, and :func:`repro.analysis.reconcile_profile`
checks it after every profiled run.
"""

from __future__ import annotations

from typing import Optional


class Trigger:
    """Base trigger. ``poll()`` is the per-check hot path."""

    #: Factory name understood by :func:`make_trigger`; also the
    #: ``kind`` field of :meth:`config` descriptors in run manifests.
    kind = "abstract"

    def __init__(self) -> None:
        self.samples_triggered = 0
        self.checks_polled = 0
        self.enabled = True

    def config(self) -> dict:
        """JSON-able description of this trigger's configuration —
        everything needed to rebuild it via :func:`make_trigger`
        (recorded in run manifests; see repro.telemetry.manifest).
        Subclasses extend with their parameters."""
        return {"kind": self.kind}

    def poll(self) -> bool:
        """Called at every executed check; True means take a sample."""
        raise NotImplementedError

    def notify_timer_tick(self) -> None:
        """Called by the VM whenever the virtual timer period elapses."""

    def notify_thread(self, tid: int) -> None:
        """Called by the VM when a (green) thread is scheduled in.
        Only thread-aware triggers care."""

    def disable(self) -> None:
        """Permanently stop sampling (the paper's 'set the sample
        condition permanently to false'): execution stays in checking
        code, paying only check cost."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def sample_bound(self) -> Optional[int]:
        """Property-1-style cap on samples as a function of polls:
        for interval-based triggers, at most one sample per ``interval``
        polls plus the in-flight countdown. ``None`` when the trigger
        has no interval (timer/never triggers derive no counter bound).
        """
        interval = getattr(self, "interval", None)
        if not interval:
            return None
        return self.checks_polled // interval + 1


class NeverTrigger(Trigger):
    """Sample condition always false.

    Used to measure pure framework overhead (Table 2 / Table 3 /
    Figure 8(A)): checks execute and cost cycles but never fire.
    """

    kind = "never"

    def poll(self) -> bool:
        self.checks_polled += 1
        return False


class CounterTrigger(Trigger):
    """The paper's global-counter trigger.

    ``interval`` is the paper's *sample interval*: the number of checks
    executed per sample. It may be changed at runtime via
    :meth:`set_interval` (the framework's tunability claim).
    """

    kind = "counter"

    def __init__(self, interval: int, phase: int = 0):
        super().__init__()
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        if phase < 0:
            raise ValueError(f"phase must be >= 0, got {phase}")
        self.interval = interval
        self.phase = phase
        # ``phase`` advances the first sample: the counter starts at
        # interval - phase. Sampling stays strictly periodic; harnesses
        # average over a few phases to expose (or wash out) the §4.4
        # deterministic-correlation effect.
        self.counter = interval - (phase % interval)

    def config(self) -> dict:
        return {
            "kind": self.kind,
            "interval": self.interval,
            "phase": self.phase,
        }

    def set_interval(self, interval: int) -> None:
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        self.interval = interval
        if self.counter > interval:
            self.counter = interval

    def poll(self) -> bool:
        self.checks_polled += 1
        if not self.enabled:
            return False
        self.counter -= 1
        if self.counter <= 0:
            self.counter = self.interval
            self.samples_triggered += 1
            return True
        return False


class TimerTrigger(Trigger):
    """Sample-bit trigger set by the virtual timer interrupt.

    The VM calls :meth:`notify_timer_tick` every ``timer_period``
    simulated cycles; the next polled check consumes the bit. Multiple
    ticks between checks collapse into one sample — exactly the
    low-frequency, badly-attributed behaviour the paper describes.
    """

    kind = "timer"

    def __init__(self) -> None:
        super().__init__()
        self.sample_bit = False
        self.ticks = 0

    def notify_timer_tick(self) -> None:
        self.ticks += 1
        if self.enabled:
            self.sample_bit = True

    def poll(self) -> bool:
        self.checks_polled += 1
        if self.sample_bit:
            self.sample_bit = False
            self.samples_triggered += 1
            return True
        return False


class RandomizedCounterTrigger(Trigger):
    """Counter trigger with deterministic per-sample interval jitter.

    Each reset draws the next interval uniformly from
    ``[interval - jitter, interval + jitter]`` using a private LCG, so
    runs remain reproducible (same seed → same samples) while breaking
    lockstep with periodic program behaviour.
    """

    kind = "randomized"

    _LCG_A = 6364136223846793005
    _LCG_C = 1442695040888963407
    _LCG_M = 2 ** 64

    def __init__(self, interval: int, jitter: Optional[int] = None, seed: int = 0x5EED):
        super().__init__()
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        self.interval = interval
        self.jitter = jitter if jitter is not None else max(1, interval // 10)
        if self.jitter >= interval:
            raise ValueError("jitter must be smaller than the interval")
        self.seed = seed
        self._state = seed & (self._LCG_M - 1)
        self.counter = self._next_interval()

    def config(self) -> dict:
        return {
            "kind": self.kind,
            "interval": self.interval,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    def _next_interval(self) -> int:
        self._state = (self._state * self._LCG_A + self._LCG_C) % self._LCG_M
        span = 2 * self.jitter + 1
        offset = (self._state >> 16) % span - self.jitter
        return self.interval + offset

    def poll(self) -> bool:
        self.checks_polled += 1
        if not self.enabled:
            return False
        self.counter -= 1
        if self.counter <= 0:
            self.counter = self._next_interval()
            self.samples_triggered += 1
            return True
        return False


class BurstTrigger(Trigger):
    """Counter-based sampling with trigger-side bursts.

    After the countdown fires, the trigger stays true for
    ``burst_length`` consecutive polls. Under Full-Duplication each of
    those polls re-enters duplicated code at the next check, so a burst
    observes a run of consecutive check-windows — the trigger-side
    counterpart of the transform-side counted backedges
    (``full_duplicate(sample_iterations=N)``), and the mechanism behind
    burst-style tracing profilers. Unlike counted backedges it needs no
    recompilation to change N, but it pays one check-taken transfer per
    burst member.

    ``samples_triggered`` counts bursts, not individual polls; the
    VM's ``checks_taken`` still counts every transfer.
    """

    kind = "burst"

    def __init__(self, interval: int, burst_length: int = 4):
        super().__init__()
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        if burst_length < 1:
            raise ValueError(
                f"burst length must be >= 1, got {burst_length}"
            )
        self.interval = interval
        self.burst_length = burst_length
        self.counter = interval
        self._burst_remaining = 0

    def config(self) -> dict:
        return {
            "kind": self.kind,
            "interval": self.interval,
            "burst_length": self.burst_length,
        }

    def poll(self) -> bool:
        self.checks_polled += 1
        if not self.enabled:
            return False
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return True
        self.counter -= 1
        if self.counter <= 0:
            self.counter = self.interval
            self.samples_triggered += 1
            self._burst_remaining = self.burst_length - 1
            return True
        return False


class PerThreadCounterTrigger(Trigger):
    """Counter-based sampling with one counter per thread.

    The paper's §2.2 scalability remedy: "the global counter could be
    replaced by thread- or processor-specific counters, allowing
    unsynchronized access to the counter, with no resource contention."
    On our green-threaded VM the observable effect is that each
    thread's sampling phase is independent of the others' check volume,
    so one chatty thread cannot starve another of samples.

    The VM announces scheduling via :meth:`notify_thread`.
    """

    kind = "per-thread-counter"

    def __init__(self, interval: int):
        super().__init__()
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        self.interval = interval
        self.counters: dict = {}
        self._tid = 0

    def config(self) -> dict:
        return {"kind": self.kind, "interval": self.interval}

    def notify_thread(self, tid: int) -> None:
        self._tid = tid

    def poll(self) -> bool:
        self.checks_polled += 1
        if not self.enabled:
            return False
        counter = self.counters.get(self._tid, self.interval) - 1
        if counter <= 0:
            self.counters[self._tid] = self.interval
            self.samples_triggered += 1
            return True
        self.counters[self._tid] = counter
        return False

    def samples_by_thread(self) -> dict:
        """tid -> samples attributable to that thread's counter phase
        (approximate: counts completed periods)."""
        return {
            tid: (self.interval - counter) // self.interval
            for tid, counter in self.counters.items()
        }


def make_trigger(kind: str, interval: Optional[int] = None, **kwargs) -> Trigger:
    """Factory used by the experiment harness config layer.

    ``kind`` is one of ``"never"``, ``"counter"``, ``"timer"``,
    ``"randomized"``, ``"per-thread-counter"``, ``"burst"``.
    """
    if kind == "never":
        return NeverTrigger()
    if kind == "counter":
        if interval is None:
            raise ValueError("counter trigger requires an interval")
        return CounterTrigger(interval, **kwargs)
    if kind == "timer":
        return TimerTrigger()
    if kind == "randomized":
        if interval is None:
            raise ValueError("randomized trigger requires an interval")
        return RandomizedCounterTrigger(interval, **kwargs)
    if kind == "per-thread-counter":
        if interval is None:
            raise ValueError("per-thread counter trigger requires an interval")
        return PerThreadCounterTrigger(interval)
    if kind == "burst":
        if interval is None:
            raise ValueError("burst trigger requires an interval")
        return BurstTrigger(interval, **kwargs)
    raise ValueError(f"unknown trigger kind {kind!r}")
