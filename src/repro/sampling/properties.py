"""Static and dynamic verification of the framework's invariants.

Property 1 (paper §2): *the number of checks executed in the checking
code is less than or equal to the number of backedges and method
entries executed, independent of the instrumentation being performed.*

The static side is a thin shim over the auditor
(:mod:`repro.analysis`): :func:`verify_check_placement` runs the three
placement invariants — AUD001 (checking-code purity), AUD002 (checks
target duplicated code), AUD003 (duplicated code acyclic) — and repacks
the findings into the historical :class:`StaticCheckReport` shape. One
implementation, two entry points: tests and old callers keep this API,
while ``repro lint`` / ``repro audit`` drive the full rule catalog.

The dynamic check compares ExecStats counters from an actual run; the
harness runs it on every experiment as a tripwire (and, when auditing
is enabled, additionally reconciles runs against the static cost
certificate — see :mod:`repro.analysis.reconcile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.analysis.context import FULL_DUPLICATION, AuditContext
from repro.analysis.rules import run_rules
from repro.bytecode.function import Function
from repro.vm.tracing import ExecStats

#: The auditor rules :func:`verify_check_placement` runs — the original
#: three placement invariants, in their historical order.
PLACEMENT_RULES = ("AUD001", "AUD002", "AUD003")


@dataclass
class StaticCheckReport:
    """Result of :func:`verify_check_placement`."""

    ok: bool = True
    problems: List[str] = field(default_factory=list)
    checks: int = 0
    instrumented_checking_blocks: int = 0
    #: Distinct auditor rule ids behind ``problems`` (empty when ok).
    rule_ids: List[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.problems.append(message)


def checking_code_blocks(fn: Function) -> Set[int]:
    """Block ids of the checking code of a transformed function."""
    return set(AuditContext(fn).checking)


def verify_check_placement(fn: Function) -> StaticCheckReport:
    """Statically verify a Full/Partial-Duplication output function.

    Invariants checked (by the auditor rules in :data:`PLACEMENT_RULES`):

    1. AUD001 — the checking code (blocks reachable when no check
       fires) contains no INSTR/GUARDED_INSTR operations.
    2. AUD002 — every check's taken target lies *outside* the checking
       code (checks jump into duplicated code).
    3. AUD003 — the duplicated code contains no cycles among itself;
       its backedges must have been redirected to checking code,
       bounding per-sample execution.

    The function's strategy stamp is ignored: callers hand us anything
    (including raw instrumented code in negative tests) and ask "would
    this pass as a duplication output?".
    """
    ctx = AuditContext(fn, strategy=FULL_DUPLICATION)
    findings = run_rules(ctx, rule_ids=PLACEMENT_RULES)
    report = StaticCheckReport(
        checks=len(ctx.checking_check_bids),
        instrumented_checking_blocks=len(
            ctx.instrumented_checking_blocks()
        ),
    )
    for finding in findings:
        report.fail(finding.format())
    report.rule_ids = sorted({f.rule_id for f in findings})
    return report


def property1_dynamic(stats: ExecStats) -> bool:
    """Dynamic Property 1 over one run's statistics.

    ``checks_executed`` counts only CHECK instructions (checking-code
    checks); GUARDED_INSTR polls are No-Duplication's and exempt by
    definition (the paper's §3.2 weakening).
    """
    return stats.property1_holds()


def property1_vs_baseline(
    transformed: ExecStats, baseline: ExecStats
) -> bool:
    """Cross-run Property 1: checks executed in the transformed run
    must not exceed the *baseline* run's method entries + backedges.

    This is the paper's statement verbatim (the bound is over the
    uninstrumented execution). Requires both runs to use the same
    program input, which holds for our deterministic workloads.
    """
    opportunities = (
        baseline.calls + baseline.threads_spawned + baseline.backward_jumps
    )
    return transformed.checks_executed <= opportunities


def check_budget(stats: ExecStats) -> str:
    """Human-readable Property-1 budget line for reports."""
    return (
        f"checks={stats.checks_executed} <= entries+backedges="
        f"{stats.check_opportunities} : "
        f"{'OK' if stats.property1_holds() else 'VIOLATED'}"
    )
