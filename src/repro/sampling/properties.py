"""Static and dynamic verification of the framework's invariants.

Property 1 (paper §2): *the number of checks executed in the checking
code is less than or equal to the number of backedges and method
entries executed, independent of the instrumentation being performed.*

Static checks (on a transformed function) verify the structure that
implies Property 1; the dynamic check compares ExecStats counters from
an actual run. Both are used by the test suite; the harness runs the
dynamic check on every experiment as a tripwire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.bytecode.function import Function
from repro.bytecode.opcodes import Op
from repro.cfg.basic_block import CheckBranch
from repro.cfg.graph import CFG
from repro.vm.tracing import ExecStats


@dataclass
class StaticCheckReport:
    """Result of :func:`verify_check_placement`."""

    ok: bool = True
    problems: List[str] = field(default_factory=list)
    checks: int = 0
    instrumented_checking_blocks: int = 0

    def fail(self, message: str) -> None:
        self.ok = False
        self.problems.append(message)


def _blocks_reachable_without_taken_checks(cfg: CFG) -> Set[int]:
    """Blocks reachable from the entry when no check ever fires — by
    construction, the checking code (plus trampolines)."""
    seen: Set[int] = set()
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        if bid in seen:
            continue
        seen.add(bid)
        term = cfg.block(bid).terminator
        if isinstance(term, CheckBranch):
            stack.append(term.fallthrough)
        else:
            stack.extend(term.successors())
    return seen


def checking_code_blocks(fn: Function) -> Set[int]:
    """Block ids of the checking code of a transformed function."""
    cfg = CFG.from_function(fn)
    return _blocks_reachable_without_taken_checks(cfg)


def verify_check_placement(fn: Function) -> StaticCheckReport:
    """Statically verify a Full/Partial-Duplication output function.

    Invariants checked:

    1. The checking code (blocks reachable when no check fires)
       contains no INSTR/GUARDED_INSTR operations.
    2. Every check's taken target lies *outside* the checking code
       (checks jump into duplicated code).
    3. The duplicated code (everything else) contains no cycles among
       itself — its backedges must have been redirected to checking
       code, bounding per-sample execution.
    """
    report = StaticCheckReport()
    cfg = CFG.from_function(fn)
    checking = _blocks_reachable_without_taken_checks(cfg)

    for bid in sorted(checking):
        block = cfg.block(bid)
        if block.has_instrumentation():
            report.instrumented_checking_blocks += 1
            report.fail(
                f"{fn.name}: checking block B{bid} contains instrumentation"
            )
        term = block.terminator
        if isinstance(term, CheckBranch):
            report.checks += 1
            if term.taken in checking:
                report.fail(
                    f"{fn.name}: check in B{bid} targets checking code "
                    f"B{term.taken}"
                )

    dup = set(cfg.blocks) - checking
    # Cycle check over the duplicated subgraph.
    succs = {
        bid: [s for s in cfg.block(bid).successors() if s in dup]
        for bid in dup
    }
    indegree = {bid: 0 for bid in dup}
    for bid in dup:
        for succ in succs[bid]:
            indegree[succ] += 1
    ready = [bid for bid, deg in indegree.items() if deg == 0]
    visited = 0
    while ready:
        bid = ready.pop()
        visited += 1
        for succ in succs[bid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if visited != len(dup):
        report.fail(f"{fn.name}: duplicated code contains a cycle")
    return report


def property1_dynamic(stats: ExecStats) -> bool:
    """Dynamic Property 1 over one run's statistics.

    ``checks_executed`` counts only CHECK instructions (checking-code
    checks); GUARDED_INSTR polls are No-Duplication's and exempt by
    definition (the paper's §3.2 weakening).
    """
    return stats.property1_holds()


def property1_vs_baseline(
    transformed: ExecStats, baseline: ExecStats
) -> bool:
    """Cross-run Property 1: checks executed in the transformed run
    must not exceed the *baseline* run's method entries + backedges.

    This is the paper's statement verbatim (the bound is over the
    uninstrumented execution). Requires both runs to use the same
    program input, which holds for our deterministic workloads.
    """
    opportunities = (
        baseline.calls + baseline.threads_spawned + baseline.backward_jumps
    )
    return transformed.checks_executed <= opportunities


def check_budget(stats: ExecStats) -> str:
    """Human-readable Property-1 budget line for reports."""
    return (
        f"checks={stats.checks_executed} <= entries+backedges="
        f"{stats.check_opportunities} : "
        f"{'OK' if stats.property1_holds() else 'VIOLATED'}"
    )
