"""Full-Duplication: the paper's primary transform (§2, Figure 2).

Input: a CFG that has been *exhaustively* instrumented (INSTR
operations inserted by :mod:`repro.instrument`). Output: the same CFG
rewritten so that

* the original blocks become the **checking code** — instrumentation
  stripped, a :class:`CheckBranch` on the method entry and on every
  backedge;
* a clone of every block becomes the **duplicated code** — it keeps all
  instrumentation, and every backedge inside it is redirected to the
  *check* guarding the corresponding checking-code backedge, bounding
  the work done per sample while ensuring every backedge traversal
  polls exactly one check (so interval 1 keeps all execution in
  duplicated code, the paper's perfect-profile configuration);
* a taken check at the entry transfers to the duplicated entry; a taken
  check on a backedge transfers to the duplicate of the loop header.

Property 1 (checks executed ≤ method entries + backedges executed)
holds by construction: exactly one check sits at the entry and one on
each backedge, and no checks exist anywhere else.

The Jalapeño-specific yieldpoint optimization (§4.5) is the
``yieldpoint_opt`` flag: yieldpoints are stripped from the checking
code (the checks subsume their scheduling role — a thread switch then
happens via the duplicated code, whose yieldpoints survive), so the
checking code's per-event cost is a check *instead of* a yieldpoint
rather than a check *plus* a yieldpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import Op
from repro.cfg.basic_block import CheckBranch, CondBranch, Goto
from repro.cfg.graph import CFG
from repro.cfg.loops import sampling_backedges
from repro.errors import TransformError


@dataclass
class DuplicationResult:
    """Bookkeeping from a duplication transform, consumed by
    Partial-Duplication, the verifier in
    :mod:`repro.sampling.properties`, and the linearizer (cold
    placement of duplicated code)."""

    cfg: CFG
    #: original (checking) block id -> duplicated block id
    dup_map: Dict[int, int] = field(default_factory=dict)
    #: backedges of the pre-transform CFG, as (source, header) pairs
    backedges: List[Tuple[int, int]] = field(default_factory=list)
    #: trampoline block ids holding the backedge checks
    trampolines: List[int] = field(default_factory=list)
    #: the entry-check block id (new CFG entry)
    entry_check: int = -1
    #: id of the checking-code entry (the pre-transform entry block)
    checking_entry: int = -1
    #: auxiliary duplicated-side blocks (burst reset/decrement blocks
    #: from the counted-backedge refinement); cold like the dup code
    aux_dup: List[int] = field(default_factory=list)
    #: the N of sample_iterations this result was built with
    sample_iterations: int = 1

    @property
    def checking_bids(self) -> Set[int]:
        return set(self.dup_map.keys())

    @property
    def dup_bids(self) -> Set[int]:
        return set(self.dup_map.values())

    def cold_blocks(self) -> Set[int]:
        """Blocks the linearizer should place out of the hot path."""
        cold = {bid for bid in self.dup_bids if bid in self.cfg.blocks}
        cold.update(
            bid for bid in self.aux_dup if bid in self.cfg.blocks
        )
        return cold

    def static_check_count(self) -> int:
        return sum(
            1
            for block in self.cfg.blocks.values()
            if isinstance(block.terminator, CheckBranch)
        )


def strip_ops(cfg: CFG, bids, ops) -> int:
    """Remove instructions with opcode in *ops* from the given blocks;
    returns how many were removed."""
    ops = set(ops)
    removed = 0
    for bid in bids:
        block = cfg.block(bid)
        kept = [ins for ins in block.instructions if ins.op not in ops]
        removed += len(block.instructions) - len(kept)
        block.instructions = kept
    return removed


def full_duplicate(
    cfg: CFG,
    yieldpoint_opt: bool = False,
    sample_iterations: int = 1,
) -> DuplicationResult:
    """Apply Full-Duplication to an instrumented CFG, in place.

    ``sample_iterations=N`` enables the paper's §2 *counted backedge*
    refinement: a fired sample profiles N consecutive loop iterations
    before control returns to the checking code, which is how
    instrumentation that observes inter-iteration behaviour is sampled
    meaningfully. N=1 is the paper's base design.
    """
    if sample_iterations < 1:
        raise TransformError("sample_iterations must be >= 1")
    cfg.remove_unreachable()
    original_bids = sorted(cfg.blocks)
    # Dedupe: a conditional with both arms on the loop header yields the
    # same (src, header) pair twice but is a single splittable edge.
    back = list(dict.fromkeys(sampling_backedges(cfg)))

    dup_map = cfg.clone_subgraph(original_bids)

    # The checking code loses its instrumentation (and, under the
    # Jalapeño-specific optimization, its yieldpoints).
    to_strip = [Op.INSTR, Op.GUARDED_INSTR]
    if yieldpoint_opt:
        to_strip.append(Op.YIELDPOINT)
    strip_ops(cfg, original_bids, to_strip)

    # Checking-code backedges get a check: split the edge and test the
    # sample condition; taken -> the duplicate of the header.
    trampolines: List[int] = []
    trampoline_of: Dict[Tuple[int, int], int] = {}
    for src, header in back:
        trampoline = cfg.split_edge(src, header)
        trampoline.terminator = CheckBranch(dup_map[header], header)
        trampolines.append(trampoline.bid)
        trampoline_of[(src, header)] = trampoline.bid

    # Duplicated-code backedges return to the checking code *at the
    # check* guarding the corresponding backedge: only a bounded amount
    # of execution happens per sample, and every backedge traversal —
    # whichever copy it runs in — passes exactly one check. This is
    # what makes interval 1 keep all execution in duplicated code (the
    # paper's perfect-profile configuration): the re-entered check
    # fires immediately and control bounces straight back into the
    # duplicated header.
    for src, header in back:
        dup_src = cfg.block(dup_map[src])
        dup_src.terminator.retarget(
            dup_map[header], trampoline_of[(src, header)]
        )

    # Method-entry check.
    checking_entry = cfg.entry
    entry_check = cfg.new_block(
        terminator=CheckBranch(dup_map[checking_entry], checking_entry)
    )
    cfg.entry = entry_check.bid

    extra_dup: List[int] = []
    if sample_iterations > 1:
        extra_dup = _add_counted_backedges(
            cfg, back, dup_map, trampoline_of, entry_check.bid,
            sample_iterations,
        )

    return DuplicationResult(
        cfg=cfg,
        dup_map=dup_map,
        backedges=back,
        trampolines=trampolines,
        entry_check=entry_check.bid,
        checking_entry=checking_entry,
        aux_dup=extra_dup,
        sample_iterations=sample_iterations,
    )


def _add_counted_backedges(
    cfg: CFG,
    back: List[Tuple[int, int]],
    dup_map: Dict[int, int],
    trampoline_of: Dict[Tuple[int, int], int],
    entry_check_bid: int,
    n: int,
) -> List[int]:
    """Rewire the duplicated code so each sample covers N iterations.

    A per-frame *burst counter* (a fresh local slot) is set to N-1 on
    every check-taken edge; each duplicated backedge then tests it —
    nonzero: decrement and loop back into the duplicated header (no
    check executed); zero: transfer to the checking-side trampoline as
    in the base design. Execution per sample stays bounded by N times
    the loop body, preserving the framework's bounded-progress
    guarantee as long as N is finite (the paper's §2 wording).
    """
    burst_slot = cfg.num_locals
    cfg.num_locals += 1
    new_blocks: List[int] = []

    # Reset the burst counter on every entry into duplicated code.
    check_bids = [entry_check_bid] + [trampoline_of[edge] for edge in back]
    for bid in check_bids:
        term = cfg.block(bid).terminator
        assert isinstance(term, CheckBranch)
        taken = term.taken
        reset = cfg.new_block(
            [
                Instruction(Op.PUSH, n - 1),
                Instruction(Op.STORE, burst_slot),
            ],
            Goto(taken),
        )
        term.retarget(taken, reset.bid)
        new_blocks.append(reset.bid)

    # Counted backedges inside the duplicated code.
    for src, header in back:
        dup_src = cfg.block(dup_map[src])
        trampoline = trampoline_of[(src, header)]
        decrement = cfg.new_block(
            [
                Instruction(Op.LOAD, burst_slot),
                Instruction(Op.PUSH, 1),
                Instruction(Op.SUB),
                Instruction(Op.STORE, burst_slot),
            ],
            Goto(dup_map[header]),
        )
        test = cfg.new_block(
            [Instruction(Op.LOAD, burst_slot)],
            CondBranch(Op.JZ, trampoline, decrement.bid),
        )
        dup_src.terminator.retarget(trampoline, test.bid)
        new_blocks.extend([test.bid, decrement.bid])
    return new_blocks


def dup_dag_edges(result: DuplicationResult) -> List[Tuple[int, int]]:
    """Edges internal to the duplicated code.

    After :func:`full_duplicate` these form a DAG (the paper's
    "duplicated code DAG"): backedges were redirected into checking
    code, so any cycle here would be a transform bug.
    """
    dup = result.dup_bids
    edges = [
        (src, dst)
        for src in sorted(dup)
        if src in result.cfg.blocks
        for dst in result.cfg.block(src).successors()
        if dst in dup
    ]
    _assert_acyclic(dup & set(result.cfg.blocks), edges)
    return edges


def _assert_acyclic(nodes: Set[int], edges: List[Tuple[int, int]]) -> None:
    succs: Dict[int, List[int]] = {bid: [] for bid in nodes}
    indegree: Dict[int, int] = {bid: 0 for bid in nodes}
    for src, dst in edges:
        succs[src].append(dst)
        indegree[dst] += 1
    ready = [bid for bid, deg in indegree.items() if deg == 0]
    visited = 0
    while ready:
        bid = ready.pop()
        visited += 1
        for dst in succs[bid]:
            indegree[dst] -= 1
            if indegree[dst] == 0:
                ready.append(dst)
    if visited != len(nodes):
        raise TransformError(
            "duplicated code contains a cycle — backedge redirection failed"
        )
