"""Parallel sweep execution: fan experiment cells over worker processes.

The experiment matrix behind every table and figure is embarrassingly
parallel — each (workload x strategy x trigger x interval) cell is an
independent, deterministic simulation. This module provides the pool
that :meth:`repro.harness.ExperimentRunner.run_many` fans cells out
over:

* each worker process builds its own :class:`ExperimentRunner` from a
  picklable :class:`RunnerConfig` (cost model, fuel, tripwire flags,
  cache directory) in its initializer, so per-workload compilation and
  baseline execution happen at most once per worker — or once *ever*
  when a persistent baseline cache directory is shared;
* cells are dispatched with ``chunksize=1`` and results are collected
  in submission order, so the caller sees the exact list it would get
  from a serial loop;
* every cell is seeded deterministically from its spec content
  (:func:`cell_seed`), never from worker identity, scheduling order, or
  wall clock — the same spec produces bit-identical results at any
  ``--jobs`` value. ``tests/test_parallel_harness.py`` holds the
  tripwire asserting jobs=1 and jobs=4 agree cell-for-cell.

Workers prefer the ``fork`` start method (cheap on Linux, inherits the
parent's compiled-workload caches) and fall back to ``spawn`` where
fork is unavailable.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.vm.cost_model import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import RunResult, RunSpec

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``--jobs`` value: explicit arg, else ``$REPRO_JOBS``,
    else 1. Zero or negative means "all cores"."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs <= 0:
        return max(1, multiprocessing.cpu_count())
    return jobs


def cell_seed(spec: "RunSpec") -> int:
    """A deterministic 32-bit seed derived from the cell's content.

    Used for the randomized-counter trigger so each cell perturbs its
    intervals differently, yet identically across processes, runs, and
    pool sizes. Intentionally *not* Python's ``hash`` (randomized per
    interpreter) and not derived from worker state.
    """
    payload = "|".join(
        [
            spec.workload,
            spec.strategy.value,
            ",".join(spec.instrumentation),
            spec.trigger,
            str(spec.interval),
            str(spec.scale),
            str(spec.timer_period),
            str(spec.phase),
            str(spec.yieldpoint_opt),
        ]
        # Planned cells mix per-function strategies, so the assignment
        # is part of the cell's identity; planless specs keep their
        # historical seeds.
        + ([str(spec.plan)] if spec.plan is not None else [])
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


# ---------------------------------------------------------------------------
# worker plumbing


@dataclass(frozen=True)
class RunnerConfig:
    """Everything a worker needs to rebuild the parent's runner."""

    cost_model: CostModel
    fuel: int
    check_semantics: bool
    check_property1: bool
    audit: bool = True
    cache_dir: Optional[str] = None
    engine: str = "fast"
    telemetry: bool = False
    telemetry_capacity: int = 65536
    compaction: bool = False
    #: self-profiling travels to workers; the perf ledger deliberately
    #: does not — cells computed in a pool are appended by the parent
    #: (see ExperimentRunner._ledger_append), keeping the append-only
    #: file single-writer.
    profile: bool = False
    profile_interval: int = 64
    #: live-export spool root; workers derive the same per-cell spool
    #: paths as the parent (cell_seed is content-addressed), so a
    #: streamed sweep produces one spool per cell wherever it ran.
    stream: Optional[str] = None

    @classmethod
    def from_runner(cls, runner) -> "RunnerConfig":
        cache = runner.baseline_cache
        return cls(
            cost_model=runner.cost_model,
            fuel=runner.fuel,
            check_semantics=runner.check_semantics,
            check_property1=runner.check_property1,
            audit=runner.audit,
            cache_dir=str(cache.directory) if cache is not None else None,
            engine=runner.engine,
            telemetry=runner.telemetry,
            telemetry_capacity=runner.telemetry_capacity,
            compaction=runner.compaction,
            profile=runner.profile,
            profile_interval=runner.profile_interval,
            stream=runner.stream,
        )

    def build_runner(self):
        from repro.harness.experiment import ExperimentRunner

        return ExperimentRunner(
            cost_model=self.cost_model,
            fuel=self.fuel,
            check_semantics=self.check_semantics,
            check_property1=self.check_property1,
            audit=self.audit,
            cache=self.cache_dir if self.cache_dir is not None else False,
            jobs=1,
            engine=self.engine,
            telemetry=self.telemetry,
            telemetry_capacity=self.telemetry_capacity,
            compaction=self.compaction,
            profile=self.profile,
            profile_interval=self.profile_interval,
            ledger=False,
            stream=self.stream,
        )


@dataclass
class CellOutcome:
    """One executed cell plus its provenance and timing.

    ``cache_hits``/``cache_misses``/``cache_stores`` are per-cell
    baseline-cache deltas observed in the worker; the parent folds them
    into its metrics registry so the timing report's cache accounting
    covers pool cells too (a worker's cache handle is invisible to the
    parent's ``BaselineCache.stats``).
    """

    result: "RunResult"
    seconds: float
    worker_pid: int
    baseline_cache_hit: bool
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0


_WORKER_RUNNER = None


def _init_worker(config: RunnerConfig) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = config.build_runner()


def _run_cell(spec: "RunSpec") -> CellOutcome:
    runner = _WORKER_RUNNER
    if runner is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("worker pool used without initialization")
    cache = runner.baseline_cache
    if cache is not None:
        before = (cache.stats.hits, cache.stats.misses, cache.stats.stores)
    else:
        before = (0, 0, 0)
    started = time.perf_counter()
    result = runner.run(spec)
    seconds = time.perf_counter() - started
    if cache is not None:
        after = (cache.stats.hits, cache.stats.misses, cache.stats.stores)
    else:
        after = before
    return CellOutcome(
        result=result,
        seconds=seconds,
        worker_pid=os.getpid(),
        baseline_cache_hit=after[0] > before[0],
        cache_hits=after[0] - before[0],
        cache_misses=after[1] - before[1],
        cache_stores=after[2] - before[2],
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_specs(
    specs: Sequence["RunSpec"],
    config: RunnerConfig,
    jobs: int,
) -> List[CellOutcome]:
    """Execute *specs* over *jobs* worker processes, in order.

    Falls back to an in-process loop for jobs<=1 or tiny batches, so
    callers can route everything through one entry point.
    """
    specs = list(specs)
    jobs = max(1, jobs)
    if jobs == 1 or len(specs) <= 1:
        _init_worker(config)
        try:
            return [_run_cell(spec) for spec in specs]
        finally:
            _reset_worker()
    ctx = _pool_context()
    with ctx.Pool(
        processes=min(jobs, len(specs)),
        initializer=_init_worker,
        initargs=(config,),
    ) as pool:
        return pool.map(_run_cell, specs, chunksize=1)


def _reset_worker() -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = None
