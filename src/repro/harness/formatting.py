"""ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, decimals: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    decimals: int = 1,
) -> str:
    """Render a fixed-width ASCII table.

    Numeric columns are right-aligned; the first column left-aligned.
    """
    text_rows: List[List[str]] = [
        [format_cell(cell, decimals) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
