"""Experiment harness: runner, table/figure generators, formatting,
parallel sweep execution, and the persistent baseline cache."""

from repro.harness.baseline_cache import (
    BaselineCache,
    baseline_key,
    cost_model_fingerprint,
    default_cache_dir,
    program_fingerprint,
)
from repro.harness.experiment import (
    CellRecord,
    ExperimentRunner,
    RunResult,
    RunSpec,
    make_instrumentations,
    overhead_percent,
)
from repro.harness.parallel import (
    RunnerConfig,
    cell_seed,
    effective_jobs,
    run_specs,
)
from repro.harness.formatting import mean, render_table
from repro.harness.sweeps import (
    SweepPoint,
    interval_sweep,
    operating_range,
    pareto_frontier,
    sweep_table,
)
from repro.harness.tables import (
    TableResult,
    figure7,
    figure8a,
    figure8b,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "ExperimentRunner",
    "RunSpec",
    "RunResult",
    "CellRecord",
    "BaselineCache",
    "baseline_key",
    "program_fingerprint",
    "cost_model_fingerprint",
    "default_cache_dir",
    "RunnerConfig",
    "cell_seed",
    "effective_jobs",
    "run_specs",
    "make_instrumentations",
    "overhead_percent",
    "render_table",
    "mean",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure7",
    "figure8a",
    "SweepPoint",
    "interval_sweep",
    "pareto_frontier",
    "operating_range",
    "sweep_table",
    "figure8b",
]
