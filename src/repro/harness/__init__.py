"""Experiment harness: runner, table/figure generators, formatting."""

from repro.harness.experiment import (
    ExperimentRunner,
    RunResult,
    RunSpec,
    make_instrumentations,
    overhead_percent,
)
from repro.harness.formatting import mean, render_table
from repro.harness.sweeps import (
    SweepPoint,
    interval_sweep,
    operating_range,
    pareto_frontier,
    sweep_table,
)
from repro.harness.tables import (
    TableResult,
    figure7,
    figure8a,
    figure8b,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "ExperimentRunner",
    "RunSpec",
    "RunResult",
    "make_instrumentations",
    "overhead_percent",
    "render_table",
    "mean",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure7",
    "figure8a",
    "SweepPoint",
    "interval_sweep",
    "pareto_frontier",
    "operating_range",
    "sweep_table",
    "figure8b",
]
