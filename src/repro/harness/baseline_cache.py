"""Persistent, content-addressed cache for exhaustive baseline runs.

Every experiment cell starts from its workload's uninstrumented
baseline run (for overhead denominators, semantic tripwires, and
Property-1 bounds). Those runs are deterministic, so recomputing them
per session — as :class:`repro.harness.ExperimentRunner` historically
did with its in-memory dict — is pure waste once a program has been
measured. This module stores baseline results on disk, keyed by a
SHA-256 over everything the result depends on:

* the program's full disassembly (content, not workload name — editing
  a workload source or the compiler invalidates its entries),
* the instrumentation configuration (empty for true baselines, but the
  key function accepts kinds so instrumented reference runs can share
  the cache),
* the cost model (every op cost and scalar knob),
* the VM run parameters (fuel, timer period),
* a schema version, bumped whenever VM semantics change in a way the
  other components don't capture.

A changed :class:`~repro.vm.cost_model.CostModel` therefore *cannot*
hit a stale entry: it hashes to a different key. Entries are JSON, one
file per key, written atomically (tmp + rename) so concurrent pool
workers can share one cache directory without locking — double writes
of the same key are idempotent by construction.

The directory defaults to ``$REPRO_CACHE_DIR``, falling back to
``~/.cache/repro-baselines``. ``python -m repro cache clear`` empties
it; deleting the directory is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bytecode.disassembler import disassemble_program
from repro.bytecode.program import Program
from repro.vm.cost_model import CostModel
from repro.vm.interpreter import VMResult
from repro.vm.tracing import ExecStats

#: Bump when VM execution semantics change without a corresponding
#: change in program content, cost model, or run parameters.
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-baselines``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-baselines"


# ---------------------------------------------------------------------------
# fingerprints


def program_fingerprint(program: Program) -> str:
    """SHA-256 over the program's disassembly and entry point.

    The disassembly is a complete, deterministic rendering of every
    class and function body, so any change to compiled code — source
    edit, compiler change, different scale — changes the fingerprint.
    """
    payload = program.entry + "\n" + disassemble_program(program)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cost_model_fingerprint(cost_model: CostModel) -> str:
    """SHA-256 over every cost the model charges."""
    payload = {
        "op_costs": sorted(
            (int(op), cost) for op, cost in cost_model.op_costs.items()
        ),
        "check_cost": cost_model.check_cost,
        "yieldpoint_cost": cost_model.yieldpoint_cost,
        "sample_transfer_penalty": cost_model.sample_transfer_penalty,
        "io_base_cost": cost_model.io_base_cost,
        "thread_switch_cost": cost_model.thread_switch_cost,
        "gc_every_allocs": cost_model.gc_every_allocs,
        "gc_pause_cycles": cost_model.gc_pause_cycles,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def baseline_key(
    program: Program,
    cost_model: CostModel,
    fuel: int,
    timer_period: int,
    instrumentation: Tuple[str, ...] = (),
) -> str:
    """The cache key for one (program, config) baseline run."""
    payload = "|".join(
        [
            f"schema={CACHE_SCHEMA_VERSION}",
            f"program={program_fingerprint(program)}",
            f"cost_model={cost_model_fingerprint(cost_model)}",
            f"fuel={fuel}",
            f"timer_period={timer_period}",
            f"instrumentation={','.join(instrumentation)}",
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# the cache


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }


@dataclass
class BaselineCache:
    """Disk-backed store of :class:`VMResult` values for baseline runs.

    Only results whose value and output are plain integers are
    persisted (workload checksums always are); anything else is
    silently skipped rather than mis-serialized. Unreadable or
    corrupt entries count as misses — the cache can never turn a
    valid run into a wrong one, only save recomputation.
    """

    directory: Optional[pathlib.Path] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.directory is None:
            self.directory = default_cache_dir()
        self.directory = pathlib.Path(self.directory)

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Optional[VMResult]:
        """The cached result for *key*, or None (counted as a miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        try:
            result = _decode_result(payload)
        except (KeyError, TypeError, ValueError):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: VMResult, label: str = "") -> bool:
        """Persist *result* under *key*; returns False when skipped."""
        if not _encodable(result):
            return False
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "label": label,
            "value": result.value,
            "output": list(result.output),
            "stats": result.stats.as_dict(),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Atomic publish: pool workers may race on the same key;
            # both write identical content, and rename is atomic.
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._path(key))
        except OSError:
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list:
        """Sorted list of cached entry paths."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed


def _encodable(result: VMResult) -> bool:
    if not isinstance(result.value, int) or isinstance(result.value, bool):
        return False
    return all(
        isinstance(item, int) and not isinstance(item, bool)
        for item in result.output
    )


def _decode_result(payload: dict) -> VMResult:
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        raise ValueError("schema mismatch")
    stats = ExecStats.from_dict(payload["stats"])
    value = payload["value"]
    output = payload["output"]
    if not isinstance(value, int) or not isinstance(output, list):
        raise TypeError("malformed cache entry")
    return VMResult(value=value, output=list(output), stats=stats)
