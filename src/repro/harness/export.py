"""Export experiment tables to machine-readable formats.

The ASCII rendering in :mod:`repro.harness.formatting` is for humans;
these helpers serialize :class:`TableResult` rows for notebooks,
plotting scripts, and regression dashboards.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.harness.tables import TableResult


def table_to_dicts(result: TableResult) -> List[Dict[str, object]]:
    """Rows as header-keyed dictionaries."""
    return [
        {header: value for header, value in zip(result.headers, row)}
        for row in result.rows
    ]


def table_to_json(result: TableResult, indent: int = 2) -> str:
    """Serialize a table (title, headers, rows, notes) as JSON."""
    payload = {
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }
    return json.dumps(payload, indent=indent)


def table_from_json(text: str) -> TableResult:
    """Inverse of :func:`table_to_json`."""
    payload = json.loads(text)
    return TableResult(
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        notes=list(payload.get("notes", [])),
    )


def table_to_csv(result: TableResult) -> str:
    """Serialize headers+rows as CSV (notes and title are dropped)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()


def write_table(result: TableResult, path: str) -> None:
    """Write a table to *path*; format chosen by extension
    (.json / .csv / anything else = ASCII rendering)."""
    if path.endswith(".json"):
        text = table_to_json(result)
    elif path.endswith(".csv"):
        text = table_to_csv(result)
    else:
        text = result.render() + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
