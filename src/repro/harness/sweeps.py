"""Overhead/accuracy sweeps and Pareto analysis.

The paper's practical takeaway from Table 4 is a *range*: "there is
actually a large range of sample intervals (from 100 to 10,000) that
offer high accuracy with low overhead." This module turns that into a
queryable object per workload: sweep intervals, compute each point's
(overhead, accuracy), extract the Pareto frontier, and report the
operating range meeting explicit accuracy/overhead targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.harness.experiment import ExperimentRunner, RunSpec, overhead_percent
from repro.harness.tables import TableResult
from repro.profiles.overlap import overlap_percentage
from repro.sampling.framework import Strategy


@dataclass(frozen=True)
class SweepPoint:
    """One (interval, overhead, accuracy) measurement."""

    interval: int
    overhead_pct: float
    accuracy_pct: float
    samples: int

    def dominates(self, other: "SweepPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        return (
            self.overhead_pct <= other.overhead_pct
            and self.accuracy_pct >= other.accuracy_pct
            and (
                self.overhead_pct < other.overhead_pct
                or self.accuracy_pct > other.accuracy_pct
            )
        )


def interval_sweep(
    runner: ExperimentRunner,
    workload: str,
    intervals: Sequence[int] = (1, 3, 10, 30, 100, 300, 1000, 3000, 10000),
    instrumentation: Tuple[str, ...] = ("call-edge", "field-access"),
    strategy: Strategy = Strategy.FULL_DUPLICATION,
    scale: Optional[int] = None,
) -> List[SweepPoint]:
    """Measure each interval's total overhead and profile accuracy.

    Accuracy is the mean overlap across the instrumentation kinds,
    against the strategy's interval-1 perfect profiles.
    """
    # One batch for the whole sweep (perfect profile = interval 1):
    # fans out over the worker pool when the runner has jobs > 1.
    runner.prefetch(
        [
            RunSpec(
                workload,
                strategy,
                instrumentation,
                trigger="counter",
                interval=interval,
                scale=scale,
            )
            for interval in sorted(set(intervals) | {1})
        ]
    )
    base_cycles = runner.baseline_cycles(workload, scale)
    perfect = runner.perfect_profiles(
        workload, instrumentation, scale, strategy=strategy
    )
    points: List[SweepPoint] = []
    for interval in intervals:
        result = runner.run(
            RunSpec(
                workload,
                strategy,
                instrumentation,
                trigger="counter",
                interval=interval,
                scale=scale,
            )
        )
        overlaps = [
            overlap_percentage(perfect[kind], result.profiles[kind])
            for kind in perfect
        ]
        points.append(
            SweepPoint(
                interval=interval,
                overhead_pct=overhead_percent(base_cycles, result.cycles),
                accuracy_pct=sum(overlaps) / len(overlaps),
                samples=result.stats.samples_taken,
            )
        )
    return points


def pareto_frontier(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """The non-dominated points, sorted by overhead ascending."""
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    frontier.sort(key=lambda p: (p.overhead_pct, -p.accuracy_pct))
    return frontier


def operating_range(
    points: Sequence[SweepPoint],
    min_accuracy: float = 80.0,
    max_overhead: float = 15.0,
) -> List[int]:
    """Intervals meeting both targets (the paper's usable band)."""
    return sorted(
        p.interval
        for p in points
        if p.accuracy_pct >= min_accuracy and p.overhead_pct <= max_overhead
    )


def sweep_table(
    workload: str,
    points: Sequence[SweepPoint],
    min_accuracy: float = 80.0,
    max_overhead: float = 15.0,
) -> TableResult:
    """Render a sweep with Pareto/operating-range annotations."""
    frontier = set(
        (p.interval for p in pareto_frontier(points))
    )
    usable = set(operating_range(points, min_accuracy, max_overhead))
    rows = []
    for p in sorted(points, key=lambda p: p.interval):
        flags = []
        if p.interval in frontier:
            flags.append("pareto")
        if p.interval in usable:
            flags.append("usable")
        rows.append(
            [
                p.interval,
                p.overhead_pct,
                p.accuracy_pct,
                p.samples,
                "+".join(flags) or "-",
            ]
        )
    return TableResult(
        title=(
            f"Overhead/accuracy sweep: {workload} "
            f"(usable = accuracy >= {min_accuracy:g}% and overhead <= "
            f"{max_overhead:g}%)"
        ),
        headers=["interval", "overhead%", "accuracy%", "samples", "flags"],
        rows=rows,
    )
