"""Generators for every table and figure in the paper's evaluation.

Each function runs the required experiment matrix through an
:class:`ExperimentRunner` and returns a :class:`TableResult` whose rows
place our measured values next to the paper's published ones. The
``benchmarks/`` directory has one pytest-benchmark harness per
generator; EXPERIMENTS.md records a captured run.

Every generator first *enumerates* its full experiment matrix and
hands it to :meth:`ExperimentRunner.prefetch`, which fans uncomputed
cells over the worker pool when the runner is configured with
``jobs > 1`` (``--jobs`` / ``$REPRO_JOBS``). Row assembly then runs
the same serial code it always did, hitting the runner's memo — so a
parallel run is cell-for-cell identical to a serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import paper_data
from repro.harness.experiment import (
    ExperimentRunner,
    RunSpec,
    overhead_percent,
)
from repro.harness.formatting import mean, render_table
from repro.profiles.overlap import overlap_percentage, overlap_series
from repro.profiles.profile import Profile
from repro.sampling.framework import Strategy
from repro.workloads.suite import workload_names


@dataclass
class TableResult:
    """A rendered experiment table plus its raw rows."""

    title: str
    headers: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)
    decimals: int = 1

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=self.title, decimals=self.decimals
        )
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return text


def _suite(workloads: Optional[Sequence[str]]) -> List[str]:
    return list(workloads) if workloads is not None else workload_names()


# ---------------------------------------------------------------------------
# Table 1 — exhaustive instrumentation overhead


def table1(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
) -> TableResult:
    """Exhaustive call-edge / field-access overhead (no framework)."""
    runner = runner or ExperimentRunner()
    suite = _suite(workloads)
    runner.prefetch(
        [
            RunSpec(name, Strategy.EXHAUSTIVE, (kind,), scale=scale)
            for name in suite
            for kind in ("call-edge", "field-access")
        ]
    )
    rows: List[List] = []
    measured_call: List[float] = []
    measured_field: List[float] = []
    for name in suite:
        call = runner.overhead_pct(
            RunSpec(name, Strategy.EXHAUSTIVE, ("call-edge",), scale=scale)
        )
        fld = runner.overhead_pct(
            RunSpec(name, Strategy.EXHAUSTIVE, ("field-access",), scale=scale)
        )
        measured_call.append(call)
        measured_field.append(fld)
        paper = paper_data.PAPER_TABLE1.get(name, (None, None))
        rows.append([name, call, paper[0], fld, paper[1]])
    rows.append(
        [
            "AVERAGE",
            mean(measured_call),
            paper_data.PAPER_TABLE1_AVG[0],
            mean(measured_field),
            paper_data.PAPER_TABLE1_AVG[1],
        ]
    )
    return TableResult(
        title="Table 1: exhaustive instrumentation overhead (%)",
        headers=[
            "benchmark",
            "call-edge",
            "(paper)",
            "field-access",
            "(paper)",
        ],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 2 — Full-Duplication framework overhead


def table2(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
) -> TableResult:
    """Framework overhead of Full-Duplication with no samples taken,
    with the backedge/entry checks-only breakdown, space increase, and
    transform-time accounting."""
    runner = runner or ExperimentRunner()
    suite = _suite(workloads)
    runner.prefetch(
        [
            spec
            for name in suite
            for spec in (
                RunSpec(name, Strategy.FULL_DUPLICATION, ("none",), scale=scale),
                RunSpec(name, Strategy.CHECKS_ONLY_BACKEDGE, (), scale=scale),
                RunSpec(name, Strategy.CHECKS_ONLY_ENTRY, (), scale=scale),
            )
        ]
    )
    rows: List[List] = []
    totals: List[float] = []
    backs: List[float] = []
    entries: List[float] = []
    spaces: List[float] = []
    times: List[float] = []
    for name in suite:
        program, _ = runner.baseline(name, scale)
        base_cycles = runner.baseline_cycles(name, scale)
        base_bytes = program.total_code_size_bytes()

        full = runner.run(
            RunSpec(name, Strategy.FULL_DUPLICATION, ("none",), scale=scale)
        )
        total_pct = overhead_percent(base_cycles, full.cycles)
        back_pct = runner.overhead_pct(
            RunSpec(name, Strategy.CHECKS_ONLY_BACKEDGE, (), scale=scale)
        )
        entry_pct = runner.overhead_pct(
            RunSpec(name, Strategy.CHECKS_ONLY_ENTRY, (), scale=scale)
        )
        space_kb = (full.code_bytes - base_bytes) / 1024.0
        # Transform time relative to a from-scratch compile is what the
        # paper's "compile time increase" measures; we report the
        # duplication pass time in ms (informational — Python timing).
        transform_ms = full.transform_seconds * 1000.0

        totals.append(total_pct)
        backs.append(back_pct)
        entries.append(entry_pct)
        spaces.append(space_kb)
        times.append(transform_ms)
        paper = paper_data.PAPER_TABLE2.get(name, (None,) * 5)
        rows.append(
            [
                name,
                total_pct,
                paper[0],
                back_pct,
                paper[1],
                entry_pct,
                paper[2],
                space_kb,
                transform_ms,
            ]
        )
    rows.append(
        [
            "AVERAGE",
            mean(totals),
            paper_data.PAPER_TABLE2_AVG[0],
            mean(backs),
            paper_data.PAPER_TABLE2_AVG[1],
            mean(entries),
            paper_data.PAPER_TABLE2_AVG[2],
            mean(spaces),
            mean(times),
        ]
    )
    return TableResult(
        title="Table 2: Full-Duplication framework overhead (no samples)",
        headers=[
            "benchmark",
            "total%",
            "(paper)",
            "backedge%",
            "(paper)",
            "entry%",
            "(paper)",
            "space+KB",
            "xform ms",
        ],
        rows=rows,
        notes=[
            "space+KB is duplicated-code growth at our 4-bytes/instruction "
            "proxy; the paper reports absolute Jalapeño code sizes",
            "xform ms is the measured duplication-pass wall time (the "
            "paper's 34% compile-time increase is Jalapeño-specific)",
        ],
    )


# ---------------------------------------------------------------------------
# Table 3 — No-Duplication checking overhead


def table3(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
) -> TableResult:
    """No-Duplication checking overhead (no samples taken)."""
    runner = runner or ExperimentRunner()
    suite = _suite(workloads)
    runner.prefetch(
        [
            RunSpec(name, Strategy.NO_DUPLICATION, (kind,), scale=scale)
            for name in suite
            for kind in ("call-edge", "field-access")
        ]
    )
    rows: List[List] = []
    calls: List[float] = []
    fields: List[float] = []
    for name in suite:
        call = runner.overhead_pct(
            RunSpec(name, Strategy.NO_DUPLICATION, ("call-edge",), scale=scale)
        )
        fld = runner.overhead_pct(
            RunSpec(
                name, Strategy.NO_DUPLICATION, ("field-access",), scale=scale
            )
        )
        calls.append(call)
        fields.append(fld)
        paper = paper_data.PAPER_TABLE3.get(name, (None, None))
        rows.append([name, call, paper[0], fld, paper[1]])
    rows.append(
        [
            "AVERAGE",
            mean(calls),
            paper_data.PAPER_TABLE3_AVG[0],
            mean(fields),
            paper_data.PAPER_TABLE3_AVG[1],
        ]
    )
    return TableResult(
        title="Table 3: No-Duplication checking overhead (%)",
        headers=[
            "benchmark",
            "call-edge",
            "(paper)",
            "field-access",
            "(paper)",
        ],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 4 — sampled overhead and accuracy vs interval


def _accuracy_for(
    runner: ExperimentRunner,
    name: str,
    strategy: Strategy,
    interval: int,
    scale: Optional[int],
    perfect: Dict[str, Profile],
) -> Tuple[float, float, float, int]:
    """(call acc, field acc, total cycles, samples) for one config."""
    result = runner.run(
        RunSpec(
            name,
            strategy,
            ("call-edge", "field-access"),
            trigger="counter",
            interval=interval,
            scale=scale,
        )
    )
    call_acc = overlap_percentage(
        perfect["call-edge"], result.profiles["call-edge"]
    )
    field_acc = overlap_percentage(
        perfect["field-access"], result.profiles["field-access"]
    )
    return call_acc, field_acc, result.cycles, result.stats.samples_taken


def table4(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    intervals: Optional[Sequence[int]] = None,
    scale: Optional[int] = None,
) -> TableResult:
    """Overhead & accuracy of sampled call-edge + field-access
    instrumentation vs sample interval, Full-Dup and No-Dup."""
    runner = runner or ExperimentRunner()
    intervals = list(intervals or paper_data.PAPER_INTERVALS)
    suite = _suite(workloads)
    strategies = (Strategy.FULL_DUPLICATION, Strategy.NO_DUPLICATION)
    kinds = ("call-edge", "field-access")
    prefetch: List[RunSpec] = []
    for name in suite:
        for strategy in strategies:
            prefetch.append(
                RunSpec(
                    name, strategy, kinds,
                    trigger="counter", interval=1, scale=scale,
                )
            )
            prefetch.append(
                RunSpec(name, strategy, kinds, trigger="never", scale=scale)
            )
            prefetch.extend(
                RunSpec(
                    name, strategy, kinds,
                    trigger="counter", interval=interval, scale=scale,
                )
                for interval in intervals
            )
    runner.prefetch(prefetch)

    # Per-strategy perfect profiles (the paper's interval-1 definition).
    perfects = {
        (name, strategy): runner.perfect_profiles(
            name, ("call-edge", "field-access"), scale, strategy=strategy
        )
        for name in suite
        for strategy in (Strategy.FULL_DUPLICATION, Strategy.NO_DUPLICATION)
    }
    base_cycles = {
        name: runner.baseline_cycles(name, scale) for name in suite
    }
    framework_cycles: Dict[Tuple[str, Strategy], int] = {}
    for name in suite:
        for strategy in (Strategy.FULL_DUPLICATION, Strategy.NO_DUPLICATION):
            result = runner.run(
                RunSpec(
                    name,
                    strategy,
                    ("call-edge", "field-access"),
                    trigger="never",
                    scale=scale,
                )
            )
            framework_cycles[(name, strategy)] = result.cycles

    rows: List[List] = []
    for strategy, paper_ref in (
        (Strategy.FULL_DUPLICATION, paper_data.PAPER_TABLE4_FULL),
        (Strategy.NO_DUPLICATION, paper_data.PAPER_TABLE4_NODUP),
    ):
        for interval in intervals:
            call_accs: List[float] = []
            field_accs: List[float] = []
            sampled_ohs: List[float] = []
            total_ohs: List[float] = []
            samples: List[float] = []
            for name in suite:
                call_acc, field_acc, cycles, nsamples = _accuracy_for(
                    runner,
                    name,
                    strategy,
                    interval,
                    scale,
                    perfects[(name, strategy)],
                )
                call_accs.append(call_acc)
                field_accs.append(field_acc)
                samples.append(nsamples)
                base = base_cycles[name]
                total_ohs.append(overhead_percent(base, cycles))
                sampled_ohs.append(
                    100.0
                    * (cycles - framework_cycles[(name, strategy)])
                    / base
                )
            paper = paper_ref.get(interval, (None,) * 5)
            rows.append(
                [
                    f"{strategy.value}@{interval}",
                    mean(samples),
                    mean(sampled_ohs),
                    paper[1],
                    mean(total_ohs),
                    paper[2],
                    mean(call_accs),
                    paper[3],
                    mean(field_accs),
                    paper[4],
                ]
            )
    return TableResult(
        title=(
            "Table 4: sampled instrumentation overhead & accuracy "
            "(averaged over benchmarks)"
        ),
        headers=[
            "strategy@interval",
            "samples",
            "instr%",
            "(paper)",
            "total%",
            "(paper)",
            "call-acc",
            "(paper)",
            "field-acc",
            "(paper)",
        ],
        rows=rows,
        notes=[
            "our runs execute ~10^4-10^5 checks (vs the paper's ~10^7), so "
            "accuracy collapse shifts to smaller intervals with the same "
            "shape (too few samples)",
        ],
    )


# ---------------------------------------------------------------------------
# Table 5 — trigger mechanisms


def _table5_timer_spec(
    name: str, timer_period: int, scale: Optional[int]
) -> RunSpec:
    return RunSpec(
        name,
        Strategy.FULL_DUPLICATION,
        ("field-access",),
        trigger="timer",
        timer_period=timer_period,
        scale=scale,
    )


def _table5_counter_specs(
    name: str, interval: int, scale: Optional[int]
) -> List[RunSpec]:
    """The counter grid matched to one timer run: three nearby
    intervals x three phases, in measurement order."""
    candidates = sorted(
        {interval, max(1, (interval * 9) // 10), (interval * 11) // 10}
    )
    return [
        RunSpec(
            name,
            Strategy.FULL_DUPLICATION,
            ("field-access",),
            trigger="counter",
            interval=candidate,
            scale=scale,
            phase=phase,
        )
        for candidate in candidates
        for phase in (0, candidate // 3, (2 * candidate) // 3)
    ]


def table5(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
    target_samples: int = 150,
) -> TableResult:
    """Timer-based vs counter-based trigger accuracy (field-access,
    Full-Duplication). Following the paper's method, the counter
    interval is chosen per benchmark so both triggers take roughly the
    same number of samples."""
    runner = runner or ExperimentRunner()
    suite = _suite(workloads)

    # Phase 1: perfect profiles + timer runs (periods derive from the
    # baselines, which run serially but hit the persistent cache).
    timer_periods = {
        name: max(400, runner.baseline_cycles(name, scale) // target_samples)
        for name in suite
    }
    runner.prefetch(
        [
            RunSpec(
                name,
                Strategy.FULL_DUPLICATION,
                ("field-access",),
                trigger="counter",
                interval=1,
                scale=scale,
            )
            for name in suite
        ]
        + [
            _table5_timer_spec(name, timer_periods[name], scale)
            for name in suite
        ]
    )
    # Phase 2: each workload's counter grid is matched to its timer
    # run's sample count, so it can only be enumerated now.
    grid: List[RunSpec] = []
    for name in suite:
        timer_run = runner.run(
            _table5_timer_spec(name, timer_periods[name], scale)
        )
        interval = max(
            1,
            timer_run.stats.checks_executed
            // max(1, timer_run.stats.samples_taken),
        )
        grid.extend(_table5_counter_specs(name, interval, scale))
    runner.prefetch(grid)

    rows: List[List] = []
    timer_accs: List[float] = []
    counter_accs: List[float] = []
    for name in suite:
        perfect = runner.perfect_profiles(name, ("field-access",), scale)
        timer_run = runner.run(
            _table5_timer_spec(name, timer_periods[name], scale)
        )
        timer_samples = max(1, timer_run.stats.samples_taken)
        timer_acc = overlap_percentage(
            perfect["field-access"], timer_run.profiles["field-access"]
        )
        interval = max(1, timer_run.stats.checks_executed // timer_samples)
        # A single fixed stride on a small deterministic program can
        # lock onto a loop pattern (the paper's §4.4 deterministic-
        # correlation caveat) — much more likely here than on SPECjvm98
        # because our programs are tiny and perfectly regular. The
        # paper only requires the counter interval to *approximately*
        # match the timer's sample count, so we report the median over
        # a small grid of plain periodic counter configurations (three
        # nearby intervals x three phases).
        counter_accs_here = []
        counter_run = None
        for counter_spec in _table5_counter_specs(name, interval, scale):
            counter_run = runner.run(counter_spec)
            counter_accs_here.append(
                overlap_percentage(
                    perfect["field-access"],
                    counter_run.profiles["field-access"],
                )
            )
        counter_accs_here.sort()
        counter_acc = counter_accs_here[len(counter_accs_here) // 2]
        timer_accs.append(timer_acc)
        counter_accs.append(counter_acc)
        paper = paper_data.PAPER_TABLE5.get(name, (None, None))
        rows.append(
            [
                name,
                timer_acc,
                paper[0],
                counter_acc,
                paper[1],
                timer_samples,
                counter_run.stats.samples_taken,
            ]
        )
    rows.append(
        [
            "AVERAGE",
            mean(timer_accs),
            paper_data.PAPER_TABLE5_AVG[0],
            mean(counter_accs),
            paper_data.PAPER_TABLE5_AVG[1],
            None,
            None,
        ]
    )
    return TableResult(
        title=(
            "Table 5: trigger accuracy, field-access via Full-Duplication "
            "(overlap %)"
        ),
        headers=[
            "benchmark",
            "time-based",
            "(paper)",
            "counter-based",
            "(paper)",
            "t-samples",
            "c-samples",
        ],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 7 — javac call-edge profile


def figure7(
    runner: Optional[ExperimentRunner] = None,
    interval: int = 100,
    scale: int = 20,
    top_n: int = 30,
) -> Tuple[TableResult, float]:
    """Perfect vs sampled javac call-edge sample-percentages.

    Returns the per-edge series table and the overall overlap. The
    paper's javac overlaps 93.8% at interval 1000 with ~10^7 checks;
    our smaller run uses a proportionally smaller interval.
    """
    runner = runner or ExperimentRunner()
    runner.prefetch(
        [
            RunSpec(
                "javac",
                Strategy.FULL_DUPLICATION,
                ("call-edge",),
                trigger="counter",
                interval=i,
                scale=scale,
            )
            for i in (1, interval)
        ]
    )
    perfect = runner.perfect_profiles("javac", ("call-edge",), scale)[
        "call-edge"
    ]
    sampled_run = runner.run(
        RunSpec(
            "javac",
            Strategy.FULL_DUPLICATION,
            ("call-edge",),
            trigger="counter",
            interval=interval,
            scale=scale,
        )
    )
    sampled = sampled_run.profiles["call-edge"]
    overlap = overlap_percentage(perfect, sampled)
    rows: List[List] = []
    for key, perfect_pct, sampled_pct in overlap_series(
        perfect, sampled, top_n
    ):
        caller, site, callee = key
        rows.append(
            [f"{caller}@{site}->{callee}", perfect_pct, sampled_pct]
        )
    table = TableResult(
        title=(
            f"Figure 7: javac call-edge profile, interval {interval} "
            f"(overlap {overlap:.1f}%; paper: "
            f"{paper_data.PAPER_FIGURE7_OVERLAP}% at interval 1000)"
        ),
        headers=["call edge", "perfect%", "sampled%"],
        rows=rows,
        decimals=3,
    )
    return table, overlap


# ---------------------------------------------------------------------------
# Figure 8 — Jalapeño-specific (yieldpoint) optimization


def figure8a(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
) -> TableResult:
    """Framework-only overhead with the yieldpoint optimization."""
    runner = runner or ExperimentRunner()
    suite = _suite(workloads)
    runner.prefetch(
        [
            RunSpec(
                name,
                Strategy.FULL_DUPLICATION,
                ("none",),
                yieldpoint_opt=True,
                scale=scale,
            )
            for name in suite
        ]
    )
    rows: List[List] = []
    overheads: List[float] = []
    for name in suite:
        pct = runner.overhead_pct(
            RunSpec(
                name,
                Strategy.FULL_DUPLICATION,
                ("none",),
                yieldpoint_opt=True,
                scale=scale,
            )
        )
        overheads.append(pct)
        rows.append([name, pct, paper_data.PAPER_FIGURE8A.get(name)])
    rows.append(
        ["AVERAGE", mean(overheads), paper_data.PAPER_FIGURE8A_AVG]
    )
    return TableResult(
        title=(
            "Figure 8(A): Jalapeño-specific framework overhead "
            "(yieldpoints replaced by checks, no samples)"
        ),
        headers=["benchmark", "overhead%", "(paper)"],
        rows=rows,
    )


def figure8b(
    runner: Optional[ExperimentRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    intervals: Optional[Sequence[int]] = None,
    scale: Optional[int] = None,
) -> TableResult:
    """Total sampling overhead vs interval under the yieldpoint
    optimization (both instrumentations)."""
    runner = runner or ExperimentRunner()
    intervals = list(intervals or paper_data.PAPER_INTERVALS)
    suite = _suite(workloads)
    runner.prefetch(
        [
            RunSpec(
                name,
                Strategy.FULL_DUPLICATION,
                ("call-edge", "field-access"),
                trigger="counter",
                interval=interval,
                yieldpoint_opt=True,
                scale=scale,
            )
            for interval in intervals
            for name in suite
        ]
    )
    rows: List[List] = []
    for interval in intervals:
        totals: List[float] = []
        for name in suite:
            pct = runner.overhead_pct(
                RunSpec(
                    name,
                    Strategy.FULL_DUPLICATION,
                    ("call-edge", "field-access"),
                    trigger="counter",
                    interval=interval,
                    yieldpoint_opt=True,
                    scale=scale,
                )
            )
            totals.append(pct)
        rows.append(
            [interval, mean(totals), paper_data.PAPER_FIGURE8B.get(interval)]
        )
    return TableResult(
        title=(
            "Figure 8(B): Jalapeño-specific total sampling overhead "
            "(averaged over benchmarks)"
        ),
        headers=["interval", "total%", "(paper)"],
        rows=rows,
    )
