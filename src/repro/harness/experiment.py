"""Experiment runner: one place that composes workloads, instrumentation,
sampling strategies, triggers and the VM into measured runs.

Every benchmark in ``benchmarks/`` and every table generator in
:mod:`repro.harness.tables` goes through :class:`ExperimentRunner`, so
they all share baseline caching, semantic-preservation tripwires, and
Property-1 verification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bytecode.program import Program
from repro.errors import HarnessError
from repro.instrument import (
    BranchBiasInstrumentation,
    CallEdgeInstrumentation,
    CCTInstrumentation,
    EdgeProfileInstrumentation,
    FieldAccessInstrumentation,
    BlockCountInstrumentation,
    Instrumentation,
    ParameterValueInstrumentation,
    PathProfileInstrumentation,
)
from repro.instrument.base import EmptyInstrumentation
from repro.profiles.profile import Profile
from repro.sampling.framework import SamplingFramework, Strategy, TransformReport
from repro.sampling.properties import property1_vs_baseline
from repro.sampling.triggers import make_trigger
from repro.vm.cost_model import CostModel
from repro.vm.interpreter import VM, VMResult
from repro.vm.tracing import ExecStats
from repro.workloads.suite import Workload, get_workload

#: Default instruction budget for experiment runs.
DEFAULT_FUEL = 100_000_000

#: Registry of instrumentation kinds available to specs.
_INSTRUMENTATION_FACTORIES = {
    "call-edge": CallEdgeInstrumentation,
    "field-access": FieldAccessInstrumentation,
    "block-count": BlockCountInstrumentation,
    "edge-profile": EdgeProfileInstrumentation,
    "param-value": ParameterValueInstrumentation,
    "path-profile": PathProfileInstrumentation,
    "branch-bias": BranchBiasInstrumentation,
    "cct": CCTInstrumentation,
    "none": EmptyInstrumentation,
}


def make_instrumentations(kinds: Tuple[str, ...]) -> List[Instrumentation]:
    """Fresh instrumentation objects for the given kind names."""
    try:
        return [_INSTRUMENTATION_FACTORIES[kind]() for kind in kinds]
    except KeyError as exc:
        raise HarnessError(
            f"unknown instrumentation kind {exc.args[0]!r}; available: "
            f"{sorted(_INSTRUMENTATION_FACTORIES)}"
        ) from None


@dataclass(frozen=True)
class RunSpec:
    """A fully described experiment configuration."""

    workload: str
    strategy: Strategy = Strategy.EXHAUSTIVE
    instrumentation: Tuple[str, ...] = ("call-edge",)
    trigger: str = "never"  # never | counter | timer | randomized
    interval: Optional[int] = None
    yieldpoint_opt: bool = False
    scale: Optional[int] = None
    timer_period: int = 100_000
    #: counter-trigger phase (first sample arrives ``interval - phase``
    #: checks in); used to average out deterministic aliasing
    phase: int = 0

    def describe(self) -> str:
        parts = [self.workload, self.strategy.value]
        parts.append("+".join(self.instrumentation) or "none")
        if self.trigger != "never":
            parts.append(
                f"{self.trigger}"
                + (f"@{self.interval}" if self.interval else "")
            )
        if self.yieldpoint_opt:
            parts.append("yp-opt")
        return " / ".join(parts)


@dataclass
class RunResult:
    """Everything measured from one configured run."""

    spec: RunSpec
    value: int
    cycles: int
    stats: ExecStats
    profiles: Dict[str, Profile] = field(default_factory=dict)
    transform_report: Optional[TransformReport] = None
    transform_seconds: float = 0.0
    code_bytes: int = 0


class ExperimentRunner:
    """Caches per-workload baselines and runs configured experiments.

    Args:
        cost_model: shared cycle model (one per runner so baselines and
            variants are comparable).
        fuel: interpreter instruction budget per run.
        check_semantics: verify each transformed run computes the
            baseline's value and output (cheap, catches transform bugs).
        check_property1: verify Property 1 for duplication strategies
            against the baseline run.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        fuel: int = DEFAULT_FUEL,
        check_semantics: bool = True,
        check_property1: bool = True,
    ):
        self.cost_model = cost_model or CostModel()
        self.fuel = fuel
        self.check_semantics = check_semantics
        self.check_property1 = check_property1
        self._baselines: Dict[Tuple[str, Optional[int]], Tuple[Program, VMResult]] = {}

    # -- baselines -----------------------------------------------------------

    def baseline(
        self, workload_name: str, scale: Optional[int] = None
    ) -> Tuple[Program, VMResult]:
        """The workload's baseline program and its (cached) run."""
        key = (workload_name, scale)
        cached = self._baselines.get(key)
        if cached is not None:
            return cached
        workload: Workload = get_workload(workload_name)
        program = workload.compile(scale)
        result = VM(
            program, cost_model=self.cost_model, fuel=self.fuel,
            timer_period=100_000,
        ).run()
        self._baselines[key] = (program, result)
        return program, result

    def baseline_cycles(self, workload_name: str, scale: Optional[int] = None) -> int:
        return self.baseline(workload_name, scale)[1].stats.cycles

    # -- configured runs ----------------------------------------------------------

    def run(self, spec: RunSpec) -> RunResult:
        """Transform per *spec*, execute, verify, and measure."""
        program, base_result = self.baseline(spec.workload, spec.scale)
        instrumentations = make_instrumentations(spec.instrumentation)

        framework = SamplingFramework(
            spec.strategy, yieldpoint_opt=spec.yieldpoint_opt
        )
        checks_only = spec.strategy in (
            Strategy.CHECKS_ONLY_ENTRY,
            Strategy.CHECKS_ONLY_BACKEDGE,
        )
        t0 = time.perf_counter()
        transformed = framework.transform(
            program, None if checks_only else instrumentations
        )
        transform_seconds = time.perf_counter() - t0

        if spec.trigger == "counter" and spec.phase:
            trigger = make_trigger(spec.trigger, spec.interval, phase=spec.phase)
        else:
            trigger = make_trigger(spec.trigger, spec.interval)
        result = VM(
            transformed,
            cost_model=self.cost_model,
            trigger=trigger,
            timer_period=spec.timer_period,
            fuel=self.fuel,
        ).run()

        if self.check_semantics:
            if result.value != base_result.value or (
                result.output != base_result.output
            ):
                raise HarnessError(
                    f"{spec.describe()}: transformed program diverged "
                    f"(value {result.value} vs {base_result.value})"
                )
        if self.check_property1 and spec.strategy in (
            Strategy.FULL_DUPLICATION,
            Strategy.PARTIAL_DUPLICATION,
        ):
            if not property1_vs_baseline(result.stats, base_result.stats):
                raise HarnessError(
                    f"{spec.describe()}: Property 1 violated "
                    f"(checks={result.stats.checks_executed}, "
                    f"bound={base_result.stats.check_opportunities})"
                )

        profiles = {
            instr.profile.name: instr.profile for instr in instrumentations
        }
        return RunResult(
            spec=spec,
            value=result.value,
            cycles=result.stats.cycles,
            stats=result.stats,
            profiles=profiles,
            transform_report=framework.last_report,
            transform_seconds=transform_seconds,
            code_bytes=transformed.total_code_size_bytes(),
        )

    # -- derived measures ---------------------------------------------------------

    def overhead_pct(self, spec: RunSpec) -> float:
        """Total overhead of *spec* relative to the baseline, percent."""
        result = self.run(spec)
        base = self.baseline_cycles(spec.workload, spec.scale)
        return overhead_percent(base, result.cycles)

    def perfect_profiles(
        self,
        workload_name: str,
        instrumentation: Tuple[str, ...],
        scale: Optional[int] = None,
        strategy: Strategy = Strategy.FULL_DUPLICATION,
    ) -> Dict[str, Profile]:
        """The paper's *perfect profile*: the given strategy run at
        sample interval 1, "causing all execution to occur in
        duplicated code" (§4.4). Sampled profiles are compared against
        the same strategy's interval-1 profile, so the overlap metric
        isolates sampling degradation.
        """
        result = self.run(
            RunSpec(
                workload=workload_name,
                strategy=strategy,
                instrumentation=instrumentation,
                trigger="counter",
                interval=1,
                scale=scale,
            )
        )
        return result.profiles

    def exhaustive_profiles(
        self,
        workload_name: str,
        instrumentation: Tuple[str, ...],
        scale: Optional[int] = None,
    ) -> Dict[str, Profile]:
        """Profiles from a plain exhaustive run (every event counted)."""
        result = self.run(
            RunSpec(
                workload=workload_name,
                strategy=Strategy.EXHAUSTIVE,
                instrumentation=instrumentation,
                scale=scale,
            )
        )
        return result.profiles


def overhead_percent(baseline_cycles: int, cycles: int) -> float:
    """100 * (cycles / baseline - 1)."""
    if baseline_cycles <= 0:
        raise HarnessError("baseline has no cycles")
    return 100.0 * (cycles / baseline_cycles - 1.0)
