"""Experiment runner: one place that composes workloads, instrumentation,
sampling strategies, triggers and the VM into measured runs.

Every benchmark in ``benchmarks/`` and every table generator in
:mod:`repro.harness.tables` goes through :class:`ExperimentRunner`, so
they all share baseline caching, semantic-preservation tripwires, and
Property-1 verification.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import (
    AuditReport,
    IncrementalCertifier,
    Severity,
    audit_program,
    reconcile,
    reconcile_plan,
    reconcile_profile,
    reconcile_stream,
)
from repro.bytecode.program import Program
from repro.errors import HarnessError
from repro.harness.baseline_cache import (
    CACHE_DIR_ENV,
    BaselineCache,
    baseline_key,
)
from repro.harness.formatting import render_table
from repro.harness.parallel import (
    RunnerConfig,
    cell_seed,
    effective_jobs,
    run_specs,
)
from repro.instrument import (
    BranchBiasInstrumentation,
    CallEdgeInstrumentation,
    CCTInstrumentation,
    EdgeProfileInstrumentation,
    FieldAccessInstrumentation,
    BlockCountInstrumentation,
    Instrumentation,
    ParameterValueInstrumentation,
    PathProfileInstrumentation,
)
from repro.instrument.base import EmptyInstrumentation
from repro.profiles.profile import Profile
from repro.profiling.decomposition import decompose
from repro.profiling.ledger import PerfLedger, make_record, resolve_ledger
from repro.profiling.profiler import (
    DEFAULT_INTERVAL as DEFAULT_PROFILE_INTERVAL,
    OverheadProfiler,
    merge_snapshots,
)
from repro.sampling.framework import SamplingFramework, Strategy, TransformReport
from repro.sampling.properties import property1_vs_baseline
from repro.sampling.triggers import make_trigger
from repro.profiles.overlap import overlap_percentage
from repro.telemetry.compaction import (
    CompactingRecorder,
    Record,
    inflate,
    sample_site_profile,
)
from repro.telemetry.exporters import (
    compact_jsonl_to_records,
    events_to_jsonl,
    records_to_compact_jsonl,
)
from repro.telemetry.manifest import RunManifest, spec_as_dict
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import TelemetryRecorder
from repro.vm.cost_model import CostModel
from repro.vm.engine import resolve_engine
from repro.vm.interpreter import VM, VMResult
from repro.vm.tracing import ExecStats
from repro.workloads.suite import Workload, get_workload

#: Default instruction budget for experiment runs.
DEFAULT_FUEL = 100_000_000

#: Registry of instrumentation kinds available to specs.
_INSTRUMENTATION_FACTORIES = {
    "call-edge": CallEdgeInstrumentation,
    "field-access": FieldAccessInstrumentation,
    "block-count": BlockCountInstrumentation,
    "edge-profile": EdgeProfileInstrumentation,
    "param-value": ParameterValueInstrumentation,
    "path-profile": PathProfileInstrumentation,
    "branch-bias": BranchBiasInstrumentation,
    "cct": CCTInstrumentation,
    "none": EmptyInstrumentation,
}


def make_instrumentations(kinds: Tuple[str, ...]) -> List[Instrumentation]:
    """Fresh instrumentation objects for the given kind names."""
    try:
        return [_INSTRUMENTATION_FACTORIES[kind]() for kind in kinds]
    except KeyError as exc:
        raise HarnessError(
            f"unknown instrumentation kind {exc.args[0]!r}; available: "
            f"{sorted(_INSTRUMENTATION_FACTORIES)}"
        ) from None


@dataclass(frozen=True)
class RunSpec:
    """A fully described experiment configuration."""

    workload: str
    strategy: Strategy = Strategy.EXHAUSTIVE
    instrumentation: Tuple[str, ...] = ("call-edge",)
    trigger: str = "never"  # never | counter | timer | randomized
    interval: Optional[int] = None
    yieldpoint_opt: bool = False
    scale: Optional[int] = None
    timer_period: int = 100_000
    #: counter-trigger phase (first sample arrives ``interval - phase``
    #: checks in); used to average out deterministic aliasing
    phase: int = 0
    #: randomized-trigger seed; None derives a deterministic per-cell
    #: seed from the spec content (see :func:`repro.harness.parallel.cell_seed`)
    seed: Optional[int] = None
    #: per-function strategy assignment — sorted (function, strategy
    #: value) pairs, the hashable form a
    #: :meth:`~repro.analysis.planner.StrategyPlan.key` produces. When
    #: set, the program is transformed by
    #: :func:`~repro.sampling.framework.transform_planned` with
    #: ``strategy`` as the default for unplanned functions, audited
    #: under the per-function stamps, and reconciled per function
    #: (:func:`~repro.analysis.reconcile.reconcile_plan`).
    plan: Optional[Tuple[Tuple[str, str], ...]] = None

    def describe(self) -> str:
        parts = [self.workload, self.strategy.value]
        if self.plan is not None:
            parts[1] = f"planned[{len(self.plan)}]/{self.strategy.value}"
        parts.append("+".join(self.instrumentation) or "none")
        if self.trigger != "never":
            parts.append(
                f"{self.trigger}"
                + (f"@{self.interval}" if self.interval else "")
            )
        if self.yieldpoint_opt:
            parts.append("yp-opt")
        return " / ".join(parts)


@dataclass
class RunResult:
    """Everything measured from one configured run."""

    spec: RunSpec
    value: int
    cycles: int
    stats: ExecStats
    profiles: Dict[str, Profile] = field(default_factory=dict)
    transform_report: Optional[TransformReport] = None
    transform_seconds: float = 0.0
    code_bytes: int = 0
    #: static audit of the transformed program (None with auditing off)
    audit: Optional[AuditReport] = None
    #: provenance document when the runner has telemetry enabled
    #: (picklable, so pool workers ship it back with the result)
    manifest: Optional[RunManifest] = None
    #: VM execution wall time for this cell (the profiled span; excludes
    #: transform, audit and verification work around the run)
    vm_seconds: float = 0.0
    #: self-profiling payload when the runner has profiling enabled:
    #: {"snapshot", "decomposition", "bound"} — plain dicts, picklable
    profile: Optional[Dict[str, object]] = None
    #: retained (compacted) telemetry stream when the runner has
    #: compaction enabled — a tuple of Events and SuppressedRuns;
    #: NamedTuples, so pool workers ship it back with the result
    records: Optional[Tuple[Record, ...]] = None
    #: path of the cell's live-export spool directory when the runner
    #: streams (``ExperimentRunner(stream=...)``); readable during and
    #: after the run with :class:`~repro.telemetry.SpoolReader`
    spool: Optional[str] = None


@dataclass
class CellRecord:
    """One computed experiment cell in the runner's timing log."""

    label: str
    seconds: float
    source: str  # "serial" | "pool:<pid>" | "baseline" | "baseline-cache"
    baseline_cache_hit: bool = False


class ExperimentRunner:
    """Caches per-workload baselines and runs configured experiments.

    Results are memoized per :class:`RunSpec` (cells are deterministic,
    so a repeat is always identical), baselines are additionally cached
    on disk when a persistent cache is configured, and batches of cells
    can be fanned out over worker processes via :meth:`run_many`.

    Args:
        cost_model: shared cycle model (one per runner so baselines and
            variants are comparable).
        fuel: interpreter instruction budget per run.
        check_semantics: verify each transformed run computes the
            baseline's value and output (cheap, catches transform bugs).
        check_property1: verify Property 1 for duplication strategies
            against the baseline run.
        audit: run the static auditor (:mod:`repro.analysis`) over every
            transformed program and reconcile each run's counters
            against the derived cost certificate. Error-severity
            findings and reconciliation violations raise
            :class:`HarnessError`; the report and verdict ride on
            :attr:`RunResult.audit` and (with telemetry on) in the
            manifest's ``analysis`` section.
        cache: persistent baseline cache — a :class:`BaselineCache`, a
            directory path, True for the default directory, False to
            disable. The default (None) enables the cache only when
            ``$REPRO_CACHE_DIR`` is set, so ad-hoc runners stay free of
            disk side effects.
        jobs: default worker count for :meth:`run_many`; None defers to
            ``$REPRO_JOBS`` (else 1), <=0 means all cores.
        engine: VM execution engine for every cell ("fast",
            "reference", or "compiled"); None defers to
            ``$REPRO_ENGINE``, else the process default ("fast"). All
            engines produce bit-identical results, so the choice never
            appears in cache keys.
        telemetry: attach a :class:`TelemetryRecorder` to every
            configured run and emit a :class:`RunManifest` per computed
            cell (collected in :attr:`manifests`, including cells
            computed by pool workers). Telemetry never changes a cell's
            ExecStats/profiles — the differential test in
            tests/test_telemetry.py pins this on every workload.
        telemetry_capacity: per-run flight-recorder ring size.
        compaction: (with telemetry on) attach a
            :class:`~repro.telemetry.compaction.CompactingRecorder`
            instead of a plain recorder: runs of identical events
            collapse into suppression windows, the retained stream rides
            on :attr:`RunResult.records`, and every cell's manifest
            carries ``vm.telemetry.compaction.*`` metrics. The inflated
            stream is bit-equal to what a plain recorder retains, so no
            downstream consumer changes (docs/OBSERVABILITY.md).
        profile: attach an :class:`OverheadProfiler` to every configured
            run: each cell's manifest and :class:`RunResult` carry an
            overhead-decomposition report reconciled against the cell's
            VM wall time, and the profiler's Property-1-style sample
            bound is enforced per cell (violations raise
            :class:`HarnessError`). Profiling never changes a cell's
            ExecStats/profiles — pinned by tests/test_profiling.py.
        profile_interval: boundaries per profiler sample.
        ledger: continuous perf-regression ledger — a
            :class:`~repro.profiling.PerfLedger`, a path, or None to
            enable only when ``$REPRO_LEDGER`` is set. When active, the
            parent process appends one machine-normalized throughput
            record per computed cell (pool workers never append — their
            cells are recorded by the parent, so the ledger sees each
            cell exactly once).
        stream: directory for live telemetry export. When set, every
            configured run attaches a context-keyed
            :class:`~repro.telemetry.StreamingRecorder` that flushes
            epochs to a per-cell spool under this directory while the
            VM runs — implies ``telemetry`` and ``compaction``, and
            (with ``profile`` on) switches the profiler to CCT mode so
            spools carry per-context attribution. The spool path rides
            on :attr:`RunResult.spool` and in the manifest's telemetry
            section (``repro watch <spool>`` tails it live). The
            retained record stream and every end-of-run snapshot are
            bit-identical to a non-streaming context-keyed run —
            pinned by tests/test_streaming.py.

    The runner always keeps a :class:`MetricsRegistry` in
    :attr:`metrics` — harness-level counters (baseline-cache traffic,
    including deltas reported back by pool workers) are recorded there
    even with telemetry off; VM metric snapshots are merged in per
    manifest when telemetry is on.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        fuel: int = DEFAULT_FUEL,
        check_semantics: bool = True,
        check_property1: bool = True,
        audit: bool = True,
        cache: Union[BaselineCache, str, bool, None] = None,
        jobs: Optional[int] = None,
        engine: Optional[str] = None,
        telemetry: bool = False,
        telemetry_capacity: int = 65536,
        compaction: bool = False,
        profile: bool = False,
        profile_interval: int = DEFAULT_PROFILE_INTERVAL,
        ledger: Union[PerfLedger, str, bool, None] = None,
        plan: Union["object", None] = None,
        stream: Union[str, "os.PathLike", None] = None,
    ):
        self.cost_model = cost_model or CostModel()
        self.fuel = fuel
        self.check_semantics = check_semantics
        self.check_property1 = check_property1
        self.audit = bool(audit)
        self.baseline_cache = _resolve_cache(cache)
        self.jobs = jobs
        self.engine = resolve_engine(engine)
        self.telemetry = bool(telemetry)
        self.telemetry_capacity = telemetry_capacity
        self.compaction = bool(compaction)
        self.profile = bool(profile)
        self.profile_interval = profile_interval
        self.ledger = resolve_ledger(ledger)
        self.plan = _plan_key(plan)
        self.stream = None if stream is None else str(stream)
        if self.stream is not None:
            # Streaming rides on the compacting recorder, so it implies
            # the full telemetry stack.
            self.telemetry = True
            self.compaction = True
        self.metrics = MetricsRegistry()
        self.manifests: List[RunManifest] = []
        self.profile_snapshots: List[Dict[str, object]] = []
        self._baselines: Dict[Tuple[str, Optional[int]], Tuple[Program, VMResult]] = {}
        self._run_memo: Dict[RunSpec, RunResult] = {}
        self.cell_log: List[CellRecord] = []
        self.memo_hits = 0

    # -- baselines -----------------------------------------------------------

    def baseline(
        self, workload_name: str, scale: Optional[int] = None
    ) -> Tuple[Program, VMResult]:
        """The workload's baseline program and its (cached) run.

        Lookup order: this runner's in-memory dict, then the persistent
        disk cache (keyed by program content + cost model + run
        config, so any config change is an automatic miss), then a
        fresh execution whose result is published to both.
        """
        key = (workload_name, scale)
        cached = self._baselines.get(key)
        if cached is not None:
            return cached
        workload: Workload = get_workload(workload_name)
        program = workload.compile(scale)
        started = time.perf_counter()
        result: Optional[VMResult] = None
        disk_key: Optional[str] = None
        cache_before = self._cache_counts()
        if self.baseline_cache is not None:
            disk_key = baseline_key(
                program, self.cost_model, self.fuel, 100_000
            )
            result = self.baseline_cache.get(disk_key)
        from_disk = result is not None
        if result is None:
            result = VM(
                program, cost_model=self.cost_model, fuel=self.fuel,
                timer_period=100_000, engine=self.engine,
            ).run()
            if self.baseline_cache is not None and disk_key is not None:
                self.baseline_cache.put(
                    disk_key, result, label=f"{workload_name}/scale={scale}"
                )
        self._record_cache_delta(cache_before)
        self.cell_log.append(
            CellRecord(
                label=f"baseline:{workload_name}"
                + (f"@{scale}" if scale is not None else ""),
                seconds=time.perf_counter() - started,
                source="baseline-cache" if from_disk else "baseline",
                baseline_cache_hit=from_disk,
            )
        )
        self._baselines[key] = (program, result)
        return program, result

    def baseline_cycles(self, workload_name: str, scale: Optional[int] = None) -> int:
        return self.baseline(workload_name, scale)[1].stats.cycles

    # -- metrics plumbing ----------------------------------------------------

    _CACHE_COUNTERS = ("hits", "misses", "stores")

    def _cache_counts(self) -> Tuple[int, ...]:
        cache = self.baseline_cache
        if cache is None:
            return (0, 0, 0)
        return tuple(
            getattr(cache.stats, name) for name in self._CACHE_COUNTERS
        )

    def _record_cache_delta(self, before: Tuple[int, ...]) -> None:
        """Fold baseline-cache activity since *before* into the registry."""
        for name, b, a in zip(
            self._CACHE_COUNTERS, before, self._cache_counts()
        ):
            if a > b:
                self.metrics.counter(
                    f"harness.baseline_cache.{name}"
                ).inc(a - b)

    def _record_cache_counts(
        self, hits: int, misses: int, stores: int
    ) -> None:
        """Fold pool-worker-reported baseline-cache deltas into the
        registry (the workers' cache handles are not ours, so their
        activity is only visible through these counts)."""
        for name, amount in zip(
            self._CACHE_COUNTERS, (hits, misses, stores)
        ):
            if amount > 0:
                self.metrics.counter(
                    f"harness.baseline_cache.{name}"
                ).inc(amount)

    def _absorb_manifest(self, manifest: RunManifest) -> None:
        self.manifests.append(manifest)
        self.metrics.merge_snapshot(manifest.metrics)

    def _absorb_profile(self, snapshot: Dict[str, object]) -> None:
        """Collect one cell's profiler snapshot (serial or shipped back
        from a pool worker) for the sweep-level merged profile."""
        self.profile_snapshots.append(snapshot)

    def profile_summary(self) -> Dict[str, object]:
        """All absorbed cell profiles folded into one snapshot.

        :func:`~repro.profiling.merge_snapshots` is associative and
        commutative, so the summary is independent of cell order and of
        how cells were split between the parent and pool workers.
        """
        return merge_snapshots(self.profile_snapshots)

    def _ledger_append(self, spec: RunSpec, run_result: RunResult) -> None:
        """One perf-ledger record per computed cell (parent-side only:
        pool workers are built without a ledger, so each cell is
        recorded exactly once, here, when its result lands)."""
        if self.ledger is None or run_result.vm_seconds <= 0:
            return
        stats = run_result.stats
        self.ledger.append(
            make_record(
                bench="harness",
                key=f"{spec.workload}/{spec.strategy.value}/{self.engine}",
                metric="vm_instr_per_sec",
                value=stats.instructions / run_result.vm_seconds,
                meta={
                    "trigger": spec.trigger,
                    "interval": spec.interval,
                    "instrumentation": list(spec.instrumentation),
                    "profiled": run_result.profile is not None,
                },
            )
        )
        self.metrics.counter("harness.ledger.appends").inc()

    # -- configured runs ----------------------------------------------------------

    def _spool_path(self, spec: RunSpec) -> str:
        """Per-cell spool directory under :attr:`stream`.

        The name combines the human-readable spec description with the
        cell's content seed, so it is stable across processes (pool
        workers derive the same path) yet unique per cell.
        """
        safe = re.sub(r"[^A-Za-z0-9@.+=_-]+", "-", spec.describe())
        return os.path.join(
            self.stream, f"{safe.strip('-')}-{cell_seed(spec):08x}"
        )

    def _apply_plan(self, spec: RunSpec) -> RunSpec:
        """Fold the runner-level strategy plan into *spec* (a spec's own
        plan always wins; a planless runner leaves specs untouched)."""
        if self.plan is not None and spec.plan is None:
            return replace(spec, plan=self.plan)
        return spec

    def run(self, spec: RunSpec) -> RunResult:
        """Transform per *spec*, execute, verify, and measure.

        Results are memoized: cells are deterministic, so a repeated
        spec returns the first computation's result unchanged.
        """
        spec = self._apply_plan(spec)
        memoized = self._run_memo.get(spec)
        if memoized is not None:
            self.memo_hits += 1
            return memoized
        cell_started = time.perf_counter()
        program, base_result = self.baseline(spec.workload, spec.scale)
        instrumentations = make_instrumentations(spec.instrumentation)

        framework = SamplingFramework(
            spec.strategy, yieldpoint_opt=spec.yieldpoint_opt
        )
        checks_only = spec.strategy in (
            Strategy.CHECKS_ONLY_ENTRY,
            Strategy.CHECKS_ONLY_BACKEDGE,
        )
        t0 = time.perf_counter()
        if spec.plan is not None:
            from repro.sampling.framework import transform_planned

            # Mixed-strategy transform: each function under its planned
            # strategy, spec.strategy as the default, and a PlannedLoader
            # keeping dynamically arriving code on plan.
            transformed = transform_planned(
                program,
                instrumentations,
                dict(spec.plan),
                default=spec.strategy,
                yieldpoint_opt=spec.yieldpoint_opt,
            )
        else:
            transformed = framework.transform(
                program, None if checks_only else instrumentations
            )
        transform_seconds = time.perf_counter() - t0

        # Planned programs mix strategies, so the per-function
        # ``notes["sampling"]`` stamps are authoritative for the audit
        # (a single expected strategy would raise AUD009 mismatches).
        expected_strategy = (
            None if spec.plan is not None else spec.strategy.value
        )
        audit_report: Optional[AuditReport] = None
        if self.audit:
            audit_report = audit_program(
                transformed,
                strategy=expected_strategy,
                label=spec.describe(),
            )
            self.metrics.counter("harness.audit.cells").inc()
            if audit_report.findings:
                self.metrics.counter("harness.audit.findings").inc(
                    len(audit_report.findings)
                )
            if not audit_report.ok:
                raise HarnessError(
                    f"{spec.describe()}: static audit failed\n"
                    + audit_report.render()
                )

        # Dynamic programs change their function table mid-run, so the
        # pre-run certificate stops describing the executed code: an
        # incremental certifier audits every loaded/replaced function at
        # its load event and maintains the certificate by deltas.
        certifier: Optional[IncrementalCertifier] = None
        if self.audit and transformed.is_dynamic():
            certifier = IncrementalCertifier.from_program(
                transformed,
                strategy=expected_strategy,
                label=spec.describe(),
            )

        seed_used: Optional[int] = spec.seed
        if spec.trigger == "counter" and spec.phase:
            trigger = make_trigger(spec.trigger, spec.interval, phase=spec.phase)
        elif spec.trigger == "randomized":
            # Deterministic per-cell seeding: the jitter stream is a
            # pure function of the spec (or an explicit seed), so the
            # cell's result is independent of process, order, and pool
            # size.
            seed_used = spec.seed if spec.seed is not None else cell_seed(spec)
            trigger = make_trigger(spec.trigger, spec.interval, seed=seed_used)
        else:
            trigger = make_trigger(spec.trigger, spec.interval)
        profiler = (
            OverheadProfiler(
                interval=self.profile_interval,
                cct=self.stream is not None,
            )
            if self.profile
            else None
        )
        recorder: Optional[TelemetryRecorder] = None
        if self.stream is not None:
            from repro.telemetry.streaming import StreamingRecorder

            recorder = StreamingRecorder(
                self._spool_path(spec),
                capacity=self.telemetry_capacity,
                profiler=profiler,
                label=spec.describe(),
                meta={
                    "workload": spec.workload,
                    "strategy": spec.strategy.value,
                    "engine": self.engine,
                    "trigger": spec.trigger,
                    "interval": spec.interval,
                    "instrumentation": list(spec.instrumentation),
                },
            )
        elif self.telemetry:
            recorder = (
                CompactingRecorder(capacity=self.telemetry_capacity)
                if self.compaction
                else TelemetryRecorder(capacity=self.telemetry_capacity)
            )
        vm_started = time.perf_counter()
        vm = VM(
            transformed,
            cost_model=self.cost_model,
            trigger=trigger,
            timer_period=spec.timer_period,
            fuel=self.fuel,
            engine=self.engine,
            recorder=recorder,
            profiler=profiler,
        )
        if certifier is not None:
            certifier.attach(vm)
        result = vm.run()
        vm_seconds = time.perf_counter() - vm_started

        if self.check_semantics:
            if result.value != base_result.value or (
                result.output != base_result.output
            ):
                raise HarnessError(
                    f"{spec.describe()}: transformed program diverged "
                    f"(value {result.value} vs {base_result.value})"
                )
        duplicating = spec.strategy in (
            Strategy.FULL_DUPLICATION,
            Strategy.PARTIAL_DUPLICATION,
        )
        if spec.plan is not None:
            duplicating = duplicating or any(
                value
                in (
                    Strategy.FULL_DUPLICATION.value,
                    Strategy.PARTIAL_DUPLICATION.value,
                )
                for _, value in spec.plan
            )
        if self.check_property1 and duplicating:
            if not property1_vs_baseline(result.stats, base_result.stats):
                raise HarnessError(
                    f"{spec.describe()}: Property 1 violated "
                    f"(checks={result.stats.checks_executed}, "
                    f"bound={base_result.stats.check_opportunities})"
                )
        verdict = None
        # Planned (mixed-strategy) runs reconcile per function: with
        # telemetry on, each function's measured check count is held to
        # its own certified bound (a no-duplication function must never
        # execute a CHECK); without telemetry the whole-program bound
        # still applies.
        plan_metrics = (
            recorder.metrics.snapshot()
            if spec.plan is not None and recorder is not None
            else None
        )
        if certifier is not None:
            # Dynamic programs are reconciled against the incrementally
            # maintained certificate: code loaded mid-run can introduce
            # checks the pre-run (static) certificate never promised.
            if not certifier.ok:
                raise HarnessError(
                    f"{spec.describe()}: dynamically loaded code failed "
                    f"its audit ({certifier.loads} load(s), "
                    f"{certifier.replaces} replace(s))"
                )
            certificate = certifier.dynamic_certificate()
            verdict = (
                reconcile_plan(certificate, result.stats, plan_metrics)
                if spec.plan is not None
                else reconcile(certificate, result.stats)
            )
            self.metrics.counter("harness.audit.reconciled").inc()
            if not verdict.ok:
                self.metrics.counter(
                    "harness.audit.reconcile_violations"
                ).inc(len(verdict.violations))
                raise HarnessError(
                    f"{spec.describe()}: run contradicts its incremental "
                    f"cost certificate: " + "; ".join(verdict.violations)
                )
        elif audit_report is not None and audit_report.certificate is not None:
            verdict = (
                reconcile_plan(
                    audit_report.certificate, result.stats, plan_metrics
                )
                if spec.plan is not None
                else reconcile(audit_report.certificate, result.stats)
            )
            self.metrics.counter("harness.audit.reconciled").inc()
            if not verdict.ok:
                self.metrics.counter(
                    "harness.audit.reconcile_violations"
                ).inc(len(verdict.violations))
                raise HarnessError(
                    f"{spec.describe()}: run contradicts its cost "
                    f"certificate: " + "; ".join(verdict.violations)
                )

        profile_payload: Optional[Dict[str, object]] = None
        if profiler is not None:
            snapshot = profiler.snapshot()
            prof_verdict = reconcile_profile(snapshot)
            self.metrics.counter("harness.profile.cells").inc()
            if not prof_verdict.ok:
                raise HarnessError(
                    f"{spec.describe()}: profiler sample bound violated: "
                    + "; ".join(prof_verdict.violations)
                )
            decomposition = decompose(snapshot, measured_wall=vm_seconds)
            profile_payload = {
                "snapshot": snapshot,
                "decomposition": decomposition.as_dict(),
                "bound": prof_verdict.as_dict(),
            }
            self._absorb_profile(snapshot)

        profiles = {
            instr.profile.name: instr.profile for instr in instrumentations
        }
        run_result = RunResult(
            spec=spec,
            value=result.value,
            cycles=result.stats.cycles,
            stats=result.stats,
            profiles=profiles,
            transform_report=framework.last_report,
            transform_seconds=transform_seconds,
            code_bytes=transformed.total_code_size_bytes(),
            audit=audit_report,
            vm_seconds=vm_seconds,
            profile=profile_payload,
        )
        cell_seconds = time.perf_counter() - cell_started
        if recorder is not None:
            # Ring occupancy / eviction / compaction counters become
            # first-class metrics before the snapshot is frozen into the
            # manifest.
            recorder.sync_metrics()
            if self.stream is not None:
                # Seal the spool after metrics are frozen and before the
                # manifest snapshot is taken, so the spool's merged
                # end-of-run state and the manifest agree bit-for-bit.
                recorder.close()
                run_result.spool = str(recorder.writer.path)
                self.metrics.counter("harness.stream.cells").inc()
            if isinstance(recorder, CompactingRecorder):
                run_result.records = recorder.records()
            run_result.manifest = RunManifest(
                spec=spec_as_dict(spec),
                engine=self.engine,
                trigger=trigger.config(),
                seed=seed_used,
                cycles=result.stats.cycles,
                value=result.value,
                wall_seconds=cell_seconds,
                stats=result.stats.as_dict(),
                metrics=recorder.metrics.snapshot(),
                telemetry=recorder.summary(),
                source="serial",
                analysis=(
                    {
                        "ok": audit_report.ok,
                        "errors": audit_report.count(Severity.ERROR),
                        "warnings": audit_report.count(Severity.WARNING),
                        "certificate": (
                            audit_report.certificate.as_dict()
                            if audit_report.certificate is not None
                            else None
                        ),
                        "verdict": (
                            verdict.as_dict() if verdict is not None else None
                        ),
                        "incremental": (
                            certifier.as_dict()
                            if certifier is not None
                            else None
                        ),
                    }
                    if audit_report is not None
                    else {}
                ),
                profiling=profile_payload or {},
                plan=_plan_section(spec),
            )
            self._absorb_manifest(run_result.manifest)
        self._run_memo[spec] = run_result
        self._ledger_append(spec, run_result)
        self.cell_log.append(
            CellRecord(
                label=spec.describe(),
                seconds=cell_seconds,
                source="serial",
            )
        )
        return run_result

    # -- batched / parallel execution ---------------------------------------------

    def run_many(
        self, specs: Sequence[RunSpec], jobs: Optional[int] = None
    ) -> List[RunResult]:
        """Run every spec, fanning uncomputed cells over worker
        processes when more than one job is configured.

        The returned list matches *specs* positionally. Cells are
        deterministic, so the outcome is bit-identical to a serial
        loop regardless of the worker count; only wall time changes.
        """
        specs = [self._apply_plan(spec) for spec in specs]
        jobs = effective_jobs(jobs if jobs is not None else self.jobs)
        pending: List[RunSpec] = []
        seen = set()
        for spec in specs:
            if spec not in self._run_memo and spec not in seen:
                seen.add(spec)
                pending.append(spec)
        if pending and jobs > 1 and len(pending) > 1:
            outcomes = run_specs(
                pending, RunnerConfig.from_runner(self), jobs
            )
            for spec, outcome in zip(pending, outcomes):
                self._run_memo[spec] = outcome.result
                self._record_cache_counts(
                    outcome.cache_hits,
                    outcome.cache_misses,
                    outcome.cache_stores,
                )
                manifest = outcome.result.manifest
                if manifest is not None:
                    manifest.source = f"pool:{outcome.worker_pid}"
                    self._absorb_manifest(manifest)
                profile_payload = outcome.result.profile
                if profile_payload is not None:
                    self._absorb_profile(profile_payload["snapshot"])
                self._ledger_append(spec, outcome.result)
                self.cell_log.append(
                    CellRecord(
                        label=spec.describe(),
                        seconds=outcome.seconds,
                        source=f"pool:{outcome.worker_pid}",
                        baseline_cache_hit=outcome.baseline_cache_hit,
                    )
                )
        return [self.run(spec) for spec in specs]

    def prefetch(
        self, specs: Sequence[RunSpec], jobs: Optional[int] = None
    ) -> None:
        """Populate the memo for *specs* (parallel when configured).

        Table generators call this with their full experiment matrix
        before assembling rows, so row construction itself stays a
        sequence of memo hits and the serial code path is untouched.
        """
        self.run_many(specs, jobs=jobs)

    # -- reporting ----------------------------------------------------------------

    def timing_report(self, top: int = 15) -> str:
        """Human-readable per-cell timing / cache-hit accounting."""
        computed = [rec for rec in self.cell_log]
        rows = [
            [
                rec.label,
                rec.seconds * 1000.0,
                rec.source,
                "hit" if rec.baseline_cache_hit else "-",
            ]
            for rec in sorted(
                computed, key=lambda rec: -rec.seconds
            )[:top]
        ]
        text = render_table(
            ["cell", "ms", "source", "baseline-cache"],
            rows,
            title=f"Harness timing: {top} slowest of "
            f"{len(computed)} computed cells",
            decimals=1,
        )
        pool_cells = sum(
            1 for rec in computed if rec.source.startswith("pool:")
        )
        workers = len(
            {rec.source for rec in computed if rec.source.startswith("pool:")}
        )
        lines = [
            text,
            f"  cells computed: {len(computed)} "
            f"({pool_cells} in pool across {workers} worker(s)), "
            f"memo hits: {self.memo_hits}",
            f"  compute seconds: "
            f"{sum(rec.seconds for rec in computed):.2f}",
        ]
        if self.baseline_cache is not None:
            # Sourced from the metrics registry, not the cache handle:
            # the registry also accumulates the deltas pool workers
            # report back, which the parent's handle never sees.
            hits, misses, stores = (
                self._metric_value(f"harness.baseline_cache.{name}")
                for name in self._CACHE_COUNTERS
            )
            lines.append(
                f"  baseline cache [{self.baseline_cache.directory}]: "
                f"{hits} hit(s), {misses} miss(es), "
                f"{stores} store(s)"
            )
        else:
            lines.append("  baseline cache: disabled")
        return "\n".join(lines)

    def _metric_value(self, key: str) -> int:
        instrument = self.metrics.get(key)
        return instrument.value if instrument is not None else 0

    # -- derived measures ---------------------------------------------------------

    def overhead_pct(self, spec: RunSpec) -> float:
        """Total overhead of *spec* relative to the baseline, percent."""
        result = self.run(spec)
        base = self.baseline_cycles(spec.workload, spec.scale)
        return overhead_percent(base, result.cycles)

    def perfect_profiles(
        self,
        workload_name: str,
        instrumentation: Tuple[str, ...],
        scale: Optional[int] = None,
        strategy: Strategy = Strategy.FULL_DUPLICATION,
    ) -> Dict[str, Profile]:
        """The paper's *perfect profile*: the given strategy run at
        sample interval 1, "causing all execution to occur in
        duplicated code" (§4.4). Sampled profiles are compared against
        the same strategy's interval-1 profile, so the overlap metric
        isolates sampling degradation.
        """
        result = self.run(
            RunSpec(
                workload=workload_name,
                strategy=strategy,
                instrumentation=instrumentation,
                trigger="counter",
                interval=1,
                scale=scale,
            )
        )
        return result.profiles

    def exhaustive_profiles(
        self,
        workload_name: str,
        instrumentation: Tuple[str, ...],
        scale: Optional[int] = None,
    ) -> Dict[str, Profile]:
        """Profiles from a plain exhaustive run (every event counted)."""
        result = self.run(
            RunSpec(
                workload=workload_name,
                strategy=Strategy.EXHAUSTIVE,
                instrumentation=instrumentation,
                scale=scale,
            )
        )
        return result.profiles

    # -- compaction accuracy -------------------------------------------------

    def compaction_accuracy(
        self, spec: RunSpec, perfect_interval: int = 1
    ) -> Dict[str, object]:
        """Measure what suppression + compact encoding cost in accuracy
        and bought in bytes for one cell.

        Runs *spec* with the compacting recorder, plus the same cell at
        ``perfect_interval`` (the §4.4 perfect-profile configuration),
        and reports:

        * ``overlap_percentage`` — §4.4 overlap between the sample-site
          profile of the suppressed stream and of the exact
          (interval-``perfect_interval``) stream;
        * ``compaction_ratio`` — plain-JSONL bytes of the inflated
          stream over compact-JSONL bytes of the suppressed stream;
        * ``roundtrip_ok`` — the compact encoding re-inflated
          bit-equal to the original events;
        * ``stream_ok`` — the stream reconciles against the run's
          ExecStats sample counters (:func:`reconcile_stream`).

        The report also lands in the cell manifest's
        ``telemetry["compaction_accuracy"]`` section, so archived runs
        carry their own accuracy evidence.
        """
        if not (self.telemetry and self.compaction):
            raise HarnessError(
                "compaction_accuracy needs ExperimentRunner("
                "telemetry=True, compaction=True)"
            )
        result = self.run(spec)
        records = result.records or ()
        perfect = self.run(
            replace(
                spec, trigger="counter", interval=perfect_interval,
                phase=0, seed=None,
            )
        )
        exact_profile = sample_site_profile(
            perfect.records or (), name="exact"
        )
        sampled_profile = sample_site_profile(records, name="suppressed")
        events = inflate(records)
        raw_bytes = len(events_to_jsonl(events).encode("utf-8"))
        compact_text = records_to_compact_jsonl(records)
        compact_bytes = len(compact_text.encode("utf-8"))
        roundtrip_ok = (
            inflate(compact_jsonl_to_records(compact_text)) == events
        )
        telemetry = (
            result.manifest.telemetry if result.manifest is not None else {}
        )
        dropped_events = int(telemetry.get("dropped_events", 0))
        stream_verdict = reconcile_stream(
            result.stats, records, dropped_events=dropped_events
        )
        report: Dict[str, object] = {
            "label": spec.describe(),
            "engine": self.engine,
            "interval": spec.interval,
            "perfect_interval": perfect_interval,
            "events": len(events),
            "records": len(records),
            "dropped_events": dropped_events,
            "raw_bytes": raw_bytes,
            "compact_bytes": compact_bytes,
            "compaction_ratio": (
                round(raw_bytes / compact_bytes, 3) if compact_bytes else 1.0
            ),
            "overlap_percentage": round(
                overlap_percentage(exact_profile, sampled_profile), 3
            ),
            "roundtrip_ok": roundtrip_ok,
            "stream_ok": stream_verdict.ok,
        }
        self.metrics.counter("harness.compaction.cells").inc()
        if result.manifest is not None:
            result.manifest.telemetry["compaction_accuracy"] = report
        return report

    def compaction_matrix(
        self,
        workloads: Optional[Sequence[str]] = None,
        strategies: Optional[Sequence[Strategy]] = None,
        instrumentation: Tuple[str, ...] = ("call-edge",),
        interval: int = 1000,
        scale: Optional[int] = None,
        perfect_interval: int = 1,
    ) -> List[Dict[str, object]]:
        """The workload × duplication-strategy accuracy matrix: one
        :meth:`compaction_accuracy` report per cell, full suite by
        default."""
        if workloads is None:
            from repro.workloads import all_workloads

            workloads = [w.name for w in all_workloads()]
        if strategies is None:
            strategies = COMPACTION_MATRIX_STRATEGIES
        return [
            self.compaction_accuracy(
                RunSpec(
                    workload=name,
                    strategy=strategy,
                    instrumentation=instrumentation,
                    trigger="counter",
                    interval=interval,
                    scale=scale,
                ),
                perfect_interval=perfect_interval,
            )
            for name in workloads
            for strategy in strategies
        ]


#: Strategies covered by the compaction accuracy matrix: the three
#: sampled code-duplication variants (exhaustive runs never sample, and
#: checks-only strategies are covered by the per-cell CLI path).
COMPACTION_MATRIX_STRATEGIES: Tuple[Strategy, ...] = (
    Strategy.FULL_DUPLICATION,
    Strategy.PARTIAL_DUPLICATION,
    Strategy.NO_DUPLICATION,
)


def _plan_section(spec: RunSpec) -> Dict[str, object]:
    """The manifest's ``plan`` section for one cell (empty when the
    spec carries no per-function assignment)."""
    if spec.plan is None:
        return {}
    assignments = dict(spec.plan)
    counts: Dict[str, int] = {}
    for value in assignments.values():
        counts[value] = counts.get(value, 0) + 1
    return {
        "default": spec.strategy.value,
        "assignments": assignments,
        "strategies": counts,
    }


def _plan_key(
    plan: Union["object", None]
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Normalize a runner-level plan argument to ``RunSpec.plan`` form:
    a StrategyPlan (via ``.key()``), a mapping, an iterable of pairs,
    or None."""
    if plan is None:
        return None
    key = getattr(plan, "key", None)
    if callable(key):
        plan = key()
    if isinstance(plan, dict):
        plan = plan.items()
    return tuple(sorted((str(f), str(s)) for f, s in plan))


def _resolve_cache(
    cache: Union[BaselineCache, str, bool, None]
) -> Optional[BaselineCache]:
    """Interpret the runner's ``cache`` argument (see its docstring)."""
    if cache is None:
        env = os.environ.get(CACHE_DIR_ENV)
        return BaselineCache(env) if env else None
    if cache is False:
        return None
    if cache is True:
        return BaselineCache()
    if isinstance(cache, BaselineCache):
        return cache
    return BaselineCache(cache)


def overhead_percent(baseline_cycles: int, cycles: int) -> float:
    """100 * (cycles / baseline - 1)."""
    if baseline_cycles <= 0:
        raise HarnessError("baseline has no cycles")
    return 100.0 * (cycles / baseline_cycles - 1.0)
