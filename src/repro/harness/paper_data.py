"""The paper's published numbers, transcribed for side-by-side reporting.

Source: Arnold & Ryder, PLDI 2001, Tables 1-5 and Figures 7-8. Keys use
our workload names; see each workload module for the analog mapping.
These are *reference* values — the harness prints them next to measured
values so shape agreement is auditable (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Table 1 — exhaustive instrumentation overhead %, (call-edge, field-access).
PAPER_TABLE1: Dict[str, Tuple[float, float]] = {
    "compress": (72.4, 204.8),
    "jess": (133.2, 60.9),
    "db": (8.3, 7.7),
    "javac": (75.7, 14.2),
    "mpegaudio": (129.6, 99.8),
    "mtrt": (122.2, 46.0),
    "jack": (34.3, 108.7),
    "optcompiler": (189.0, 34.9),
    "pbob": (72.3, 20.2),
    "volano": (46.6, 7.6),
}
PAPER_TABLE1_AVG = (88.3, 60.4)

#: Table 2 — Full-Duplication framework overhead:
#: (total %, backedge %, entry %, space KB, compile-time %).
PAPER_TABLE2: Dict[str, Tuple[float, float, float, int, int]] = {
    "compress": (8.7, 8.3, 0.9, 106, 37),
    "jess": (3.3, 2.9, 0.1, 244, 37),
    "db": (2.1, 1.8, 0.2, 123, 34),
    "javac": (2.7, 0.2, 1.4, 442, 38),
    "mpegaudio": (9.9, 9.0, 0.8, 156, 31),
    "mtrt": (3.4, 2.0, 2.4, 163, 31),
    "jack": (8.4, 6.6, 1.2, 258, 18),
    "optcompiler": (6.2, 2.1, 4.4, 976, 48),
    "pbob": (3.8, 2.5, 0.9, 306, 37),
    "volano": (1.4, 0.3, 1.0, 75, 32),
}
PAPER_TABLE2_AVG = (4.9, 3.5, 1.3, 285, 34)

#: Table 3 — No-Duplication checking overhead %, (call-edge, field-access).
PAPER_TABLE3: Dict[str, Tuple[float, float]] = {
    "compress": (0.9, 151.5),
    "jess": (0.1, 36.6),
    "db": (0.2, 6.9),
    "javac": (1.4, 21.3),
    "mpegaudio": (0.8, 100.7),
    "mtrt": (2.4, 49.1),
    "jack": (1.2, 72.1),
    "optcompiler": (4.4, 41.1),
    "pbob": (2.3, 21.3),
    "volano": (1.0, 10.4),
}
PAPER_TABLE3_AVG = (1.3, 51.1)

#: Table 4 — averaged over benchmarks, per sample interval:
#: interval -> (num samples, sampled-instr %, total %, call acc %, field acc %)
PAPER_TABLE4_FULL: Dict[int, Tuple[float, float, float, int, int]] = {
    1: (1.1e7, 167.2, 182.2, 100, 100),
    10: (1.1e6, 26.4, 29.3, 99, 100),
    100: (1.1e5, 4.2, 10.3, 98, 99),
    1000: (1.1e4, 0.8, 6.3, 94, 97),
    10000: (1137, 0.1, 5.1, 82, 94),
    100000: (109, 0.1, 5.0, 71, 83),
}
PAPER_TABLE4_NODUP: Dict[int, Tuple[float, float, float, int, int]] = {
    1: (6.7e7, 118.2, 269.1, 100, 100),
    10: (6.7e6, 22.8, 79.5, 98, 100),
    100: (6.7e5, 3.6, 61.3, 97, 99),
    1000: (6.7e4, 1.0, 57.2, 93, 98),
    10000: (6736, 0.2, 55.7, 81, 96),
    100000: (662, 0.2, 55.2, 70, 87),
}

#: Table 5 — field-access accuracy %, (time-based, counter-based).
PAPER_TABLE5: Dict[str, Tuple[int, int]] = {
    "compress": (88, 98),
    "jess": (91, 95),
    "db": (66, 95),
    "javac": (59, 73),
    "mpegaudio": (69, 95),
    "mtrt": (51, 67),
    "jack": (45, 94),
    "optcompiler": (58, 65),
    "pbob": (75, 87),
    "volano": (27, 71),
}
PAPER_TABLE5_AVG = (63, 84)

#: Figure 7 — javac call-edge overlap at interval 1000.
PAPER_FIGURE7_OVERLAP = 93.8

#: Figure 8(A) — Jalapeño-specific framework overhead %.
PAPER_FIGURE8A: Dict[str, float] = {
    "compress": 1.4,
    "jess": -0.5,
    "db": 1.6,
    "javac": 2.2,
    "mpegaudio": -2.1,
    "mtrt": 1.9,
    "jack": 0.8,
    "optcompiler": 4.8,
    "pbob": 1.4,
    "volano": 0.5,
}
PAPER_FIGURE8A_AVG = 1.4

#: Figure 8(B) — Jalapeño-specific total sampling overhead % by interval.
PAPER_FIGURE8B: Dict[int, float] = {
    1: 179.9,
    10: 27.6,
    100: 8.1,
    1000: 3.0,
    10000: 1.5,
    100000: 1.5,
}

#: The intervals the paper sweeps.
PAPER_INTERVALS: List[int] = [1, 10, 100, 1000, 10000, 100000]
