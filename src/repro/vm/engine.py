"""Closure-threaded fast execution engine.

A second VM engine that pre-compiles each verified :class:`Function`
into a direct-threaded list of Python callables — one per *segment* of
instructions — and dispatches with ``i = handlers[i](stack, locals_)``
instead of the reference interpreter's per-step opcode ladder.  Three
load-time optimizations carry the speedup:

1. **Whole-segment superinstructions.**  Every segment made of plain
   straight-line ops is compiled into ONE generated Python function
   (:func:`_gen_segment_src`): the operand stack is simulated at
   compile time, so ``LOAD x; LOAD y; ADD; STORE z`` becomes
   ``locals_[z] = locals_[x] + locals_[y]`` — intermediate values never
   touch the stack list, comparisons feed branches directly, and CALL
   builds the callee's argument list from expressions.  Segments the
   generator cannot express (the singleton observer ops below) fall
   back to one hand-written closure per instruction.

2. **Segment-level cycle accounting.**  Static instruction/cycle costs
   are charged once at *segment* entry instead of per instruction.  A
   segment is a run of instructions guaranteed to execute atomically
   with no externally observable cycle boundary inside it; every op
   whose behaviour *observes* the cycle counter — CHECK and
   GUARDED_INSTR (trigger polls), YIELDPOINT (threadswitch bit), IO
   (latency charge), NEW/NEWARRAY (GC-pause attribution), INSTR and
   SPAWN — sits alone in its own segment, and calls/returns/branches
   end segments.  Cumulative cycles at every observation point are
   therefore *identical* to the reference interpreter's, which keeps
   virtual-timer tick placement, trigger firings, thread switches and
   GC pauses bit-exact (ticks are a monotone function of cumulative
   cycles, and only observer ops can see them).

3. **Monomorphic inline caches.**  GETFIELD/PUTFIELD closures cache the
   last receiver class and resolved slot index in cells, skipping the
   ``Klass.slot_of`` dict lookup on the (overwhelmingly common)
   monomorphic hit path.

The engine produces bit-identical ``ExecStats``, cycles, output and
profiles to :mod:`repro.vm.interpreter` on every run that completes.
The two documented divergences are *abnormal* exits only: on a VMTrap
or fuel exhaustion the fast engine's ``stats.cycles``/``instructions``
may overshoot by up to one segment (costs were pre-charged at segment
entry), and the fuel check fires at segment granularity (every loop
passes a segment head, so runaway programs still trip it).  Trap
messages, functions and pcs are identical.

Engine selection: ``VM(engine="fast"|"reference"|"compiled")``, the
CLI ``--engine`` flag, or the ``REPRO_ENGINE`` environment variable;
the process-wide default is "fast".  The "compiled" tier
(:mod:`repro.vm.compiler`) subclasses this engine and lowers whole
functions into single generated Python regions.  See docs/VM_PERF.md.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.bytecode.function import Function
from repro.bytecode.opcodes import Op
from repro.errors import (
    BytecodeError,
    FuelExhaustedError,
    ReproError,
    StackOverflowError,
    VerificationError,
    VMTrap,
)
from repro.vm.frame import Frame
from repro.vm.values import RArray, RObject

#: Environment variable consulted when no engine is passed explicitly.
ENGINE_ENV = "REPRO_ENGINE"

#: Valid engine names.
ENGINES = ("fast", "reference", "compiled")

#: Process-wide default when neither argument nor environment chooses.
DEFAULT_ENGINE = "fast"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine name: explicit argument > $REPRO_ENGINE > default."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}: expected one of {', '.join(ENGINES)}"
        )
    return engine


# --------------------------------------------------------------------------
# opcode ints (module-local copies; the enum lookups stay out of hot paths)

_PUSH = int(Op.PUSH)
_POP = int(Op.POP)
_DUP = int(Op.DUP)
_SWAP = int(Op.SWAP)
_LOAD = int(Op.LOAD)
_STORE = int(Op.STORE)
_ADD = int(Op.ADD)
_SUB = int(Op.SUB)
_MUL = int(Op.MUL)
_DIV = int(Op.DIV)
_MOD = int(Op.MOD)
_AND = int(Op.AND)
_OR = int(Op.OR)
_XOR = int(Op.XOR)
_SHL = int(Op.SHL)
_SHR = int(Op.SHR)
_NEG = int(Op.NEG)
_NOT = int(Op.NOT)
_LT = int(Op.LT)
_LE = int(Op.LE)
_GT = int(Op.GT)
_GE = int(Op.GE)
_EQ = int(Op.EQ)
_NE = int(Op.NE)
_JUMP = int(Op.JUMP)
_JZ = int(Op.JZ)
_JNZ = int(Op.JNZ)
_CALL = int(Op.CALL)
_RETURN = int(Op.RETURN)
_HALT = int(Op.HALT)
_NEW = int(Op.NEW)
_GETFIELD = int(Op.GETFIELD)
_PUTFIELD = int(Op.PUTFIELD)
_NEWARRAY = int(Op.NEWARRAY)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_ALEN = int(Op.ALEN)
_PRINT = int(Op.PRINT)
_IO = int(Op.IO)
_SPAWN = int(Op.SPAWN)
_NOP = int(Op.NOP)
_YIELDPOINT = int(Op.YIELDPOINT)
_CHECK = int(Op.CHECK)
_INSTR = int(Op.INSTR)
_GUARDED_INSTR = int(Op.GUARDED_INSTR)
_LOADFN = int(Op.LOADFN)
_REPLACEFN = int(Op.REPLACEFN)
_OSRPOINT = int(Op.OSRPOINT)
_TRY = int(Op.TRY)
_ENDTRY = int(Op.ENDTRY)
_THROW = int(Op.THROW)

#: Ops that must sit alone in their own segment because they observe or
#: perturb the cycle counter / scheduler / heap clock mid-stream.  The
#: dynamic-code and exception ops join the set: LOADFN/REPLACEFN mutate
#: the function table, OSRPOINT can remap the running frame, THROW can
#: unwind it, and TRY/ENDTRY touch the handler stack that THROW reads —
#: singleton segments keep every such transition on a dispatch boundary
#: with reference-identical cycle accounting.
_BREAKERS = frozenset(
    {
        _CHECK,
        _GUARDED_INSTR,
        _INSTR,
        _YIELDPOINT,
        _IO,
        _NEW,
        _NEWARRAY,
        _SPAWN,
        _LOADFN,
        _REPLACEFN,
        _OSRPOINT,
        _TRY,
        _ENDTRY,
        _THROW,
    }
)

#: Ops that end a segment (control leaves the straight line after them).
_TERMINATORS = frozenset({_JUMP, _JZ, _JNZ, _CALL, _RETURN, _HALT})

#: Ops whose ``arg`` is a branch-target pc after linearization.  TRY's
#: arg is its handler pc: the handler must start a segment so THROW can
#: land on a handler-list slot.
_BRANCHES = frozenset({_JUMP, _JZ, _JNZ, _CHECK, _TRY})

#: Non-trapping binary ops a single shared handler shape can execute
#: (DIV/MOD trap on zero and get their own singleton bodies).
_FUSABLE_BINOPS = frozenset(
    {_ADD, _SUB, _MUL, _AND, _OR, _XOR, _SHL, _SHR,
     _LT, _LE, _GT, _GE, _EQ, _NE}
)

#: Value-producing semantics for those binops (comparisons push 1/0,
#: exactly like the reference ladder).
_BINFN: Dict[int, Callable] = {
    _ADD: lambda a, b: a + b,
    _SUB: lambda a, b: a - b,
    _MUL: lambda a, b: a * b,
    _AND: lambda a, b: a & b,
    _OR: lambda a, b: a | b,
    _XOR: lambda a, b: a ^ b,
    _SHL: lambda a, b: a << (b & 63),
    _SHR: lambda a, b: a >> (b & 63),
    _LT: lambda a, b: 1 if a < b else 0,
    _LE: lambda a, b: 1 if a <= b else 0,
    _GT: lambda a, b: 1 if a > b else 0,
    _GE: lambda a, b: 1 if a >= b else 0,
    _EQ: lambda a, b: 1 if a == b else 0,
    _NE: lambda a, b: 1 if a != b else 0,
}

# Dispatch sentinels returned by handlers instead of a handler index.
_REBIND = -2   # frame stack changed (call/return): rebind and continue
_DONE = -3     # thread finished
_YIELD = -5    # thread yielded to the scheduler


# --------------------------------------------------------------------------
# whole-segment source compilation
#
# Hand-fused closures cap out near two instructions per dispatch.  For
# segments made entirely of plain straight-line ops we go further: emit
# the whole segment as ONE generated Python function, simulating the
# operand stack at compile time so intermediate values become Python
# expressions/locals instead of list pushes and pops.  The generated
# function charges the segment's static cost in its prologue (identical
# to the closure path) and ends in the terminator's control transfer,
# so the accounting model — and therefore every observable stat — is
# unchanged.  Compiled code objects are cached process-wide by source
# text: re-running a workload recompiles nothing.

#: Ops a generated segment function can express.  Everything here is
#: straight-line (breakers never appear inside a segment) and has a
#: direct Python spelling with reference-identical trap behaviour.
_GEN_OPS = frozenset(
    {
        _PUSH, _POP, _DUP, _SWAP, _LOAD, _STORE,
        _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SHL, _SHR,
        _NEG, _NOT, _LT, _LE, _GT, _GE, _EQ, _NE,
        _GETFIELD, _PUTFIELD, _ALOAD, _ASTORE, _ALEN, _PRINT, _NOP,
        _JUMP, _JZ, _JNZ, _CALL, _RETURN, _HALT,
    }
)

_CMP_SYM = {_LT: "<", _LE: "<=", _GT: ">", _GE: ">=", _EQ: "==", _NE: "!="}
_CMP_NSYM = {_LT: ">=", _LE: ">", _GT: "<=", _GE: "<", _EQ: "!=", _NE: "=="}
_ARITH_SYM = {_ADD: "+", _SUB: "-", _MUL: "*", _AND: "&", _OR: "|",
              _XOR: "^"}

#: source text -> compiled code object (process-wide; sources embed only
#: per-program literals, so repeated VM construction hits this cache).
_CODE_CACHE: Dict[str, object] = {}


class _VEntry:
    """One compile-time operand-stack entry: a pure Python expression,
    the locals slots it reads (for STORE invalidation), whether it is
    atomic (re-usable without a temp), and — when it is a comparison —
    the operands, so a following JZ/JNZ can branch on the comparison
    directly instead of materializing 1/0."""

    __slots__ = ("expr", "slots", "atom", "cmp")

    def __init__(self, expr, slots=frozenset(), atom=False, cmp=None):
        self.expr = expr
        self.slots = slots
        self.atom = atom
        self.cmp = cmp


def _gen_segment_src(code, ops, s, e, head_index, nxt, fn_name, functions):
    """Emit source for segment ``[s, e)`` as one handler function.

    Returns ``(src, extras)`` where ``extras`` maps global names the
    source expects (inline-cache cells, callee Function objects) to
    fresh per-instance values.  The caller formats the accounting
    prologue; this emits only the body statements and the final control
    transfer.  Assumes every op in the segment is in :data:`_GEN_OPS`.
    """
    lines: List[str] = []
    extras: Dict[str, object] = {}
    vstack: List[_VEntry] = []
    ntmp = 0

    def emit(line):
        lines.append("    " + line)

    def newtmp():
        nonlocal ntmp
        t = f"t{ntmp}"
        ntmp += 1
        return t

    def vpop():
        if vstack:
            return vstack.pop()
        t = newtmp()
        emit(f"{t} = stack.pop()")
        return _VEntry(t, atom=True)

    def atomize(ent):
        """Return an entry safe to mention more than once."""
        if ent.atom:
            return ent
        t = newtmp()
        emit(f"{t} = {ent.expr}")
        return _VEntry(t, atom=True)

    def invalidate(slot):
        """Materialize pending exprs that read locals_[slot] before a
        STORE to it changes their value."""
        for i, ent in enumerate(vstack):
            if slot in ent.slots:
                t = newtmp()
                emit(f"{t} = {ent.expr}")
                vstack[i] = _VEntry(t, atom=True)

    def flush():
        for ent in vstack:
            emit(f"stack.append({ent.expr})")
        vstack.clear()

    def bump_if_backward(target, branch_pc, indent):
        if target < branch_pc + 1:
            lines.append(indent + "_stats.backward_jumps += 1")

    terminated = False
    for p in range(s, e):
        ins = code[p]
        op = ops[p]
        arg = ins.arg
        if op == _LOAD:
            vstack.append(
                _VEntry(f"locals_[{arg}]", frozenset((arg,)), atom=True)
            )
        elif op == _PUSH:
            # Parenthesized so attribute access parses: ``(1).__class__``.
            vstack.append(_VEntry(f"({arg!r})", atom=True))
        elif op == _STORE:
            ent = vpop()
            invalidate(arg)
            emit(f"locals_[{arg}] = {ent.expr}")
        elif op in _ARITH_SYM:
            b = vpop()
            a = vpop()
            vstack.append(
                _VEntry(
                    f"({a.expr} {_ARITH_SYM[op]} {b.expr})",
                    a.slots | b.slots,
                )
            )
        elif op in _CMP_SYM:
            b = vpop()
            a = vpop()
            vstack.append(
                _VEntry(
                    f"(1 if {a.expr} {_CMP_SYM[op]} {b.expr} else 0)",
                    a.slots | b.slots,
                    cmp=(op, a.expr, b.expr),
                )
            )
        elif op == _SHL or op == _SHR:
            b = vpop()
            a = vpop()
            sym = "<<" if op == _SHL else ">>"
            vstack.append(
                _VEntry(
                    f"({a.expr} {sym} ({b.expr} & 63))",
                    a.slots | b.slots,
                )
            )
        elif op == _DIV or op == _MOD:
            b = atomize(vpop())
            msg = "division by zero" if op == _DIV else "modulo by zero"
            emit(f"if {b.expr} == 0:")
            emit(f"    raise _VMTrap({msg!r}, {fn_name!r}, {p})")
            a = vpop()
            sym = "//" if op == _DIV else "%"
            vstack.append(
                _VEntry(f"({a.expr} {sym} {b.expr})", a.slots | b.slots)
            )
        elif op == _NEG:
            a = vpop()
            vstack.append(_VEntry(f"(-{a.expr})", a.slots))
        elif op == _NOT:
            a = vpop()
            vstack.append(
                _VEntry(f"(1 if {a.expr} == 0 else 0)", a.slots)
            )
        elif op == _DUP:
            ent = atomize(vpop())
            vstack.append(ent)
            vstack.append(_VEntry(ent.expr, ent.slots, atom=True))
        elif op == _POP:
            vpop()
        elif op == _SWAP:
            x1 = vpop()
            x2 = vpop()
            vstack.append(x1)
            vstack.append(x2)
        elif op == _GETFIELD:
            cell = f"_c{p}"
            extras[cell] = [None, 0]
            r = atomize(vpop())
            t = newtmp()
            emit(f"if {r.expr}.__class__ is _RObject:")
            emit(f"    _k = {r.expr}.klass")
            emit(f"    if _k is {cell}[0]:")
            emit(f"        {t} = {r.expr}.slots[{cell}[1]]")
            emit("    else:")
            emit(f"        _sl = _k.slot_of({arg[1]!r})")
            emit(f"        {cell}[0] = _k")
            emit(f"        {cell}[1] = _sl")
            emit(f"        {t} = {r.expr}.slots[_sl]")
            emit("else:")
            emit(
                f"    raise _VMTrap('GETFIELD on non-object %r'"
                f" % ({r.expr},), {fn_name!r}, {p})"
            )
            vstack.append(_VEntry(t, atom=True))
        elif op == _PUTFIELD:
            cell = f"_c{p}"
            extras[cell] = [None, 0]
            v = vpop()
            r = atomize(vpop())
            emit(f"if {r.expr}.__class__ is _RObject:")
            emit(f"    _k = {r.expr}.klass")
            emit(f"    if _k is {cell}[0]:")
            emit(f"        {r.expr}.slots[{cell}[1]] = {v.expr}")
            emit("    else:")
            emit(f"        _sl = _k.slot_of({arg[1]!r})")
            emit(f"        {cell}[0] = _k")
            emit(f"        {cell}[1] = _sl")
            emit(f"        {r.expr}.slots[_sl] = {v.expr}")
            emit("else:")
            emit(
                f"    raise _VMTrap('PUTFIELD on non-object %r'"
                f" % ({r.expr},), {fn_name!r}, {p})"
            )
        elif op == _ALOAD:
            i = atomize(vpop())
            r = atomize(vpop())
            t = newtmp()
            emit(f"if {r.expr}.__class__ is not _RArray:")
            emit(
                f"    raise _VMTrap('ALOAD on non-array %r'"
                f" % ({r.expr},), {fn_name!r}, {p})"
            )
            emit("try:")
            emit(f"    {t} = {r.expr}.slots[{i.expr}]")
            emit("except IndexError:")
            emit(
                f"    raise _VMTrap('array index %s out of range"
                f" [0, %s)' % ({i.expr}, len({r.expr})),"
                f" {fn_name!r}, {p}) from None"
            )
            vstack.append(_VEntry(t, atom=True))
        elif op == _ASTORE:
            v = vpop()
            i = atomize(vpop())
            r = atomize(vpop())
            emit(f"if {r.expr}.__class__ is not _RArray:")
            emit(
                f"    raise _VMTrap('ASTORE on non-array %r'"
                f" % ({r.expr},), {fn_name!r}, {p})"
            )
            emit("try:")
            emit(f"    {r.expr}.slots[{i.expr}] = {v.expr}")
            emit("except IndexError:")
            emit(
                f"    raise _VMTrap('array index %s out of range"
                f" [0, %s)' % ({i.expr}, len({r.expr})),"
                f" {fn_name!r}, {p}) from None"
            )
        elif op == _ALEN:
            r = atomize(vpop())
            emit(f"if {r.expr}.__class__ is not _RArray:")
            emit(
                f"    raise _VMTrap('ALEN on non-array %r'"
                f" % ({r.expr},), {fn_name!r}, {p})"
            )
            vstack.append(_VEntry(f"len({r.expr})", r.slots))
        elif op == _PRINT:
            ent = vpop()
            emit(f"_out.append({ent.expr})")
        elif op == _NOP:
            pass
        elif op == _JUMP:
            flush()
            bump_if_backward(arg, p, "    ")
            emit(f"return {head_index[arg]}")
            terminated = True
        elif op == _JZ or op == _JNZ:
            ent = vpop()
            flush()
            if ent.cmp is not None:
                cop, a, b = ent.cmp
                sym = _CMP_SYM[cop] if op == _JNZ else _CMP_NSYM[cop]
                emit(f"if {a} {sym} {b}:")
            else:
                sym = "!=" if op == _JNZ else "=="
                emit(f"if {ent.expr} {sym} 0:")
            bump_if_backward(arg, p, "        ")
            emit(f"    return {head_index[arg]}")
            emit(f"return {nxt}")
            terminated = True
        elif op == _CALL:
            callee = functions[arg]
            nargs = callee.num_params
            fname = f"_fn{p}"
            extras[fname] = callee
            if len(vstack) >= nargs:
                if nargs:
                    args_ent = vstack[-nargs:]
                    del vstack[-nargs:]
                else:
                    args_ent = []
                flush()
                arglist = "[" + ", ".join(a.expr for a in args_ent) + "]"
            else:
                flush()
                arglist = None
            emit("_stats.calls += 1")
            emit("_fs = _eng.frames")
            emit("if len(_fs) >= _md:")
            emit(
                f"    raise _SO('call depth %d in %s'"
                f" % (len(_fs), {callee.name!r}))"
            )
            if arglist is None:
                if nargs:
                    emit(f"_args = stack[-{nargs}:]")
                    emit(f"del stack[-{nargs}:]")
                else:
                    emit("_args = []")
                arglist = "_args"
            emit("_fr = _fs[-1]")
            emit(f"_fr.pc = {p + 1}")
            emit(f"_fr.fast_pc = {nxt}")
            emit(f"_fs.append(_Frame({fname}, {arglist}))")
            emit(f"return {_REBIND}")
            terminated = True
        elif op == _RETURN:
            r = atomize(vpop())
            emit("_stats.returns += 1")
            emit("_fs = _eng.frames")
            emit("_fs.pop()")
            emit("if not _fs:")
            emit("    _th = _eng.thread")
            emit("    _th.done = True")
            emit(f"    _th.result = {r.expr}")
            emit(f"    return {_DONE}")
            emit(f"_fs[-1].stack.append({r.expr})")
            emit(f"return {_REBIND}")
            terminated = True
        elif op == _HALT:
            emit("_th = _eng.thread")
            emit("_th.done = True")
            emit("_th.result = 0")
            emit(f"return {_DONE}")
            terminated = True
        else:  # pragma: no cover - guarded by _GEN_OPS membership
            raise AssertionError(f"op {op} not generatable")
    if not terminated:
        flush()
        emit(f"return {nxt}")
    return "\n".join(lines), extras


class FastEngine:
    """Compiled execution state for one VM run.

    Built lazily by :meth:`repro.vm.interpreter.VM.run`; compiles every
    function of the program once, then runs threads over the compiled
    handler lists.  All mutable run state (stats, trigger, threads,
    heap clock) lives on the owning VM — the engine only adds the
    compiled code and the virtual-timer horizon.
    """

    def __init__(self, vm):
        self.vm = vm
        self.thread = None
        self.frames = None
        self.next_tick = 0
        self._codes: Dict[Function, List[Callable]] = {}
        #: Per-function map of segment-start pc -> handler slot; THROW
        #: (handler targets) and OSRPOINT (landing pcs) translate
        #: original pcs through it when they redirect a live frame.
        self._heads: Dict[Function, Dict[int, int]] = {}
        #: Dynamic programs (loadables / LOADFN / REPLACEFN / OSRPOINT)
        #: resolve CALL and SPAWN callees by name at run time, because
        #: the function table can change under compiled code.  Functions
        #: installed mid-run are compiled on first entry; retired
        #: Function objects keep their compiled handlers (live frames
        #: still run them), and all per-function derived state —
        #: superinstructions, inline caches, head maps, OSR-landing
        #: caches — is keyed by Function object, so replacement
        #: invalidates it wholesale: the new Function simply compiles
        #: fresh.  Static programs keep the compile-time callee binding
        #: and pay nothing for any of this.
        self._dynamic = vm.program.is_dynamic()
        for fn in vm.program.functions.values():
            self._code_for(fn)

    def _code_for(self, fn: Function) -> List[Callable]:
        """The compiled handler list for *fn*, compiling on first use
        (functions registered at run time arrive here lazily)."""
        handlers = self._codes.get(fn)
        if handlers is None:
            handlers = self._compile(fn)
            self._codes[fn] = handlers
        return handlers

    # -- thread execution ---------------------------------------------------

    def run_thread(self, thread) -> bool:
        """Run *thread* until it finishes or yields; mirrors
        ``VM._run_thread`` (True = yielded, False = finished)."""
        vm = self.vm
        vm.current_thread = thread
        vm.trigger.notify_thread(thread.tid)
        stats = vm.stats
        timer_period = vm.timer_period
        self.next_tick = (
            stats.cycles // timer_period + 1
        ) * timer_period
        self.thread = thread
        frames = thread.frames
        self.frames = frames
        code_for = self._code_for

        frame = frames[-1]
        handlers = code_for(frame.function)
        i = frame.fast_pc
        stack = frame.stack
        locals_ = frame.locals
        while True:
            while i >= 0:
                i = handlers[i](stack, locals_)
            if i == _REBIND:
                frame = frames[-1]
                handlers = code_for(frame.function)
                i = frame.fast_pc
                stack = frame.stack
                locals_ = frame.locals
                continue
            return i == _YIELD

    # -- slow-path helpers (rare; kept out of the closures) -----------------

    def _ticks(self) -> None:
        """Process virtual-timer ticks after cycles crossed the horizon."""
        vm = self.vm
        stats = vm.stats
        cycles = stats.cycles
        next_tick = self.next_tick
        timer_period = vm.timer_period
        notify = vm.trigger.notify_timer_tick
        rec = vm.recorder
        tid = self.thread.tid
        while cycles >= next_tick:
            stats.timer_ticks += 1
            if rec is not None:
                # Boundary cycles, matching the reference engine: the
                # two engines detect crossings at different instruction
                # granularities, but k * timer_period is shared.
                rec.timer_tick(next_tick, stats.timer_ticks, tid)
            next_tick += timer_period
            notify()
        self.next_tick = next_tick
        vm._threadswitch_bit = True

    def _fuel_trap(self, pc: int) -> None:
        frame = self.frames[-1]
        raise FuelExhaustedError(
            f"instruction budget of {self.vm.fuel} exhausted in "
            f"{frame.function.name}@{pc}"
        )

    # -- compilation --------------------------------------------------------

    def _segments(self, code, ops):
        """Split a function into accounting segments.

        A segment is ``(start, end)`` over original pcs such that
        control entering at ``start`` executes every instruction up to
        the segment's exit with no observable cycle boundary inside:
        breakers get singleton segments, terminators end a segment
        inclusively, and every branch/CHECK target starts one.
        """
        n = len(code)
        leaders = {0}
        for ins, op in zip(code, ops):
            if op in _BRANCHES:
                leaders.add(ins.arg)
        segments = []
        i = 0
        while i < n:
            if ops[i] in _BREAKERS:
                segments.append((i, i + 1))
                i += 1
                continue
            j = i
            while True:
                op = ops[j]
                j += 1
                if op in _TERMINATORS or j >= n:
                    break
                if j in leaders or ops[j] in _BREAKERS:
                    break
            segments.append((i, j))
            i = j
        return segments

    def _compile(self, fn: Function) -> List[Callable]:
        """Compile *fn* into its direct-threaded handler list."""
        vm = self.vm
        eng = self
        stats = vm.stats
        fuel = vm.fuel
        trigger = vm.trigger
        poll = trigger.poll
        output = vm.output
        functions = vm.program.functions
        classes = vm.program.classes
        cost = vm.cost_model.cost_table()
        penalty = vm.cost_model.sample_transfer_penalty
        gc_every = vm.cost_model.gc_every_allocs
        gc_pause = vm.cost_model.gc_pause_cycles
        io_base = vm.cost_model.io_base_cost
        max_depth = vm.max_stack_depth
        fn_name = fn.name
        # Telemetry is a compile-time decision: with no recorder the
        # closures below are built without a single telemetry branch, so
        # the null path costs nothing (docs/OBSERVABILITY.md).
        rec = vm.recorder

        dynamic = self._dynamic

        code = fn.code
        ops = [int(ins.op) for ins in code]
        segments = self._segments(code, ops)
        # In dynamic mode CALL cannot be fused into a generated segment:
        # the superinstruction binds its callee at compile time, but the
        # function table can change under it.
        gen_ops = _GEN_OPS if not dynamic else _GEN_OPS - {_CALL}

        # Pass 1: plan each segment and assign handler indices so branch
        # targets (always segment starts) resolve to handler slots.
        # Segments made entirely of plain straight-line ops compile to a
        # single generated function (one slot); everything else — the
        # singleton breaker/terminator segments, plus any segment with
        # an op the generator cannot express — falls back to one closure
        # per instruction.
        seg_plans: List[Optional[list]] = []
        head_index: Dict[int, int] = {}
        idx = 0
        for (s, e) in segments:
            head_index[s] = idx
            if e - s >= 2 and all(ops[p] in gen_ops for p in range(s, e)):
                seg_plans.append(None)
                idx += 1
            else:
                seg_plans.append(list(range(s, e)))
                idx += e - s
        self._heads[fn] = head_index

        def wrap_head(body, SL, SC, PC):
            """Prepend segment accounting to a cold closure body."""
            def h(stack, locals_):
                ni = stats.instructions
                if ni >= fuel:
                    eng._fuel_trap(PC)
                stats.instructions = ni + SL
                c = stats.cycles + SC
                stats.cycles = c
                if c >= eng.next_tick:
                    eng._ticks()
                return body(stack, locals_)
            return h

        def build_singleton(pc_, NXT, HEAD, SL, SC, PC):
            """Build the closure for one unfused instruction.

            Hot ops inline the head-accounting block (guarded by the
            compile-time HEAD flag); cold ops build a headless body and
            get wrapped by ``wrap_head`` when they lead a segment.
            """
            ins = code[pc_]
            op = ops[pc_]
            arg = ins.arg

            # --- hot singletons: head accounting inlined -----------------
            if op == _LOAD:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stack.append(locals_[arg])
                    return NXT
                return h
            if op == _PUSH:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stack.append(arg)
                    return NXT
                return h
            if op == _STORE:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    locals_[arg] = stack.pop()
                    return NXT
                return h
            if op == _JUMP:
                T = head_index[arg]
                TB = arg < pc_ + 1
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    if TB:
                        stats.backward_jumps += 1
                    return T
                return h
            if op in (_JZ, _JNZ):
                T = head_index[arg]
                TB = arg < pc_ + 1
                want_zero = op == _JZ
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    if (stack.pop() == 0) == want_zero:
                        if TB:
                            stats.backward_jumps += 1
                        return T
                    return NXT
                return h
            if op in _FUSABLE_BINOPS:
                f = _BINFN[op]
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    b = stack.pop()
                    stack[-1] = f(stack[-1], b)
                    return NXT
                return h
            if op == _DUP:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stack.append(stack[-1])
                    return NXT
                return h
            if op == _POP:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stack.pop()
                    return NXT
                return h
            if op == _CALL and dynamic:
                PCP1 = pc_ + 1
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    callee = functions.get(arg)
                    if callee is None:
                        raise VMTrap(
                            f"call to unloaded function {arg!r}",
                            fn_name,
                            pc_,
                        )
                    stats.calls += 1
                    frames = eng.frames
                    if len(frames) >= max_depth:
                        raise StackOverflowError(
                            f"call depth {len(frames)} in {callee.name}"
                        )
                    nargs = callee.num_params
                    if nargs:
                        args = stack[-nargs:]
                        del stack[-nargs:]
                    else:
                        args = []
                    fr = frames[-1]
                    fr.pc = PCP1
                    fr.fast_pc = NXT
                    frames.append(Frame(callee, args))
                    return _REBIND
                return h
            if op == _CALL:
                callee = functions[arg]
                callee_name = callee.name
                nargs = callee.num_params
                PCP1 = pc_ + 1
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stats.calls += 1
                    frames = eng.frames
                    if len(frames) >= max_depth:
                        raise StackOverflowError(
                            f"call depth {len(frames)} in {callee_name}"
                        )
                    if nargs:
                        args = stack[-nargs:]
                        del stack[-nargs:]
                    else:
                        args = []
                    fr = frames[-1]
                    fr.pc = PCP1
                    fr.fast_pc = NXT
                    frames.append(Frame(callee, args))
                    return _REBIND
                return h
            if op == _RETURN:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stats.returns += 1
                    result = stack.pop()
                    frames = eng.frames
                    frames.pop()
                    if not frames:
                        th = eng.thread
                        th.done = True
                        th.result = result
                        return _DONE
                    frames[-1].stack.append(result)
                    return _REBIND
                return h
            if op == _GETFIELD:
                field = arg[1]
                cache_k = None
                cache_s = 0
                def h(stack, locals_):
                    nonlocal cache_k, cache_s
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    ref = stack[-1]
                    if ref.__class__ is RObject:
                        k = ref.klass
                        if k is cache_k:
                            stack[-1] = ref.slots[cache_s]
                        else:
                            s = k.slot_of(field)
                            cache_k = k
                            cache_s = s
                            stack[-1] = ref.slots[s]
                        return NXT
                    raise VMTrap(
                        f"GETFIELD on non-object {ref!r}", fn_name, pc_
                    )
                return h
            if op == _PUTFIELD:
                field = arg[1]
                cache_k = None
                cache_s = 0
                def h(stack, locals_):
                    nonlocal cache_k, cache_s
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    value = stack.pop()
                    ref = stack.pop()
                    if ref.__class__ is RObject:
                        k = ref.klass
                        if k is cache_k:
                            ref.slots[cache_s] = value
                        else:
                            s = k.slot_of(field)
                            cache_k = k
                            cache_s = s
                            ref.slots[s] = value
                        return NXT
                    raise VMTrap(
                        f"PUTFIELD on non-object {ref!r}", fn_name, pc_
                    )
                return h
            if op == _ALOAD:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    idx = stack.pop()
                    ref = stack[-1]
                    if ref.__class__ is not RArray:
                        raise VMTrap(
                            f"ALOAD on non-array {ref!r}", fn_name, pc_
                        )
                    try:
                        stack[-1] = ref.slots[idx]
                    except IndexError:
                        raise VMTrap(
                            f"array index {idx} out of range "
                            f"[0, {len(ref)})",
                            fn_name,
                            pc_,
                        ) from None
                    return NXT
                return h
            if op == _ASTORE:
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    value = stack.pop()
                    idx = stack.pop()
                    ref = stack.pop()
                    if ref.__class__ is not RArray:
                        raise VMTrap(
                            f"ASTORE on non-array {ref!r}", fn_name, pc_
                        )
                    try:
                        ref.slots[idx] = value
                    except IndexError:
                        raise VMTrap(
                            f"array index {idx} out of range "
                            f"[0, {len(ref)})",
                            fn_name,
                            pc_,
                        ) from None
                    return NXT
                return h
            if op == _YIELDPOINT:
                PCP1 = pc_ + 1
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stats.yieldpoints_executed += 1
                    if vm._threadswitch_bit:
                        vm._threadswitch_bit = False
                        th = eng.thread
                        for t in vm.threads:
                            if t is not th and not t.done:
                                fr = eng.frames[-1]
                                fr.pc = PCP1
                                fr.fast_pc = NXT
                                return _YIELD
                    return NXT
                return h
            if op == _CHECK:
                T = head_index[arg]
                if rec is not None:
                    target = arg
                    def h(stack, locals_):
                        if HEAD:
                            ni = stats.instructions
                            if ni >= fuel:
                                eng._fuel_trap(PC)
                            stats.instructions = ni + SL
                            c = stats.cycles + SC
                            stats.cycles = c
                            if c >= eng.next_tick:
                                eng._ticks()
                        stats.checks_executed += 1
                        if poll():
                            stats.checks_taken += 1
                            c = stats.cycles + penalty
                            stats.cycles = c
                            rec.check(
                                c, eng.thread.tid, fn_name, pc_,
                                True, target, eng.frames,
                            )
                            return T
                        rec.check(
                            stats.cycles, eng.thread.tid, fn_name, pc_,
                            False, None, eng.frames,
                        )
                        return NXT
                    return h
                def h(stack, locals_):
                    if HEAD:
                        ni = stats.instructions
                        if ni >= fuel:
                            eng._fuel_trap(PC)
                        stats.instructions = ni + SL
                        c = stats.cycles + SC
                        stats.cycles = c
                        if c >= eng.next_tick:
                            eng._ticks()
                    stats.checks_executed += 1
                    if poll():
                        stats.checks_taken += 1
                        stats.cycles += penalty
                        return T
                    return NXT
                return h

            # --- cold singletons: headless body + optional wrapper --------
            if op == _GUARDED_INSTR:
                action = arg
                PCP1 = pc_ + 1
                if rec is not None:
                    def body(stack, locals_):
                        stats.guarded_checks_executed += 1
                        if poll():
                            stats.guarded_checks_taken += 1
                            c = stats.cycles + action.cost
                            stats.cycles = c
                            stats.instr_ops_executed += 1
                            rec.guarded_fired(
                                c, eng.thread.tid, fn_name, pc_, eng.frames
                            )
                            fr = eng.frames[-1]
                            fr.pc = PCP1
                            action.execute(vm, fr)
                        return NXT
                else:
                    def body(stack, locals_):
                        stats.guarded_checks_executed += 1
                        if poll():
                            stats.guarded_checks_taken += 1
                            stats.cycles += action.cost
                            stats.instr_ops_executed += 1
                            fr = eng.frames[-1]
                            fr.pc = PCP1
                            action.execute(vm, fr)
                        return NXT
            elif op == _INSTR:
                action = arg
                PCP1 = pc_ + 1
                def body(stack, locals_):
                    stats.cycles += action.cost
                    stats.instr_ops_executed += 1
                    fr = eng.frames[-1]
                    fr.pc = PCP1
                    action.execute(vm, fr)
                    return NXT
            elif op == _NEW:
                klass = classes[arg]
                if rec is not None:
                    def body(stack, locals_):
                        vm._alloc_count += 1
                        if vm._alloc_count % gc_every == 0:
                            c = stats.cycles + gc_pause
                            stats.cycles = c
                            stats.gc_pauses += 1
                            rec.gc_pause(
                                c, eng.thread.tid, fn_name, pc_,
                                gc_pause, vm._alloc_count, eng.frames,
                            )
                        stack.append(RObject(klass))
                        return NXT
                else:
                    def body(stack, locals_):
                        vm._alloc_count += 1
                        if vm._alloc_count % gc_every == 0:
                            stats.cycles += gc_pause
                            stats.gc_pauses += 1
                        stack.append(RObject(klass))
                        return NXT
            elif op == _NEWARRAY:
                if rec is not None:
                    def body(stack, locals_):
                        length = stack.pop()
                        if not isinstance(length, int) or length < 0:
                            raise VMTrap(
                                f"bad array length {length!r}", fn_name, pc_
                            )
                        vm._alloc_count += 1
                        if vm._alloc_count % gc_every == 0:
                            c = stats.cycles + gc_pause
                            stats.cycles = c
                            stats.gc_pauses += 1
                            rec.gc_pause(
                                c, eng.thread.tid, fn_name, pc_,
                                gc_pause, vm._alloc_count, eng.frames,
                            )
                        stack.append(RArray(length))
                        return NXT
                else:
                    def body(stack, locals_):
                        length = stack.pop()
                        if not isinstance(length, int) or length < 0:
                            raise VMTrap(
                                f"bad array length {length!r}", fn_name, pc_
                            )
                        vm._alloc_count += 1
                        if vm._alloc_count % gc_every == 0:
                            stats.cycles += gc_pause
                            stats.gc_pauses += 1
                        stack.append(RArray(length))
                        return NXT
            elif op == _IO:
                charge = io_base * arg
                def body(stack, locals_):
                    stats.cycles += charge
                    stats.io_ops += 1
                    stack.append(vm._io_value(eng.thread))
                    return NXT
            elif op == _SPAWN:
                if dynamic:
                    def body(stack, locals_):
                        callee = functions.get(arg)
                        if callee is None:
                            raise VMTrap(
                                f"call to unloaded function {arg!r}",
                                fn_name,
                                pc_,
                            )
                        nargs = callee.num_params
                        if nargs:
                            args = stack[-nargs:]
                            del stack[-nargs:]
                        else:
                            args = []
                        child = vm._spawn_thread(callee, args)
                        stack.append(child.tid)
                        return NXT
                else:
                    callee = functions[arg]
                    nargs = callee.num_params
                    def body(stack, locals_):
                        if nargs:
                            args = stack[-nargs:]
                            del stack[-nargs:]
                        else:
                            args = []
                        child = vm._spawn_thread(callee, args)
                        stack.append(child.tid)
                        return NXT
            elif op == _TRY:
                target = arg
                def body(stack, locals_):
                    eng.frames[-1].handlers.append((target, len(stack)))
                    return NXT
            elif op == _ENDTRY:
                def body(stack, locals_):
                    fr = eng.frames[-1]
                    if not fr.handlers:
                        raise VMTrap(
                            "ENDTRY without matching TRY", fn_name, pc_
                        )
                    fr.handlers.pop()
                    return NXT
            elif op == _THROW:
                def body(stack, locals_):
                    value = stack.pop()
                    stats.throws += 1
                    frames = eng.frames
                    fr = frames[-1]
                    while True:
                        if fr.handlers:
                            target, depth = fr.handlers.pop()
                            del fr.stack[depth:]
                            fr.stack.append(value)
                            # Handler targets are branch targets, so
                            # they always lead a segment.
                            fr.fast_pc = eng._heads[fr.function][target]
                            return _REBIND
                        frames.pop()
                        stats.frames_unwound += 1
                        if not frames:
                            raise VMTrap(
                                f"uncaught guest exception {value!r}",
                                fn_name,
                                pc_,
                            )
                        fr = frames[-1]
            elif op == _LOADFN:
                template_name = arg
                def body(stack, locals_):
                    try:
                        loaded = vm._dyn_load(template_name)
                    except (BytecodeError, VerificationError) as exc:
                        raise VMTrap(
                            f"LOADFN failed: {exc}", fn_name, pc_
                        ) from None
                    stack.append(loaded)
                    return NXT
            elif op == _REPLACEFN:
                target_name, template_name = arg
                def body(stack, locals_):
                    try:
                        replaced = vm._dyn_replace(
                            target_name, template_name
                        )
                    except (BytecodeError, VerificationError) as exc:
                        raise VMTrap(
                            f"REPLACEFN failed: {exc}", fn_name, pc_
                        ) from None
                    stack.append(replaced)
                    return NXT
            elif op == _OSRPOINT:
                osr_id = arg
                def body(stack, locals_):
                    current = functions.get(fn_name)
                    if current is None or current is fn:
                        return NXT
                    landing = vm._osr_landing(current, osr_id)
                    if landing is None:
                        raise VMTrap(
                            f"no OSR point {osr_id!r} in replacement of "
                            f"{fn_name}",
                            fn_name,
                            pc_,
                        )
                    stats.osr_remaps += 1
                    # Remap the live frame onto the new body (see the
                    # reference ladder): pad/truncate locals in place,
                    # drop handler records, and resume just past the
                    # matching OSR point — a breaker singleton there, so
                    # the landing pc always leads a segment.
                    num_locals = current.num_locals
                    if len(locals_) < num_locals:
                        locals_.extend([0] * (num_locals - len(locals_)))
                    elif len(locals_) > num_locals:
                        del locals_[num_locals:]
                    fr = eng.frames[-1]
                    fr.handlers.clear()
                    fr.function = current
                    eng._code_for(current)
                    fr.fast_pc = eng._heads[current][landing]
                    return _REBIND
            elif op == _DIV or op == _MOD:
                is_div = op == _DIV
                def body(stack, locals_):
                    b = stack.pop()
                    if b == 0:
                        raise VMTrap(
                            "division by zero" if is_div
                            else "modulo by zero",
                            fn_name,
                            pc_,
                        )
                    if is_div:
                        stack[-1] = stack[-1] // b
                    else:
                        stack[-1] = stack[-1] % b
                    return NXT
            elif op == _NEG:
                def body(stack, locals_):
                    stack[-1] = -stack[-1]
                    return NXT
            elif op == _NOT:
                def body(stack, locals_):
                    stack[-1] = 1 if stack[-1] == 0 else 0
                    return NXT
            elif op == _SWAP:
                def body(stack, locals_):
                    stack[-1], stack[-2] = stack[-2], stack[-1]
                    return NXT
            elif op == _ALEN:
                def body(stack, locals_):
                    ref = stack[-1]
                    if ref.__class__ is not RArray:
                        raise VMTrap(
                            f"ALEN on non-array {ref!r}", fn_name, pc_
                        )
                    stack[-1] = len(ref)
                    return NXT
            elif op == _PRINT:
                def body(stack, locals_):
                    output.append(stack.pop())
                    return NXT
            elif op == _NOP:
                def body(stack, locals_):
                    return NXT
            elif op == _HALT:
                def body(stack, locals_):
                    th = eng.thread
                    th.done = True
                    th.result = 0
                    return _DONE
            else:
                name = code[pc_].op.name
                def body(stack, locals_):
                    raise VMTrap(
                        f"unimplemented opcode {name}", fn_name, pc_
                    )
            if HEAD:
                return wrap_head(body, SL, SC, PC)
            return body

        # Pass 2: build handlers.  Fallthrough out of a handler is
        # simply the next slot; segments are laid out in code order, so
        # falling off a segment's last handler lands on the next
        # segment's head.  (Verified code always ends segments in
        # terminators or breakers, so the only way to leave a segment is
        # an explicit branch sentinel or that fallthrough.)
        handlers: List[Callable] = []
        gen_globals = {
            "_stats": stats,
            "_eng": eng,
            "_fuel": fuel,
            "_out": output,
            "_Frame": Frame,
            "_VMTrap": VMTrap,
            "_RObject": RObject,
            "_RArray": RArray,
            "_SO": StackOverflowError,
            "_md": max_depth,
        }
        for (s, e), plan in zip(segments, seg_plans):
            seg_len = e - s
            seg_cost = 0
            for p in range(s, e):
                seg_cost += cost[ops[p]]
            if plan is None:
                nxt = len(handlers) + 1
                body, extras = _gen_segment_src(
                    code, ops, s, e, head_index, nxt, fn_name, functions
                )
                src = (
                    "def _h(stack, locals_):\n"
                    "    ni = _stats.instructions\n"
                    "    if ni >= _fuel:\n"
                    f"        _eng._fuel_trap({s})\n"
                    f"    _stats.instructions = ni + {seg_len}\n"
                    f"    _cy = _stats.cycles + {seg_cost}\n"
                    "    _stats.cycles = _cy\n"
                    "    if _cy >= _eng.next_tick:\n"
                    "        _eng._ticks()\n" + body + "\n"
                )
                co = _CODE_CACHE.get(src)
                if co is None:
                    co = compile(src, "<segment>", "exec")
                    _CODE_CACHE[src] = co
                ns = dict(gen_globals)
                ns.update(extras)
                exec(co, ns)
                handlers.append(ns["_h"])
                continue
            for gi, p in enumerate(plan):
                nxt = len(handlers) + 1
                handlers.append(
                    build_singleton(p, nxt, gi == 0, seg_len, seg_cost, s)
                )

        # Opcode counting (calibration tooling): bump each segment's
        # constituent-opcode multiset once at the segment head, so fused
        # superinstructions still report exact per-opcode counts.
        oc = stats.opcode_counts
        if oc is not None:
            def wrap_counts(inner, items):
                def h(stack, locals_):
                    for o, k in items:
                        oc[o] = oc.get(o, 0) + k
                    return inner(stack, locals_)
                return h

            for (s, e) in segments:
                counts: Dict[int, int] = {}
                for p in range(s, e):
                    counts[ops[p]] = counts.get(ops[p], 0) + 1
                head = head_index[s]
                handlers[head] = wrap_counts(
                    handlers[head], tuple(counts.items())
                )

        # VM self-profiling (repro.profiling): like telemetry, a
        # compile-time decision — with no enabled profiler attached not
        # a single profiling branch is compiled.  With one, every
        # segment head is wrapped so the profiler polls its counter
        # exactly once per observer boundary, classified by the
        # segment's breaker op.  CHECK/GUARDED firing is detected from
        # the stats deltas the inner handler produced, so the wrappers
        # never re-poll the VM's own sampling trigger.
        prof = vm.profiler
        if prof is not None and prof.enabled:
            p_boundary = prof.boundary
            p_check = prof.check_boundary
            p_guarded = prof.guarded_boundary

            def wrap_plain(inner, comp, PC, OP):
                def h(stack, locals_):
                    p_boundary(
                        comp, fn_name, PC, OP, eng.frames, eng.thread.tid
                    )
                    return inner(stack, locals_)
                return h

            def wrap_check(inner, PC):
                def h(stack, locals_):
                    taken = stats.checks_taken
                    nxt = inner(stack, locals_)
                    p_check(
                        stats.checks_taken != taken, fn_name, PC,
                        eng.frames, eng.thread.tid,
                    )
                    return nxt
                return h

            def wrap_guarded(inner, PC):
                def h(stack, locals_):
                    taken = stats.guarded_checks_taken
                    nxt = inner(stack, locals_)
                    p_guarded(
                        stats.guarded_checks_taken != taken, fn_name, PC,
                        eng.frames, eng.thread.tid,
                    )
                    return nxt
                return h

            for (s, e) in segments:
                head = head_index[s]
                op0 = ops[s]
                if op0 == _CHECK:
                    handlers[head] = wrap_check(handlers[head], s)
                elif op0 == _GUARDED_INSTR:
                    handlers[head] = wrap_guarded(handlers[head], s)
                elif op0 == _INSTR:
                    handlers[head] = wrap_plain(
                        handlers[head], "payload", s, op0
                    )
                elif op0 == _YIELDPOINT:
                    handlers[head] = wrap_plain(
                        handlers[head], "poll", s, op0
                    )
                else:
                    handlers[head] = wrap_plain(
                        handlers[head], "dispatch", s, op0
                    )

        return handlers
