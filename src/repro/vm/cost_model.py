"""Deterministic cycle cost model.

This is the substitution for the paper's wall-clock measurements (see
DESIGN.md §2): every executed instruction is charged a fixed cycle cost,
so "running time" is a deterministic integer and overhead percentages
are exact ratios of extra work — the same arithmetic that drives the
paper's numbers, minus measurement noise.

The default constants model the paper's own itemization on a simple
in-order machine:

* a counter-based check is "a memory load, compare, branch, decrement,
  and store" (§4.3) → 5 cycles;
* a Jalapeño yieldpoint is a bit test and conditional branch (plus its
  share of keeping the bit warm) → 4 cycles, so replacing a yieldpoint
  with a check (the Jalapeño-specific optimization, §4.5) costs +1 where
  adding a check beside the yieldpoint costs +5;
* a taken sample check pays an instruction-cache transfer penalty for
  jumping into cold duplicated code (§4.4 note 6);
* ``IO`` models long-latency operations (the paper's §2.1 discussion of
  timer-interrupt mis-attribution).

Costs are plain attributes so experiments can build variant models
(``CostModel(check_cost=1)`` models the PowerPC decrement-and-check
single instruction mentioned in §2.2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bytecode.opcodes import Op

#: Per-opcode base costs. INSTR/GUARDED_INSTR/CHECK/YIELDPOINT/IO get
#: their cost from dedicated CostModel attributes, not this table.
DEFAULT_OP_COSTS: Dict[Op, int] = {
    Op.PUSH: 1,
    Op.POP: 1,
    Op.DUP: 1,
    Op.SWAP: 1,
    Op.LOAD: 1,
    Op.STORE: 1,
    Op.ADD: 1,
    Op.SUB: 1,
    Op.MUL: 3,
    Op.DIV: 20,
    Op.MOD: 20,
    Op.AND: 1,
    Op.OR: 1,
    Op.XOR: 1,
    Op.SHL: 1,
    Op.SHR: 1,
    Op.NEG: 1,
    Op.NOT: 1,
    Op.LT: 1,
    Op.LE: 1,
    Op.GT: 1,
    Op.GE: 1,
    Op.EQ: 1,
    Op.NE: 1,
    Op.JUMP: 1,
    Op.JZ: 1,
    Op.JNZ: 1,
    Op.CALL: 6,
    Op.RETURN: 4,
    Op.HALT: 1,
    Op.NEW: 12,
    Op.GETFIELD: 2,
    Op.PUTFIELD: 2,
    Op.NEWARRAY: 12,
    Op.ALOAD: 2,
    Op.ASTORE: 2,
    Op.ALEN: 1,
    Op.PRINT: 8,
    Op.SPAWN: 30,
    Op.NOP: 1,
    # Dynamic code events: LOADFN/REPLACEFN model a verify+install of a
    # pre-compiled template (cheap relative to a real JIT, but clearly
    # more than straight-line work); OSRPOINT is a load-compare like a
    # guard; TRY/ENDTRY push/pop one handler record; THROW pays an
    # unwind-machinery transfer.
    Op.LOADFN: 40,
    Op.REPLACEFN: 50,
    Op.OSRPOINT: 2,
    Op.TRY: 2,
    Op.ENDTRY: 1,
    Op.THROW: 20,
    # Placeholders; overridden by CostModel attributes below.
    Op.IO: 0,
    Op.YIELDPOINT: 0,
    Op.CHECK: 0,
    Op.INSTR: 0,
    Op.GUARDED_INSTR: 0,
}


class CostModel:
    """Cycle costs for the simulated machine.

    Attributes:
        check_cost: cycles per executed sample check (taken or not).
        yieldpoint_cost: cycles per executed yieldpoint poll.
        sample_transfer_penalty: extra cycles when a check is taken
            (jump into cold duplicated code; models the icache miss the
            paper cites for why interval-1 sampling is *slower* than
            exhaustive instrumentation).
        io_base_cost: cycles per unit of an IO instruction's latency
            class (IO arg k costs ``k * io_base_cost``).
        thread_switch_cost: cycles charged when the scheduler actually
            switches threads at a yieldpoint.
    """

    def __init__(
        self,
        op_costs: Dict[Op, int] = None,
        check_cost: int = 5,
        yieldpoint_cost: int = 4,
        sample_transfer_penalty: int = 20,
        io_base_cost: int = 400,
        thread_switch_cost: int = 50,
        gc_every_allocs: int = 64,
        gc_pause_cycles: int = 2500,
    ):
        merged = dict(DEFAULT_OP_COSTS)
        if op_costs:
            merged.update(op_costs)
        self.op_costs = merged
        self.check_cost = check_cost
        self.yieldpoint_cost = yieldpoint_cost
        self.sample_transfer_penalty = sample_transfer_penalty
        self.io_base_cost = io_base_cost
        self.thread_switch_cost = thread_switch_cost
        # Deterministic GC model: every Nth allocation (NEW/NEWARRAY)
        # charges a collection pause. Pauses depend only on allocation
        # counts, so baseline and transformed runs pause identically;
        # their role is to give timer-based triggers a realistic
        # long-latency event to mis-attribute samples across (§4.6).
        self.gc_every_allocs = gc_every_allocs
        self.gc_pause_cycles = gc_pause_cycles

    def cost_table(self) -> List[int]:
        """Dense list indexed by opcode int, for the interpreter's hot
        path. Special-cased ops get their attribute cost baked in
        (extras like the transfer penalty are added by the interpreter).
        """
        size = max(int(op) for op in Op) + 1
        table = [0] * size
        for op, cost in self.op_costs.items():
            table[int(op)] = cost
        table[int(Op.CHECK)] = self.check_cost
        table[int(Op.GUARDED_INSTR)] = self.check_cost
        table[int(Op.YIELDPOINT)] = self.yieldpoint_cost
        # IO and INSTR costs are data-dependent; interpreter adds them.
        table[int(Op.IO)] = 0
        table[int(Op.INSTR)] = 0
        return table

    def with_overrides(self, **kwargs: int) -> "CostModel":
        """A copy of this model with the given attributes replaced."""
        model = CostModel(
            op_costs=dict(self.op_costs),
            check_cost=self.check_cost,
            yieldpoint_cost=self.yieldpoint_cost,
            sample_transfer_penalty=self.sample_transfer_penalty,
            io_base_cost=self.io_base_cost,
            thread_switch_cost=self.thread_switch_cost,
            gc_every_allocs=self.gc_every_allocs,
            gc_pause_cycles=self.gc_pause_cycles,
        )
        for key, value in kwargs.items():
            if not hasattr(model, key):
                raise AttributeError(f"CostModel has no attribute {key!r}")
            setattr(model, key, value)
        return model


#: Model for a machine with a fused decrement-and-check instruction
#: (the PowerPC count-register trick from §2.2).
def powerpc_ctr_model() -> CostModel:
    return CostModel(check_cost=1)
