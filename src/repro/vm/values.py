"""Runtime value model: integers plus heap references.

The VM is untyped at the instruction level — stack slots and locals hold
either Python ints or references (:class:`RObject` / :class:`RArray`).
Type confusion (e.g. GETFIELD on an int) raises ``VMTrap`` at the site,
mirroring how a real VM's verifier+runtime split works: our bytecode
verifier checks shape, the runtime checks reference kinds.
"""

from __future__ import annotations

from typing import List, Union

from repro.bytecode.klass import Klass


class RObject:
    """A heap object: one integer/reference slot per declared field."""

    __slots__ = ("klass", "slots")

    def __init__(self, klass: Klass):
        self.klass = klass
        self.slots: List["Value"] = [0] * klass.num_fields()

    def get(self, slot: int) -> "Value":
        return self.slots[slot]

    def set(self, slot: int, value: "Value") -> None:
        self.slots[slot] = value

    def __repr__(self) -> str:
        return f"<{self.klass.name} {self.slots!r}>"


class RArray:
    """A fixed-length heap array of ints/references."""

    __slots__ = ("slots",)

    def __init__(self, length: int):
        self.slots: List["Value"] = [0] * length

    def __len__(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:
        preview = self.slots[:8]
        suffix = "..." if len(self.slots) > 8 else ""
        return f"<array[{len(self.slots)}] {preview!r}{suffix}>"


Value = Union[int, RObject, RArray]


def is_reference(value: Value) -> bool:
    return isinstance(value, (RObject, RArray))


def truthy(value: Value) -> bool:
    """MiniJ truth: 0 is false, everything else (including refs) true."""
    if isinstance(value, int):
        return value != 0
    return True
