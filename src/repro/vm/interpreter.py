"""The bytecode interpreter.

Executes a verified :class:`Program` under a :class:`CostModel`,
accumulating deterministic cycle counts (:class:`ExecStats`). The
sampling framework's pseudo-ops are first-class here:

* ``CHECK target`` — polls the VM's trigger; on fire, control transfers
  to *target* (duplicated code) and the sample-transfer penalty is
  charged.
* ``GUARDED_INSTR action`` — polls the trigger; on fire, the
  instrumentation action runs (No-Duplication's guarded operations).
* ``INSTR action`` — always runs the action (exhaustive instrumentation
  and duplicated-code bodies).
* ``YIELDPOINT`` — green-thread scheduling poll; a virtual timer sets
  the threadswitch bit every ``timer_period`` cycles.

Dispatch is a plain if/elif ladder over opcode ints ordered by dynamic
frequency.  This module is the *reference* engine: the behavioural
contract every other engine must match bit-for-bit.  Production runs
default to the closure-threaded fast engine (:mod:`repro.vm.engine`),
selected via ``VM(engine=...)`` or ``$REPRO_ENGINE``; the scheduler,
threads, stats and heap model here are shared by both engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.errors import (
    BytecodeError,
    FuelExhaustedError,
    StackOverflowError,
    VerificationError,
    VMTrap,
)
from repro.sampling.triggers import NeverTrigger, Trigger
from repro.vm.engine import FastEngine, resolve_engine
from repro.vm.cost_model import CostModel
from repro.vm.frame import Frame, GreenThread
from repro.vm.tracing import ExecStats
from repro.vm.values import RArray, RObject, Value

# Opcode ints hoisted for the dispatch ladder.
_PUSH = int(Op.PUSH)
_POP = int(Op.POP)
_DUP = int(Op.DUP)
_SWAP = int(Op.SWAP)
_LOAD = int(Op.LOAD)
_STORE = int(Op.STORE)
_ADD = int(Op.ADD)
_SUB = int(Op.SUB)
_MUL = int(Op.MUL)
_DIV = int(Op.DIV)
_MOD = int(Op.MOD)
_AND = int(Op.AND)
_OR = int(Op.OR)
_XOR = int(Op.XOR)
_SHL = int(Op.SHL)
_SHR = int(Op.SHR)
_NEG = int(Op.NEG)
_NOT = int(Op.NOT)
_LT = int(Op.LT)
_LE = int(Op.LE)
_GT = int(Op.GT)
_GE = int(Op.GE)
_EQ = int(Op.EQ)
_NE = int(Op.NE)
_JUMP = int(Op.JUMP)
_JZ = int(Op.JZ)
_JNZ = int(Op.JNZ)
_CALL = int(Op.CALL)
_RETURN = int(Op.RETURN)
_HALT = int(Op.HALT)
_NEW = int(Op.NEW)
_GETFIELD = int(Op.GETFIELD)
_PUTFIELD = int(Op.PUTFIELD)
_NEWARRAY = int(Op.NEWARRAY)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_ALEN = int(Op.ALEN)
_PRINT = int(Op.PRINT)
_IO = int(Op.IO)
_SPAWN = int(Op.SPAWN)
_NOP = int(Op.NOP)
_YIELDPOINT = int(Op.YIELDPOINT)
_CHECK = int(Op.CHECK)
_INSTR = int(Op.INSTR)
_GUARDED_INSTR = int(Op.GUARDED_INSTR)
_LOADFN = int(Op.LOADFN)
_REPLACEFN = int(Op.REPLACEFN)
_OSRPOINT = int(Op.OSRPOINT)
_TRY = int(Op.TRY)
_ENDTRY = int(Op.ENDTRY)
_THROW = int(Op.THROW)

#: Ops with their own profiler boundary classification; everything else
#: reports a generic "dispatch" boundary (see repro.profiling).
_PROF_SPECIAL = frozenset({_CHECK, _GUARDED_INSTR, _INSTR, _YIELDPOINT})

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


@dataclass
class VMResult:
    """Outcome of one VM run."""

    value: Value
    output: List[Value] = field(default_factory=list)
    stats: ExecStats = field(default_factory=ExecStats)
    trigger: Optional[Trigger] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class VM:
    """A virtual machine instance (one per run; holds all mutable state).

    Args:
        program: verified program to execute.
        cost_model: cycle costs (default :class:`CostModel`).
        trigger: sample trigger polled by CHECK/GUARDED_INSTR
            (default :class:`NeverTrigger` — checks cost cycles but never
            fire).
        timer_period: simulated cycles between virtual timer interrupts
            (sets the threadswitch bit and notifies the trigger).
        fuel: maximum instructions to execute before raising
            :class:`FuelExhaustedError` (infinite-loop guard).
        max_stack_depth: frame-stack limit per thread.
        record_opcode_counts: collect per-opcode execution counts
            (slower; used by calibration tooling).
        engine: ``"fast"`` (closure-threaded, the default) or
            ``"reference"`` (this module's opcode ladder).  ``None``
            consults ``$REPRO_ENGINE`` and falls back to "fast".  Both
            engines produce bit-identical stats/cycles/output/profiles;
            see :mod:`repro.vm.engine` and docs/VM_PERF.md.
        recorder: telemetry recorder whose hooks fire at observer
            boundaries (see :mod:`repro.telemetry.recorder` and
            docs/OBSERVABILITY.md).  ``None`` (the default) compiles /
            dispatches with no telemetry branches at all; both engines
            emit identical event streams for the same program+trigger.
        profiler: a :class:`repro.profiling.OverheadProfiler` sampling
            the *host* interpreter at the same observer boundaries
            (docs/PROFILING.md).  ``None`` or a disabled profiler is a
            compile-time decision exactly like ``recorder=None``: the
            fast engine builds hook-free closures, so the disabled path
            costs nothing.  Profiling reads VM state but never writes
            it — ExecStats/events/profiles are bit-identical with or
            without a profiler attached.
    """

    def __init__(
        self,
        program: Program,
        cost_model: Optional[CostModel] = None,
        trigger: Optional[Trigger] = None,
        timer_period: int = 100_000,
        fuel: int = 500_000_000,
        max_stack_depth: int = 4000,
        record_opcode_counts: bool = False,
        engine: Optional[str] = None,
        recorder=None,
        profiler=None,
    ):
        # Dynamic programs mutate their own function table as they run
        # (LOADFN/REPLACEFN install functions); execute a private copy
        # so the caller's program — possibly cached or about to be
        # transformed — is left untouched. Static programs are shared:
        # running them never writes to them.
        self.program = program.copy() if program.is_dynamic() else program
        self.engine = resolve_engine(engine)
        self.cost_model = cost_model or CostModel()
        self.trigger = trigger or NeverTrigger()
        self.timer_period = timer_period
        self.fuel = fuel
        self.max_stack_depth = max_stack_depth
        self.recorder = recorder
        self.profiler = profiler
        self.stats = ExecStats(record_opcode_counts)
        self.output: List[Value] = []
        self.threads: List[GreenThread] = []
        self.current_thread: Optional[GreenThread] = None
        self._next_tid = 0
        self._threadswitch_bit = False
        self._alloc_count = 0
        self._op_tables: dict = {}
        self._osr_landings: dict = {}
        #: Optional observer called as ``(kind, name, template, fn)``
        #: after every effective LOADFN ("load") / REPLACEFN ("replace")
        #: — the incremental certifier's subscription point. Both
        #: engines notify through the shared :meth:`_dyn_load` /
        #: :meth:`_dyn_replace` helpers, so the event stream is
        #: engine-identical.
        self.on_code_event = None

    # -- public API ---------------------------------------------------------

    def run(self) -> VMResult:
        """Execute the program's entry function to completion.

        Spawned threads are run to completion as well (the scheduler
        round-robins at yieldpoints); the result is the entry thread's
        return value.
        """
        entry = self.program.entry_function()
        # The entry thread counts as one method entry (threads_spawned
        # feeds the Property-1 opportunity count).
        main_thread = self._spawn_thread(entry, [])
        prof = self.profiler
        if prof is not None and not prof.enabled:
            prof = None
        if prof is not None:
            # The profiled span opens before engine construction so
            # fast-engine compilation is inside it: every wall second of
            # run() is attributed to some component (docs/PROFILING.md).
            prof.start()
        try:
            if self.engine == "fast":
                run_one = FastEngine(self).run_thread
            elif self.engine == "compiled":
                from repro.vm.compiler import CompiledEngine

                run_one = CompiledEngine(self).run_thread
            else:
                run_one = self._run_thread
            rec = self.recorder
            index = 0
            while True:
                runnable = [t for t in self.threads if not t.done]
                if not runnable:
                    break
                index %= len(runnable)
                thread = runnable[index]
                switched = run_one(thread)
                if thread.done or not switched:
                    # Thread finished (or ran dry): move on without
                    # charging a switch.
                    index += 1
                else:
                    self.stats.thread_switches += 1
                    self.stats.cycles += self.cost_model.thread_switch_cost
                    if rec is not None:
                        # This scheduler loop is shared by both engines,
                        # so the event is engine-identical by
                        # construction.
                        rec.thread_switch(self.stats.cycles, thread.tid)
                    index += 1
        finally:
            if prof is not None:
                prof.stop()
        return VMResult(
            value=main_thread.result if main_thread.result is not None else 0,
            output=self.output,
            stats=self.stats,
            trigger=self.trigger,
        )

    # -- internals --------------------------------------------------------------

    def _spawn_thread(self, fn, args: List[Value]) -> GreenThread:
        thread = GreenThread(self._next_tid, fn, args)
        self._next_tid += 1
        self.threads.append(thread)
        self.stats.threads_spawned += 1
        return thread

    def _io_value(self, thread: GreenThread) -> int:
        thread.io_state = (thread.io_state * _LCG_A + _LCG_C) & _LCG_MASK
        return (thread.io_state >> 33) & 0xFFFF

    def _op_table(self, fn) -> List[int]:
        """Per-function opcode-int table, computed once per VM.

        Hoists the per-instruction ``int(ins.op)`` enum conversion out
        of the dispatch loop — the single hottest attribute lookup in
        the reference engine.
        """
        table = self._op_tables.get(fn)
        if table is None:
            table = [int(ins.op) for ins in fn.code]
            self._op_tables[fn] = table
        return table

    # -- dynamic code (shared by both engines) ------------------------------

    def _dyn_load(self, template_name) -> int:
        """Execute LOADFN: materialize the template (instrument-at-load
        via the program's loader). Returns 1 if newly installed, 0 if a
        repeat load (idempotent)."""
        fn, changed = self.program.define_at_runtime(template_name)
        if changed:
            self.stats.functions_loaded += 1
            if self.on_code_event is not None:
                self.on_code_event("load", fn.name, template_name, fn)
        return 1 if changed else 0

    def _dyn_replace(self, target, template_name) -> int:
        """Execute REPLACEFN: swap *target*'s body for the template.
        Returns 1 on an effective swap, 0 when the template was already
        installed. Live frames keep the retired Function object until
        they reach an OSR point."""
        fn, changed = self.program.define_at_runtime(
            template_name, target=target
        )
        if changed:
            self.stats.functions_replaced += 1
            if self.on_code_event is not None:
                self.on_code_event("replace", fn.name, template_name, fn)
        return 1 if changed else 0

    def _osr_landing(self, fn, osr_id) -> Optional[int]:
        """The pc just past the first OSRPOINT with id *osr_id* in *fn*
        (the checking copy: duplicated code is laid out last), or None.
        Cached per (function, id) — replacement creates new Function
        objects, so stale entries cannot be observed."""
        key = (fn, osr_id)
        if key in self._osr_landings:
            return self._osr_landings[key]
        landing = None
        for idx, ins in enumerate(fn.code):
            if ins.op is Op.OSRPOINT and ins.arg == osr_id:
                landing = idx + 1
                break
        self._osr_landings[key] = landing
        return landing

    def _run_thread(self, thread: GreenThread) -> bool:
        """Run *thread* until it finishes or yields to the scheduler.

        Returns True if the thread yielded (a switch should be charged),
        False if it finished.
        """
        self.current_thread = thread
        self.trigger.notify_thread(thread.tid)
        program_functions = self.program.functions
        classes = self.program.classes
        cost = self.cost_model.cost_table()
        io_base = self.cost_model.io_base_cost
        penalty = self.cost_model.sample_transfer_penalty
        gc_every = self.cost_model.gc_every_allocs
        gc_pause = self.cost_model.gc_pause_cycles
        trigger = self.trigger
        poll = trigger.poll
        notify_tick = trigger.notify_timer_tick
        stats = self.stats
        output = self.output
        rec = self.recorder
        # Self-profiling hooks are hoisted like the recorder's: one
        # predictable branch per instruction when disabled, classified
        # boundary reports when enabled (repro.profiling). Hooks only
        # *read* VM state, so stats/events stay bit-identical either
        # way. Boundary granularity is engine-specific by design — this
        # ladder reports every instruction, the fast engine one boundary
        # per fused segment — so profiler sample counts are comparable
        # only within one engine.
        prof = self.profiler
        if prof is not None and not prof.enabled:
            prof = None
        tid = thread.tid
        fuel = self.fuel
        max_depth = self.max_stack_depth
        timer_period = self.timer_period
        next_tick = (stats.cycles // timer_period + 1) * timer_period
        opcode_counts = stats.opcode_counts
        make_frame = Frame

        frames = thread.frames
        frame = frames[-1]
        code = frame.function.code
        optab = self._op_table(frame.function)
        pc = frame.pc
        stack = frame.stack
        locals_ = frame.locals

        cycles = stats.cycles
        executed = stats.instructions

        while True:
            if executed >= fuel:
                stats.cycles = cycles
                stats.instructions = executed
                raise FuelExhaustedError(
                    f"instruction budget of {fuel} exhausted in "
                    f"{frame.function.name}@{pc}"
                )
            ins = code[pc]
            op = optab[pc]
            executed += 1
            cycles += cost[op]
            if cycles >= next_tick:
                while cycles >= next_tick:
                    stats.timer_ticks += 1
                    if rec is not None:
                        # The boundary (k * timer_period), not the
                        # detection cycle: detection granularity differs
                        # between engines, the boundary does not.
                        rec.timer_tick(next_tick, stats.timer_ticks, tid)
                    next_tick += timer_period
                    notify_tick()
                self._threadswitch_bit = True
            if opcode_counts is not None:
                opcode_counts[op] = opcode_counts.get(op, 0) + 1
            if prof is not None and op not in _PROF_SPECIAL:
                prof.boundary(
                    "dispatch", frame.function.name, pc, op, frames, tid
                )
            pc += 1

            if op == _LOAD:
                stack.append(locals_[ins.arg])
            elif op == _PUSH:
                stack.append(ins.arg)
            elif op == _STORE:
                locals_[ins.arg] = stack.pop()
            elif op == _JUMP:
                target = ins.arg
                if target < pc:
                    stats.backward_jumps += 1
                pc = target
            elif op == _JZ:
                if stack.pop() == 0:
                    target = ins.arg
                    if target < pc:
                        stats.backward_jumps += 1
                    pc = target
            elif op == _JNZ:
                if stack.pop() != 0:
                    target = ins.arg
                    if target < pc:
                        stats.backward_jumps += 1
                    pc = target
            elif op == _ADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op == _SUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op == _LT:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] < b else 0
            elif op == _LE:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] <= b else 0
            elif op == _GT:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] > b else 0
            elif op == _GE:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] >= b else 0
            elif op == _EQ:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] == b else 0
            elif op == _NE:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] != b else 0
            elif op == _MUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op == _DIV:
                b = stack.pop()
                if b == 0:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        "division by zero", frame.function.name, pc - 1
                    )
                stack[-1] = stack[-1] // b
            elif op == _MOD:
                b = stack.pop()
                if b == 0:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap("modulo by zero", frame.function.name, pc - 1)
                stack[-1] = stack[-1] % b
            elif op == _AND:
                b = stack.pop()
                stack[-1] = stack[-1] & b
            elif op == _OR:
                b = stack.pop()
                stack[-1] = stack[-1] | b
            elif op == _XOR:
                b = stack.pop()
                stack[-1] = stack[-1] ^ b
            elif op == _SHL:
                b = stack.pop()
                stack[-1] = stack[-1] << (b & 63)
            elif op == _SHR:
                b = stack.pop()
                stack[-1] = stack[-1] >> (b & 63)
            elif op == _NEG:
                stack[-1] = -stack[-1]
            elif op == _NOT:
                stack[-1] = 1 if stack[-1] == 0 else 0
            elif op == _CHECK:
                stats.checks_executed += 1
                if poll():
                    stats.checks_taken += 1
                    cycles += penalty
                    if rec is not None:
                        rec.check(
                            cycles, tid, frame.function.name, pc - 1,
                            True, ins.arg, frames,
                        )
                    if prof is not None:
                        prof.check_boundary(
                            True, frame.function.name, pc - 1, frames, tid
                        )
                    pc = ins.arg
                else:
                    if rec is not None:
                        # Unfired checks are still observer boundaries:
                        # the recorder uses them to close
                        # duplicated-code spans.
                        rec.check(
                            cycles, tid, frame.function.name, pc - 1, False,
                            None, frames,
                        )
                    if prof is not None:
                        prof.check_boundary(
                            False, frame.function.name, pc - 1, frames, tid
                        )
            elif op == _YIELDPOINT:
                stats.yieldpoints_executed += 1
                if prof is not None:
                    prof.boundary(
                        "poll", frame.function.name, pc - 1, op, frames, tid
                    )
                if self._threadswitch_bit:
                    self._threadswitch_bit = False
                    if any(
                        t is not thread and not t.done for t in self.threads
                    ):
                        frame.pc = pc
                        stats.cycles = cycles
                        stats.instructions = executed
                        return True
            elif op == _INSTR:
                action = ins.arg
                cycles += action.cost
                stats.instr_ops_executed += 1
                if prof is not None:
                    prof.boundary(
                        "payload", frame.function.name, pc - 1, op,
                        frames, tid,
                    )
                frame.pc = pc
                action.execute(self, frame)
            elif op == _GUARDED_INSTR:
                stats.guarded_checks_executed += 1
                if poll():
                    stats.guarded_checks_taken += 1
                    action = ins.arg
                    cycles += action.cost
                    stats.instr_ops_executed += 1
                    if rec is not None:
                        rec.guarded_fired(
                            cycles, tid, frame.function.name, pc - 1, frames
                        )
                    if prof is not None:
                        prof.guarded_boundary(
                            True, frame.function.name, pc - 1, frames, tid
                        )
                    frame.pc = pc
                    action.execute(self, frame)
                elif prof is not None:
                    prof.guarded_boundary(
                        False, frame.function.name, pc - 1, frames, tid
                    )
            elif op == _CALL:
                callee = program_functions.get(ins.arg)
                if callee is None:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"call to unloaded function {ins.arg!r}",
                        frame.function.name,
                        pc - 1,
                    )
                stats.calls += 1
                if len(frames) >= max_depth:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise StackOverflowError(
                        f"call depth {len(frames)} in {callee.name}"
                    )
                nargs = callee.num_params
                if nargs:
                    args = stack[-nargs:]
                    del stack[-nargs:]
                else:
                    args = []
                frame.pc = pc
                frame = make_frame(callee, args)
                frames.append(frame)
                code = callee.code
                optab = self._op_table(callee)
                pc = 0
                stack = frame.stack
                locals_ = frame.locals
            elif op == _RETURN:
                stats.returns += 1
                result = stack.pop()
                frames.pop()
                if not frames:
                    thread.done = True
                    thread.result = result
                    stats.cycles = cycles
                    stats.instructions = executed
                    return False
                frame = frames[-1]
                code = frame.function.code
                optab = self._op_table(frame.function)
                pc = frame.pc
                stack = frame.stack
                locals_ = frame.locals
                stack.append(result)
            elif op == _GETFIELD:
                ref = stack[-1]
                if not isinstance(ref, RObject):
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"GETFIELD on non-object {ref!r}",
                        frame.function.name,
                        pc - 1,
                    )
                stack[-1] = ref.slots[ref.klass.slot_of(ins.arg[1])]
            elif op == _PUTFIELD:
                value = stack.pop()
                ref = stack.pop()
                if not isinstance(ref, RObject):
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"PUTFIELD on non-object {ref!r}",
                        frame.function.name,
                        pc - 1,
                    )
                ref.slots[ref.klass.slot_of(ins.arg[1])] = value
            elif op == _NEW:
                self._alloc_count += 1
                if self._alloc_count % gc_every == 0:
                    cycles += gc_pause
                    stats.gc_pauses += 1
                    if rec is not None:
                        rec.gc_pause(
                            cycles, tid, frame.function.name, pc - 1,
                            gc_pause, self._alloc_count, frames,
                        )
                stack.append(RObject(classes[ins.arg]))
            elif op == _NEWARRAY:
                length = stack.pop()
                if not isinstance(length, int) or length < 0:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"bad array length {length!r}",
                        frame.function.name,
                        pc - 1,
                    )
                self._alloc_count += 1
                if self._alloc_count % gc_every == 0:
                    cycles += gc_pause
                    stats.gc_pauses += 1
                    if rec is not None:
                        rec.gc_pause(
                            cycles, tid, frame.function.name, pc - 1,
                            gc_pause, self._alloc_count, frames,
                        )
                stack.append(RArray(length))
            elif op == _ALOAD:
                idx = stack.pop()
                ref = stack[-1]
                if not isinstance(ref, RArray):
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"ALOAD on non-array {ref!r}",
                        frame.function.name,
                        pc - 1,
                    )
                try:
                    stack[-1] = ref.slots[idx]
                except IndexError:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"array index {idx} out of range [0, {len(ref)})",
                        frame.function.name,
                        pc - 1,
                    ) from None
            elif op == _ASTORE:
                value = stack.pop()
                idx = stack.pop()
                ref = stack.pop()
                if not isinstance(ref, RArray):
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"ASTORE on non-array {ref!r}",
                        frame.function.name,
                        pc - 1,
                    )
                try:
                    ref.slots[idx] = value
                except IndexError:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"array index {idx} out of range [0, {len(ref)})",
                        frame.function.name,
                        pc - 1,
                    ) from None
            elif op == _ALEN:
                ref = stack[-1]
                if not isinstance(ref, RArray):
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"ALEN on non-array {ref!r}",
                        frame.function.name,
                        pc - 1,
                    )
                stack[-1] = len(ref)
            elif op == _DUP:
                stack.append(stack[-1])
            elif op == _POP:
                stack.pop()
            elif op == _SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == _PRINT:
                output.append(stack.pop())
            elif op == _IO:
                cycles += io_base * ins.arg
                stats.io_ops += 1
                stack.append(self._io_value(thread))
            elif op == _SPAWN:
                callee = program_functions.get(ins.arg)
                if callee is None:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"call to unloaded function {ins.arg!r}",
                        frame.function.name,
                        pc - 1,
                    )
                nargs = callee.num_params
                if nargs:
                    args = stack[-nargs:]
                    del stack[-nargs:]
                else:
                    args = []
                child = self._spawn_thread(callee, args)
                stack.append(child.tid)
            elif op == _NOP:
                pass
            elif op == _TRY:
                frame.handlers.append((ins.arg, len(stack)))
            elif op == _ENDTRY:
                if not frame.handlers:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        "ENDTRY without matching TRY",
                        frame.function.name,
                        pc - 1,
                    )
                frame.handlers.pop()
            elif op == _THROW:
                value = stack.pop()
                stats.throws += 1
                throw_fn = frame.function.name
                throw_pc = pc - 1
                caught = False
                while True:
                    if frame.handlers:
                        target, depth = frame.handlers.pop()
                        del stack[depth:]
                        stack.append(value)
                        pc = target
                        caught = True
                        break
                    frames.pop()
                    stats.frames_unwound += 1
                    if not frames:
                        break
                    frame = frames[-1]
                    code = frame.function.code
                    optab = self._op_table(frame.function)
                    pc = frame.pc
                    stack = frame.stack
                    locals_ = frame.locals
                if not caught:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"uncaught guest exception {value!r}",
                        throw_fn,
                        throw_pc,
                    )
            elif op == _LOADFN:
                try:
                    stack.append(self._dyn_load(ins.arg))
                except (BytecodeError, VerificationError) as exc:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"LOADFN failed: {exc}", frame.function.name, pc - 1
                    ) from None
            elif op == _REPLACEFN:
                try:
                    stack.append(self._dyn_replace(ins.arg[0], ins.arg[1]))
                except (BytecodeError, VerificationError) as exc:
                    stats.cycles = cycles
                    stats.instructions = executed
                    raise VMTrap(
                        f"REPLACEFN failed: {exc}",
                        frame.function.name,
                        pc - 1,
                    ) from None
            elif op == _OSRPOINT:
                current = program_functions.get(frame.function.name)
                if current is not None and current is not frame.function:
                    landing = self._osr_landing(current, ins.arg)
                    if landing is None:
                        stats.cycles = cycles
                        stats.instructions = executed
                        raise VMTrap(
                            f"no OSR point {ins.arg!r} in replacement of "
                            f"{frame.function.name}",
                            frame.function.name,
                            pc - 1,
                        )
                    stats.osr_remaps += 1
                    # Remap the live frame onto the new body: pad or
                    # truncate locals to the new shape, drop handler
                    # records (OSR points sit outside TRY regions by
                    # construction; the verifier keeps the stack empty
                    # here), and resume past the matching OSR point in
                    # the new code.
                    num_locals = current.num_locals
                    if len(locals_) < num_locals:
                        locals_.extend([0] * (num_locals - len(locals_)))
                    elif len(locals_) > num_locals:
                        del locals_[num_locals:]
                    frame.handlers.clear()
                    frame.function = current
                    code = current.code
                    optab = self._op_table(current)
                    pc = landing
            elif op == _HALT:
                thread.done = True
                thread.result = 0
                stats.cycles = cycles
                stats.instructions = executed
                return False
            else:
                stats.cycles = cycles
                stats.instructions = executed
                raise VMTrap(
                    f"unimplemented opcode {ins.op.name}",
                    frame.function.name,
                    pc - 1,
                )


def run_program(
    program: Program,
    cost_model: Optional[CostModel] = None,
    trigger: Optional[Trigger] = None,
    **kwargs,
) -> VMResult:
    """Convenience wrapper: build a VM and run it."""
    return VM(program, cost_model=cost_model, trigger=trigger, **kwargs).run()
