"""Execution statistics collected by the interpreter.

The harness reads these to compute overhead breakdowns (Table 2's
backedge/entry columns), to verify Property 1 dynamically, and to report
sample counts (Table 4's "Num Samples" column).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bytecode.opcodes import Op


#: Every scalar counter, in declaration order. The single source of
#: truth for :meth:`ExecStats.as_dict` / :meth:`ExecStats.merge` /
#: :meth:`ExecStats.from_dict` — add a field here (and to ``__slots__``
#: and ``__init__``) and every serializer/aggregator picks it up.
_SCALAR_FIELDS = (
    "instructions",
    "cycles",
    "calls",
    "returns",
    "backward_jumps",
    "checks_executed",
    "checks_taken",
    "guarded_checks_executed",
    "guarded_checks_taken",
    "instr_ops_executed",
    "yieldpoints_executed",
    "thread_switches",
    "threads_spawned",
    "io_ops",
    "gc_pauses",
    "timer_ticks",
    "functions_loaded",
    "functions_replaced",
    "osr_remaps",
    "throws",
    "frames_unwound",
)


class ExecStats:
    """Counters for one VM run. All values are exact and deterministic."""

    SCALAR_FIELDS = _SCALAR_FIELDS

    __slots__ = (
        "instructions",
        "cycles",
        "calls",
        "returns",
        "backward_jumps",
        "checks_executed",
        "checks_taken",
        "guarded_checks_executed",
        "guarded_checks_taken",
        "instr_ops_executed",
        "yieldpoints_executed",
        "thread_switches",
        "threads_spawned",
        "io_ops",
        "gc_pauses",
        "timer_ticks",
        "functions_loaded",
        "functions_replaced",
        "osr_remaps",
        "throws",
        "frames_unwound",
        "opcode_counts",
    )

    def __init__(self, record_opcode_counts: bool = False):
        self.instructions = 0
        self.cycles = 0
        self.calls = 0
        self.returns = 0
        self.backward_jumps = 0
        self.checks_executed = 0
        self.checks_taken = 0
        self.guarded_checks_executed = 0
        self.guarded_checks_taken = 0
        self.instr_ops_executed = 0
        self.yieldpoints_executed = 0
        self.thread_switches = 0
        self.threads_spawned = 0
        self.io_ops = 0
        self.gc_pauses = 0
        self.timer_ticks = 0
        self.functions_loaded = 0
        self.functions_replaced = 0
        self.osr_remaps = 0
        self.throws = 0
        self.frames_unwound = 0
        self.opcode_counts: Optional[Dict[int, int]] = (
            {} if record_opcode_counts else None
        )

    # -- derived quantities -------------------------------------------------

    @property
    def samples_taken(self) -> int:
        """Samples that transferred into duplicated code plus guarded
        instrumentation firings (the paper's 'Num Samples')."""
        return self.checks_taken + self.guarded_checks_taken

    @property
    def check_opportunities(self) -> int:
        """Method entries + backedge executions: the Property-1 bound on
        how many checks a conforming transform may execute.

        Thread entry functions count as entered once each. Taken checks
        are added back because a fired backedge check *replaces* the
        backward jump it sampled (control jumps forward into duplicated
        code instead), so the raw backward-jump counter undercounts the
        original program's backedge traversals by exactly the number of
        taken checks. This same-run bound therefore matches the paper's
        definition, which is stated over the uninstrumented execution;
        :func:`repro.sampling.properties.property1_vs_baseline` gives
        the cross-run variant with no adjustment.
        """
        return (
            self.calls
            + self.threads_spawned
            + self.backward_jumps
            + self.checks_taken
        )

    def property1_holds(self) -> bool:
        """Dynamic Property 1: checks executed <= entries + backedges."""
        return self.checks_executed <= self.check_opportunities

    def opcode_count(self, op: Op) -> int:
        if self.opcode_counts is None:
            raise ValueError(
                "opcode counts were not recorded; construct the VM with "
                "record_opcode_counts=True"
            )
        return self.opcode_counts.get(int(op), 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _SCALAR_FIELDS}

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "ExecStats":
        """Rebuild stats from :meth:`as_dict` output (used by the
        persistent baseline cache and the parallel harness)."""
        stats = cls()
        for name in _SCALAR_FIELDS:
            # Missing keys default to 0 so payloads serialized before a
            # counter existed (persistent baseline caches, old ledgers)
            # still deserialize.
            value = payload.get(name, 0)
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(f"stat {name!r} must be an int")
            setattr(stats, name, value)
        return stats

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Accumulate *other* into self (all scalar counters add;
        opcode counts add per opcode when both sides recorded them).
        Returns self, so worker results fold with ``reduce``."""
        for name in _SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if self.opcode_counts is not None and other.opcode_counts is not None:
            for op, n in other.opcode_counts.items():
                self.opcode_counts[op] = self.opcode_counts.get(op, 0) + n
        return self

    def __repr__(self) -> str:
        return (
            f"<ExecStats instrs={self.instructions} cycles={self.cycles} "
            f"checks={self.checks_executed} samples={self.samples_taken}>"
        )
