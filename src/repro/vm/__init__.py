"""The virtual machine: engines, cost model, values, threads, stats."""

from repro.vm.compiler import CompiledEngine
from repro.vm.cost_model import CostModel, powerpc_ctr_model
from repro.vm.engine import ENGINE_ENV, ENGINES, FastEngine, resolve_engine
from repro.vm.frame import Frame, GreenThread
from repro.vm.interpreter import VM, VMResult, run_program
from repro.vm.tracing import ExecStats
from repro.vm.values import RArray, RObject, Value, is_reference, truthy

__all__ = [
    "VM",
    "VMResult",
    "run_program",
    "FastEngine",
    "CompiledEngine",
    "resolve_engine",
    "ENGINE_ENV",
    "ENGINES",
    "CostModel",
    "powerpc_ctr_model",
    "ExecStats",
    "Frame",
    "GreenThread",
    "RObject",
    "RArray",
    "Value",
    "is_reference",
    "truthy",
]
