"""Compiled-tier engine: whole-function transpilation to Python source.

The third (and fastest) execution tier.  Where the fast engine
(:mod:`repro.vm.engine`) compiles each *segment* into one closure or
generated superinstruction and dispatches through a handler list, this
tier lowers an entire verified :class:`Function` into ONE generated
Python function — a *region* — and dispatches between its extended
basic blocks with a plain integer label and a balanced comparison tree,
never returning to the driver loop for in-region control flow:

* **Guest locals become real Python locals.**  ``LOAD 3`` compiles to a
  mention of the Python local ``l3``; ``STORE 3`` to ``l3 = <expr>``.
  The frame's ``locals`` list is written back only at *environment
  barriers* — points where the rest of the VM can observe the frame:
  instrumentation actions, calls, yields, throws, OSR remaps, dynamic
  code loads, and trap raises.

* **The operand stack is flattened into SSA-style temporaries.**  The
  verifier (:func:`repro.bytecode.verifier.verify_function`) proves a
  single consistent stack depth for every reachable pc, so each block
  entry binds the stack to position-named Python locals ``s0..s{d-1}``
  and straight-line code simulates pushes and pops at compile time,
  exactly like the fast engine's superinstructions — but across whole
  blocks, branches included.  The frame's real ``stack`` list is empty
  while the region runs and is refilled at the same environment
  barriers.

* **Eligible leaf callees are outlined framelessly.**  A static CALL
  whose callee is a *leaf* — an entry YIELDPOINT followed only by
  frameless-safe ops (no calls, no instrumentation, no dynamic code,
  no TRY) — compiles to a direct invocation of a generated helper
  ``_lf(cycles, instrs, next_tick, args...)`` that runs the whole
  callee without materializing a guest frame.  The call site performs
  the callee's entry-segment accounting (opcode counts, fuel check,
  charge, tick check, yieldpoint bump) itself; only when the hoisted
  thread-switch test actually fires does it build the two real frames
  and suspend through the driver.  Leaves are disabled under a live
  profiler (samples walk ``vm.frames``) and in dynamic mode (REPLACEFN
  could swap the callee between executions of the site).

* **The observable contract is unchanged.**  Segment boundaries (and
  therefore cycle accounting, virtual-timer tick placement, fuel
  checks, trigger polls, GC-pause attribution and thread switches) are
  computed by the *same* ``FastEngine._segments`` split; telemetry
  events carry the same cycles and pcs; ``OverheadProfiler`` boundaries
  fire at the same observer ops (plain segment heads attribute to the
  ``compiled`` component instead of ``dispatch``); TRY/ENDTRY/THROW
  unwinding shares the frame handler-record representation, and
  LOADFN/REPLACEFN/OSRPOINT retirement works exactly as in the fast
  engine because compiled code is keyed per Function object —
  replacement simply compiles the new Function fresh.

**Fallback.**  Any function the lowerer cannot prove equivalent — an
op outside the lowerable set, unreachable branch targets (no verified
stack depth), an unresolvable dynamic callee arity, oversized code, or
pathological duplication blowup — raises :class:`_Bailout` and the
function is compiled by the inherited fast-engine path instead.  The
two tiers interoperate freely within one run: frames carry resume
slots, and ``_heads`` translates original pcs for THROW and OSR in both
directions.  Fallback counts are recorded in
:attr:`CompiledEngine.compile_counts` and in the telemetry metrics
registry (``vm.compiled.*``).

The documented divergences are the fast engine's: on a VMTrap or fuel
exhaustion, ``stats.cycles``/``instructions`` may overshoot the
reference by up to one segment.  Everything else — ExecStats, output,
events, profiles — is bit-identical, enforced by the 3-way differential
suites.  Regions containing instrumentation actions that *push or pop*
the operand stack are outside the proven contract (in-repo actions only
read ``frame.stack`` and read/write ``frame.locals``, both of which are
spilled and reloaded around every action).

Engine selection: ``VM(engine="compiled")``, ``--engine compiled`` on
the CLI, or ``REPRO_ENGINE=compiled``.  See docs/VM_PERF.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bytecode.function import Function
from repro.bytecode.verifier import verify_function
from repro.errors import (
    BytecodeError,
    FuelExhaustedError,
    StackOverflowError,
    VerificationError,
    VMTrap,
)
from repro.vm.engine import (
    FastEngine,
    _VEntry,
    _ARITH_SYM,
    _CMP_SYM,
    _CMP_NSYM,
    _BRANCHES,
    _REBIND,
    _DONE,
    _YIELD,
    _PUSH, _POP, _DUP, _SWAP, _LOAD, _STORE,
    _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SHL, _SHR,
    _NEG, _NOT, _LT, _LE, _GT, _GE, _EQ, _NE,
    _JUMP, _JZ, _JNZ, _CALL, _RETURN, _HALT,
    _NEW, _GETFIELD, _PUTFIELD, _NEWARRAY, _ALOAD, _ASTORE, _ALEN,
    _PRINT, _IO, _SPAWN, _NOP, _YIELDPOINT, _CHECK, _INSTR,
    _GUARDED_INSTR, _LOADFN, _REPLACEFN, _OSRPOINT, _TRY, _ENDTRY,
    _THROW,
)
from repro.vm.frame import Frame
from repro.vm.values import RArray, RObject

#: Functions longer than this fall back (compile time, not correctness).
_MAX_CODE_LEN = 4000

#: Total lowered-instruction budget, as a multiple of the code length.
#: Entry arms duplicate block tails (a resume point mid-block lowers
#: the remainder inline), which is linear for real code; pathological
#: chains of resume points could go quadratic, so we bail instead.
_EXPANSION_FACTOR = 3

#: Dispatch-tree leaves hold at most this many linear arms.
_LEAF_ARMS = 4

#: Guest-frame depth up to which a static CALL between two compiled
#: regions invokes the callee's region directly on the Python stack
#: instead of bouncing through the driver loop.  Each nested guest
#: call holds one Python frame, so this must sit far below the
#: interpreter recursion limit (default 1000) with room for the test
#: harness; past the cap (or into fast-tier fallback code) the call
#: takes the sentinel path and the driver rebinds as before.
_DIRECT_DEPTH = 150

#: source text -> compiled code object.  Process-wide, like the fast
#: engine's segment cache: sources embed only deterministic literals
#: (pcs, costs, names), so every VM over the same program hits it.
_REGION_CODE_CACHE: Dict[str, object] = {}

#: lowering key -> (src, extras_spec, entry_sorted), or None for a
#: remembered bailout.  The key captures everything source generation
#: reads: the function's name and code shape, per-call-site arities,
#: and the engine's codegen flags (see ``CompiledEngine._lower_key``).
#: Function objects can't anchor the cache directly (``__slots__``
#: without ``__weakref__``), and keying by content is strictly better
#: anyway: REPLACEFN bodies that oscillate between the same templates
#: re-lower for free, and every VM over the same program shares one
#: lowering.  Extras are stored as *specs* — ``("callee", pc)``,
#: ``("arg", pc)``, ``("class", name)``, ``("cell",)``, ``("self",)``
#: — and rebound to live objects per engine by ``_bind_extras``.
_LOWER_CACHE: Dict[tuple, Optional[Tuple[str, Dict[str, tuple], List[int]]]] = {}

#: Every op the lowerer can express.  This is the full current ISA; the
#: set exists so future opcodes degrade to fast-engine fallback instead
#: of miscompiling.
_LOWERABLE = frozenset(
    {
        _PUSH, _POP, _DUP, _SWAP, _LOAD, _STORE,
        _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SHL, _SHR,
        _NEG, _NOT, _LT, _LE, _GT, _GE, _EQ, _NE,
        _JUMP, _JZ, _JNZ, _CALL, _RETURN, _HALT,
        _NEW, _GETFIELD, _PUTFIELD, _NEWARRAY, _ALOAD, _ASTORE, _ALEN,
        _PRINT, _IO, _SPAWN, _NOP, _YIELDPOINT, _CHECK, _INSTR,
        _GUARDED_INSTR, _LOADFN, _REPLACEFN, _OSRPOINT, _TRY, _ENDTRY,
        _THROW,
    }
)

#: Ops a *leaf-outlined* callee may contain (past its entry
#: YIELDPOINT).  Everything here runs without a guest frame: locals are
#: Python parameters, traps raise directly with the callee's name, and
#: ticks/fuel/GC/IO touch only the engine and stats — never
#: ``frames``.  Excluded on purpose: calls and spawns (need frames),
#: instrumentation and checks (observe frames / poll), TRY/THROW
#: (handler records live on frames), dynamic-code and OSR ops, HALT,
#: and any mid-body YIELDPOINT (a fired switch must suspend a real
#: frame).
_LEAF_SAFE = frozenset(
    {
        _PUSH, _POP, _DUP, _SWAP, _LOAD, _STORE,
        _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SHL, _SHR,
        _NEG, _NOT, _LT, _LE, _GT, _GE, _EQ, _NE,
        _JUMP, _JZ, _JNZ, _RETURN,
        _NEW, _GETFIELD, _PUTFIELD, _NEWARRAY, _ALOAD, _ASTORE, _ALEN,
        _PRINT, _IO, _NOP,
    }
)

#: leaf lowering key -> (src, extras_spec), or None for a remembered
#: bailout.  Same contract as ``_LOWER_CACHE``: the key (see
#: ``CompiledEngine._leaf_key``) covers everything leaf codegen reads.
_LEAF_CACHE: Dict[tuple, Optional[Tuple[str, Dict[str, tuple]]]] = {}

_I4 = "    "


class _Bailout(Exception):
    """Raised by the lowerer when a function cannot be proven
    equivalent under region compilation; the engine falls back to the
    fast tier for that function."""


class _Lowerer:
    """Lowers one verified function to region source.

    Produces ``(src, extras_spec, entry_sorted)`` where ``src`` defines
    ``_r(stack, locals_, _L=0)`` plus one ``_e<slot>`` thunk per
    non-zero entry slot, ``extras_spec`` maps per-site global names
    (callees, classes, actions, inline-cache cells) to rebindable
    specs (see ``CompiledEngine._bind_extras``), and ``entry_sorted``
    lists entry pcs in slot order (pc 0 first).  The whole triple is
    deterministic in the lowering key, which is what makes
    ``_LOWER_CACHE`` sound.
    """

    def __init__(self, eng: "CompiledEngine", fn: Function):
        self.eng = eng
        self.vm = eng.vm
        self.fn = fn
        self.fn_name = fn.name
        self.code = fn.code
        self.ops = [int(ins.op) for ins in fn.code]
        self.extras: Dict[str, tuple] = {}
        self._budget = 0
        #: True in _LeafLowerer: frameless codegen (no writeback/spill,
        #: RETURN yields the (value, mirrors...) tuple, traps raise
        #: directly).
        self.leaf_mode = False

    # -- analysis -----------------------------------------------------------

    def _analyze(self) -> None:
        vm = self.vm
        code = self.code
        ops = self.ops
        n = len(code)
        if n == 0 or n > _MAX_CODE_LEN:
            raise _Bailout(f"{self.fn_name}: code length {n}")
        for op in ops:
            if op not in _LOWERABLE:
                raise _Bailout(f"{self.fn_name}: op {op} not lowerable")
        try:
            self.depth_at = verify_function(self.fn, vm.program)
        except (VerificationError, BytecodeError) as exc:
            raise _Bailout(f"{self.fn_name}: {exc}") from None

        # Static arity for CALL/SPAWN.  Safe even in dynamic mode:
        # Program.define_at_runtime rejects replacements that change
        # num_params, and loadable templates carry their arity.
        self.arity: Dict[int, int] = {}
        self.callees: Dict[int, Function] = {}
        dynamic = self.eng._dynamic
        for p, (ins, op) in enumerate(zip(code, ops)):
            if op == _CALL or op == _SPAWN:
                try:
                    callee = vm.program.resolve_callable(ins.arg)
                except Exception as exc:
                    raise _Bailout(
                        f"{self.fn_name}: callee {ins.arg!r}: {exc}"
                    ) from None
                self.arity[p] = callee.num_params
                if not dynamic:
                    self.callees[p] = vm.program.functions[ins.arg]

        # Segment split — same boundaries as the fast engine, so the
        # accounting (fuel, ticks, cycle placement) is shared verbatim.
        cost = vm.cost_model.cost_table()
        segments = self.eng._segments(code, ops)
        self.seg_info: Dict[int, Tuple[int, int]] = {}
        self.seg_end: Dict[int, int] = {}
        for (s, e) in segments:
            self.seg_info[s] = (e - s, sum(cost[ops[p]] for p in range(s, e)))
            self.seg_end[s] = e

        # Arm pcs: block pcs are in-region branch targets; entry pcs
        # are reachable from outside the region (driver resume slots).
        self.block_pcs = set()
        for ins, op in zip(code, ops):
            if op in _BRANCHES:
                self.block_pcs.add(ins.arg)
        self.entry_pcs = {0}
        for p, op in enumerate(ops):
            if op in (_CALL, _YIELDPOINT, _OSRPOINT):
                if p + 1 >= n:
                    raise _Bailout(f"{self.fn_name}: fallthrough off end")
                self.entry_pcs.add(p + 1)
            elif op == _TRY:
                self.entry_pcs.add(code[p].arg)
        for pc in self.block_pcs | self.entry_pcs:
            if pc not in self.depth_at:
                raise _Bailout(f"{self.fn_name}: unreachable arm pc {pc}")

        # Guest-local usage: l-vars exist for every slot touched by
        # LOAD/STORE; STOREd slots are the write-back set.
        used = set()
        written = set()
        for ins, op in zip(code, ops):
            if op == _LOAD:
                used.add(ins.arg)
            elif op == _STORE:
                used.add(ins.arg)
                written.add(ins.arg)
        self.used_sorted = sorted(used)
        self.written_sorted = sorted(written)

        # Label assignment, in pc order.  An entry+block pc gets an
        # entry arm (reload) chaining to a canonical arm; an entry-only
        # pc merges both; a block-only pc gets a canonical arm.
        self.labels: Dict[Tuple[str, int], int] = {}
        self.order: List[Tuple[str, int]] = []
        for pc in sorted(self.block_pcs | self.entry_pcs):
            if pc in self.entry_pcs:
                self.labels[("e", pc)] = len(self.order)
                self.order.append(("e", pc))
            if pc in self.block_pcs:
                self.labels[("c", pc)] = len(self.order)
                self.order.append(("c", pc))

        self.entry_sorted = sorted(self.entry_pcs)
        self.slot_of = {pc: i for i, pc in enumerate(self.entry_sorted)}

        # Compile-time observability decisions, like the fast engine.
        self.rec = vm.recorder
        # Context-tracking recorders need the live frame list at every
        # event site, so lowering emits a trailing `_fs` argument; the
        # default emission stays byte-identical (and cache-shared) when
        # tracking is off.
        self.ctx_on = self.rec is not None and getattr(
            self.rec, "wants_context", False
        )
        prof = vm.profiler
        self.prof_on = prof is not None and prof.enabled
        self.oc_on = vm.stats.opcode_counts is not None
        self.penalty = vm.cost_model.sample_transfer_penalty
        self.gc_every = vm.cost_model.gc_every_allocs
        self.gc_pause = vm.cost_model.gc_pause_cycles
        self.io_base = vm.cost_model.io_base_cost
        self.max_depth = vm.max_stack_depth
        self.fuel = vm.fuel

        # Leaf-outlined call sites: static CALLs to a frameless-safe
        # callee compile to a direct invocation of an outlined helper
        # (see _LeafLowerer), skipping frame construction, spill and
        # reload entirely on the hot path.  Disabled under the profiler
        # (its boundaries sample the frame list) and in dynamic mode
        # (REPLACEFN could swap the callee body out from under the
        # caller's inlined assumptions); both flags are in the lowering
        # key, so each configuration gets its own proven codegen.
        # Context-tracking recorders also disable leaves: a frameless
        # callee is absent from `_eng.frames`, so a gc_pause fired
        # inside one would record the wrong calling context (and `_fs`
        # is not even bound in the leaf namespace).
        self.leafs: Dict[int, Function] = {}
        if not dynamic and not self.prof_on and not self.ctx_on:
            eng = self.eng
            for p, callee in self.callees.items():
                if (
                    ops[p] == _CALL
                    and eng._leaf_eligible(callee)
                    and eng._leaf_lowering(callee) is not None
                ):
                    self.leafs[p] = callee

    # -- small emission helpers ---------------------------------------------

    def _sync(self, ind: str) -> List[str]:
        return [ind + "_stats.cycles = _cy", ind + "_stats.instructions = _ni"]

    def _writeback(self, ind: str) -> List[str]:
        w = self.written_sorted
        if not w:
            return []
        if len(w) == 1:
            return [ind + f"locals_[{w[0]}] = l{w[0]}"]
        lhs = ", ".join(f"locals_[{k}]" for k in w)
        rhs = ", ".join(f"l{k}" for k in w)
        return [ind + f"{lhs} = {rhs}"]

    def _spill(self, ind: str, vstack: List[_VEntry]) -> List[str]:
        if not vstack:
            return []
        if len(vstack) == 1:
            return [ind + f"stack.append({vstack[0].expr})"]
        exprs = ", ".join(ent.expr for ent in vstack)
        return [ind + f"stack += ({exprs})"]

    def _reload(self, ind: str, depth: int) -> List[str]:
        out: List[str] = []
        u = self.used_sorted
        if u:
            lhs = ", ".join(f"l{k}" for k in u)
            if len(u) == 1:
                lhs += ","
            if u == list(range(self.fn.num_locals)):
                # The frame's locals list always holds exactly
                # num_locals values, so a straight unpack is safe (and
                # one C-level operation instead of N subscripts).
                out.append(ind + f"{lhs} = locals_")
            elif len(u) == 1:
                out.append(ind + f"l{u[0]} = locals_[{u[0]}]")
            else:
                rhs = ", ".join(f"locals_[{k}]" for k in u)
                out.append(ind + f"{lhs} = {rhs}")
        if depth:
            # At every reload point the real stack holds exactly
            # *depth* values (the verifier's depth, maintained by the
            # spill discipline), so unpack rather than index.
            lhs = ", ".join(f"s{i}" for i in range(depth))
            if depth == 1:
                lhs += ","
            out.append(ind + f"{lhs} = stack")
        out.append(ind + "del stack[:]")
        return out

    def _mat(self, ind: str, vstack: List[_VEntry]) -> List[str]:
        """Materialize the compile-time stack into canonical s-vars.

        Parallel (tuple) assignment, because entries may permute the
        canonical names (SWAP leaves ``[s1, s0]``)."""
        pairs = [
            (f"s{i}", ent.expr)
            for i, ent in enumerate(vstack)
            if ent.expr != f"s{i}"
        ]
        if not pairs:
            return []
        if len(pairs) == 1:
            return [ind + f"{pairs[0][0]} = {pairs[0][1]}"]
        lhs = ", ".join(p[0] for p in pairs)
        rhs = ", ".join(p[1] for p in pairs)
        return [ind + f"{lhs} = {rhs}"]

    def _head(self, ind: str, s: int) -> List[str]:
        """The per-segment observer/accounting block, in the fast
        engine's wrapper order: profiler boundary (outermost), opcode
        counts, then fuel check / charge / tick check."""
        out: List[str] = []
        ops = self.ops
        op0 = ops[s]
        if self.prof_on and op0 != _CHECK and op0 != _GUARDED_INSTR:
            if op0 == _INSTR:
                comp = "payload"
            elif op0 == _YIELDPOINT:
                comp = "poll"
            else:
                comp = "compiled"
            out.append(
                ind + f"_pb({comp!r}, {self.fn_name!r}, {s}, {op0},"
                " _fs, _eng.thread.tid)"
            )
        if self.oc_on:
            counts: Dict[int, int] = {}
            for p in range(s, self.seg_end[s]):
                counts[ops[p]] = counts.get(ops[p], 0) + 1
            for o, k in sorted(counts.items()):
                out.append(ind + f"_oc[{o}] = _oc.get({o}, 0) + {k}")
        SL, SC = self.seg_info[s]
        out.append(ind + f"if _ni >= {self.fuel}:")
        out += self._sync(ind + _I4)
        out += self._writeback(ind + _I4)
        out.append(ind + _I4 + f"_eng._fuel_trap({s})")
        out.append(ind + f"_ni += {SL}")
        if SC:
            out.append(ind + f"_cy += {SC}")
        # The tick check runs even for zero-cost segments: penalties,
        # action costs, GC pauses and IO charges accrued since the last
        # head must surface a tick here, exactly as in the fast engine.
        out.append(ind + "if _cy >= _nt:")
        out.append(ind + _I4 + "_stats.cycles = _cy")
        out.append(ind + _I4 + "_stats.instructions = _ni")
        out.append(ind + _I4 + "_eng._ticks()")
        out.append(ind + _I4 + "_nt = _eng.next_tick")
        return out

    def _raise_lines(
        self, ind: str, vstack: List[_VEntry], raise_line: str
    ) -> List[str]:
        """Sync mirrors, restore the frame (locals and spilled stack),
        then raise — post-mortem state matches the other engines."""
        out = self._sync(ind)
        out += self._writeback(ind)
        out += self._spill(ind, vstack)
        out.append(ind + raise_line)
        return out

    # -- the walk -----------------------------------------------------------

    def _walk(self, start: int, out: List[str], ind: str) -> None:
        """Lower straight-line flow from *start* until control leaves
        the arm: a transfer to a block arm, a region exit, or a raise.
        Forward-only; breaker singletons are crossed inline (their
        segment head block is emitted mid-walk)."""
        fn_name = self.fn_name
        code = self.code
        ops = self.ops
        depth_at = self.depth_at
        labels = self.labels
        rec_on = self.rec is not None
        prof_on = self.prof_on
        # Trailing `_fs` argument on recorder hooks, only under a
        # context-tracking recorder (see _analyze).
        ctx_arg = ", _fs" if self.ctx_on else ""

        d = depth_at[start]
        vstack: List[_VEntry] = [
            _VEntry(f"s{i}", atom=True) for i in range(d)
        ]
        ntmp = 0

        def E(line: str) -> None:
            out.append(ind + line)

        def newtmp() -> str:
            nonlocal ntmp
            t = f"t{ntmp}"
            ntmp += 1
            return t

        def vpop() -> _VEntry:
            if not vstack:
                # In-region the real stack is empty; an underflow here
                # is a lowerer bug, never a program property (the
                # verifier proved depths).
                raise _Bailout(f"{fn_name}: vstack underflow")
            return vstack.pop()

        def atomize(ent: _VEntry) -> _VEntry:
            if ent.atom:
                return ent
            t = newtmp()
            E(f"{t} = {ent.expr}")
            return _VEntry(t, atom=True)

        def invalidate(slot: int) -> None:
            for i, ent in enumerate(vstack):
                if slot in ent.slots:
                    t = newtmp()
                    E(f"{t} = {ent.expr}")
                    vstack[i] = _VEntry(t, atom=True)

        def transfer(target: int, pre: List[str], tind: str) -> None:
            """Emit a conditional-path transfer body at indent *tind*:
            materialize to canonical, run *pre* extra lines, jump."""
            if len(vstack) != depth_at[target]:
                raise _Bailout(f"{fn_name}: depth mismatch at {target}")
            out.extend(self._mat(tind, vstack))
            out.extend(pre)
            out.append(tind + f"_L = {labels[('c', target)]}")
            out.append(tind + "continue")

        def barrier_pre() -> None:
            """Environment barrier entry: locals written back, stack
            spilled canonically, mirrors synced."""
            out.extend(self._mat(ind, vstack))
            vstack[:] = [
                _VEntry(f"s{i}", atom=True) for i in range(len(vstack))
            ]
            out.extend(self._writeback(ind))
            out.extend(self._spill(ind, vstack))
            out.extend(self._sync(ind))

        def barrier_post(bind: str) -> None:
            """Environment barrier exit at indent *bind*: reload
            l-vars and s-vars (the barrier may have mutated either)."""
            out.extend(self._reload(bind, len(vstack)))

        p = start
        first = True
        while True:
            if not first and p in self.block_pcs:
                transfer(p, [], ind)
                return
            first = False
            if p >= len(code):
                raise _Bailout(f"{fn_name}: walked off code end")
            if p in self.seg_info:
                out.extend(self._head(ind, p))
            self._budget += 1
            if self._budget > _EXPANSION_FACTOR * len(code) + 64:
                raise _Bailout(f"{fn_name}: expansion budget exceeded")

            ins = code[p]
            op = ops[p]
            arg = ins.arg

            # ---- plain straight-line ops (fast-engine spellings) ----
            if op == _LOAD:
                vstack.append(
                    _VEntry(f"l{arg}", frozenset((arg,)), atom=True)
                )
            elif op == _PUSH:
                vstack.append(_VEntry(f"({arg!r})", atom=True))
            elif op == _STORE:
                ent = vpop()
                invalidate(arg)
                E(f"l{arg} = {ent.expr}")
            elif op in _ARITH_SYM:
                b = vpop()
                a = vpop()
                vstack.append(
                    _VEntry(
                        f"({a.expr} {_ARITH_SYM[op]} {b.expr})",
                        a.slots | b.slots,
                    )
                )
            elif op in _CMP_SYM:
                b = vpop()
                a = vpop()
                vstack.append(
                    _VEntry(
                        f"(1 if {a.expr} {_CMP_SYM[op]} {b.expr} else 0)",
                        a.slots | b.slots,
                        cmp=(op, a.expr, b.expr),
                    )
                )
            elif op == _SHL or op == _SHR:
                b = vpop()
                a = vpop()
                sym = "<<" if op == _SHL else ">>"
                vstack.append(
                    _VEntry(
                        f"({a.expr} {sym} ({b.expr} & 63))",
                        a.slots | b.slots,
                    )
                )
            elif op == _DIV or op == _MOD:
                b = atomize(vpop())
                msg = "division by zero" if op == _DIV else "modulo by zero"
                E(f"if {b.expr} == 0:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap({msg!r}, {fn_name!r}, {p})",
                    )
                )
                a = vpop()
                sym = "//" if op == _DIV else "%"
                vstack.append(
                    _VEntry(f"({a.expr} {sym} {b.expr})", a.slots | b.slots)
                )
            elif op == _NEG:
                a = vpop()
                vstack.append(_VEntry(f"(-{a.expr})", a.slots))
            elif op == _NOT:
                a = vpop()
                vstack.append(_VEntry(f"(1 if {a.expr} == 0 else 0)", a.slots))
            elif op == _DUP:
                ent = atomize(vpop())
                vstack.append(ent)
                vstack.append(_VEntry(ent.expr, ent.slots, atom=True))
            elif op == _POP:
                vpop()
            elif op == _SWAP:
                x1 = vpop()
                x2 = vpop()
                vstack.append(x1)
                vstack.append(x2)
            elif op == _NOP:
                pass
            elif op == _GETFIELD:
                cell = f"_c{p}"
                self.extras[cell] = ("cell",)
                r = atomize(vpop())
                t = newtmp()
                E(f"if {r.expr}.__class__ is _RObject:")
                E(f"    _k = {r.expr}.klass")
                E(f"    if _k is {cell}[0]:")
                E(f"        {t} = {r.expr}.slots[{cell}[1]]")
                E("    else:")
                E(f"        _sl = _k.slot_of({arg[1]!r})")
                E(f"        {cell}[0] = _k")
                E(f"        {cell}[1] = _sl")
                E(f"        {t} = {r.expr}.slots[_sl]")
                E("else:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('GETFIELD on non-object %r'"
                        f" % ({r.expr},), {fn_name!r}, {p})",
                    )
                )
                vstack.append(_VEntry(t, atom=True))
            elif op == _PUTFIELD:
                cell = f"_c{p}"
                self.extras[cell] = ("cell",)
                v = vpop()
                r = atomize(vpop())
                E(f"if {r.expr}.__class__ is _RObject:")
                E(f"    _k = {r.expr}.klass")
                E(f"    if _k is {cell}[0]:")
                E(f"        {r.expr}.slots[{cell}[1]] = {v.expr}")
                E("    else:")
                E(f"        _sl = _k.slot_of({arg[1]!r})")
                E(f"        {cell}[0] = _k")
                E(f"        {cell}[1] = _sl")
                E(f"        {r.expr}.slots[_sl] = {v.expr}")
                E("else:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('PUTFIELD on non-object %r'"
                        f" % ({r.expr},), {fn_name!r}, {p})",
                    )
                )
            elif op == _ALOAD:
                i = atomize(vpop())
                r = atomize(vpop())
                t = newtmp()
                E(f"if {r.expr}.__class__ is not _RArray:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('ALOAD on non-array %r'"
                        f" % ({r.expr},), {fn_name!r}, {p})",
                    )
                )
                E("try:")
                E(f"    {t} = {r.expr}.slots[{i.expr}]")
                E("except IndexError:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('array index %s out of range"
                        f" [0, %s)' % ({i.expr}, len({r.expr})),"
                        f" {fn_name!r}, {p}) from None",
                    )
                )
                vstack.append(_VEntry(t, atom=True))
            elif op == _ASTORE:
                v = vpop()
                i = atomize(vpop())
                r = atomize(vpop())
                E(f"if {r.expr}.__class__ is not _RArray:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('ASTORE on non-array %r'"
                        f" % ({r.expr},), {fn_name!r}, {p})",
                    )
                )
                E("try:")
                E(f"    {r.expr}.slots[{i.expr}] = {v.expr}")
                E("except IndexError:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('array index %s out of range"
                        f" [0, %s)' % ({i.expr}, len({r.expr})),"
                        f" {fn_name!r}, {p}) from None",
                    )
                )
            elif op == _ALEN:
                r = atomize(vpop())
                E(f"if {r.expr}.__class__ is not _RArray:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('ALEN on non-array %r'"
                        f" % ({r.expr},), {fn_name!r}, {p})",
                    )
                )
                # Reach past RArray.__len__ straight to the list.
                vstack.append(_VEntry(f"len({r.expr}.slots)", r.slots))
            elif op == _PRINT:
                ent = vpop()
                E(f"_out.append({ent.expr})")

            # ---- control transfers ---------------------------------
            elif op == _JUMP:
                pre = []
                if arg < p + 1:
                    pre = [ind + "_stats.backward_jumps += 1"]
                transfer(arg, pre, ind)
                return
            elif op == _JZ or op == _JNZ:
                ent = vpop()
                if ent.cmp is not None:
                    cop, ca, cb = ent.cmp
                    sym = _CMP_SYM[cop] if op == _JNZ else _CMP_NSYM[cop]
                    E(f"if {ca} {sym} {cb}:")
                else:
                    sym = "!=" if op == _JNZ else "=="
                    E(f"if {ent.expr} {sym} 0:")
                pre = []
                if arg < p + 1:
                    pre = [ind + _I4 + "_stats.backward_jumps += 1"]
                transfer(arg, pre, ind + _I4)
                # fallthrough continues inline with the lazy stack
            elif op == _CALL:
                nargs = self.arity[p]
                if nargs:
                    args_ent = vstack[-nargs:]
                    del vstack[-nargs:]
                else:
                    args_ent = []
                if p in self.leafs:
                    # Leaf-outlined call: the callee runs as a plain
                    # Python function with no guest frame.  The caller
                    # performs the callee's entry-segment accounting
                    # (the segment is exactly the entry YIELDPOINT) and
                    # evaluates the yieldpoint itself — if a thread
                    # switch is due, nothing has executed yet, so the
                    # cold path materializes both frames and suspends
                    # exactly as a framed call would.  On the hot path
                    # the caller's locals, pending stack and mirrors
                    # all stay in Python locals across the call, and
                    # the walk continues inline at p + 1 (which remains
                    # an entry arm for the cold path's resume).
                    callee = self.leafs[p]
                    cname = callee.name
                    self.extras[f"_fn{p}"] = ("callee", p)
                    self.extras[f"_lf{p}"] = ("leaf", p)
                    E("_stats.calls += 1")
                    E(f"if len(_fs) >= {self.max_depth}:")
                    out.extend(
                        self._raise_lines(
                            ind + _I4,
                            vstack + args_ent,
                            f"raise _SO('call depth %d in %s'"
                            f" % (len(_fs), {cname!r}))",
                        )
                    )
                    # Callee entry-segment head (fuel / charge / tick),
                    # with the fuel trap raised directly: the reference
                    # message names the callee, which is a compile-time
                    # literal here, so no frame is needed.
                    lops = [int(i.op) for i in callee.code]
                    cs, ce = self.eng._segments(callee.code, lops)[0]
                    lcost = self.vm.cost_model.cost_table()
                    SC0 = sum(lcost[lops[q]] for q in range(cs, ce))
                    SL0 = ce - cs
                    if self.oc_on:
                        counts: Dict[int, int] = {}
                        for q in range(cs, ce):
                            counts[lops[q]] = counts.get(lops[q], 0) + 1
                        for o, k in sorted(counts.items()):
                            E(f"_oc[{o}] = _oc.get({o}, 0) + {k}")
                    fuel_msg = (
                        f"instruction budget of {self.fuel}"
                        f" exhausted in {cname}@0"
                    )
                    E(f"if _ni >= {self.fuel}:")
                    out.extend(self._sync(ind + _I4))
                    E(f"    raise _FuelErr({fuel_msg!r})")
                    E(f"_ni += {SL0}")
                    if SC0:
                        E(f"_cy += {SC0}")
                    E("if _cy >= _nt:")
                    E("    _stats.cycles = _cy")
                    E("    _stats.instructions = _ni")
                    E("    _eng._ticks()")
                    E("    _nt = _eng.next_tick")
                    E("_stats.yieldpoints_executed += 1")
                    E("if _vm._threadswitch_bit:")
                    E("    _vm._threadswitch_bit = False")
                    E("    _th = _eng.thread")
                    E("    for _t in _vm.threads:")
                    E("        if _t is not _th and not _t.done:")
                    yind = ind + _I4 * 3
                    out.extend(self._writeback(yind))
                    out.extend(self._spill(yind, vstack))
                    out.extend(self._sync(yind))
                    out.append(yind + "_fr = _fs[-1]")
                    out.append(yind + f"_fr.pc = {p + 1}")
                    out.append(
                        yind + f"_fr.fast_pc = {self.slot_of[p + 1]}"
                    )
                    pad = callee.num_locals - nargs
                    loc = (
                        "["
                        + ", ".join(
                            [a.expr for a in args_ent] + ["0"] * pad
                        )
                        + "]"
                    )
                    out.append(yind + "_nf = _FNew(_Frame)")
                    out.append(yind + f"_nf.function = _fn{p}")
                    out.append(yind + "_nf.pc = 1")
                    # The callee's entry pcs are exactly {0, 1} (its
                    # only breaker successor is the entry yieldpoint's),
                    # and the fast tier's segment split agrees, so slot
                    # 1 resumes at pc 1 under either fallback tier.
                    out.append(yind + "_nf.fast_pc = 1")
                    out.append(yind + f"_nf.locals = {loc}")
                    out.append(yind + "_nf.stack = []")
                    out.append(yind + "_nf.handlers = []")
                    out.append(yind + "_fs.append(_nf)")
                    out.append(yind + f"return {_YIELD}")
                    t = newtmp()
                    argtail = "".join(", " + a.expr for a in args_ent)
                    E(
                        f"{t}, _cy, _ni, _nt ="
                        f" _lf{p}(_cy, _ni, _nt{argtail})"
                    )
                    vstack.append(_VEntry(t, atom=True))
                    p += 1
                    continue
                if p in self.callees:
                    callee_ref = f"_fn{p}"
                    self.extras[callee_ref] = ("callee", p)
                    depth_msg = (
                        f"raise _SO('call depth %d in %s'"
                        f" % (len(_fs), {self.callees[p].name!r}))"
                    )
                else:
                    callee_ref = "_callee"
                    E(f"_callee = _functions.get({arg!r})")
                    E("if _callee is None:")
                    msg = f"call to unloaded function {arg!r}"
                    out.extend(
                        self._raise_lines(
                            ind + _I4,
                            vstack + args_ent,
                            f"raise _VMTrap({msg!r}, {fn_name!r}, {p})",
                        )
                    )
                    depth_msg = (
                        "raise _SO('call depth %d in %s'"
                        " % (len(_fs), _callee.name))"
                    )
                E("_stats.calls += 1")
                E("_d = len(_fs)")
                E(f"if _d >= {self.max_depth}:")
                out.extend(
                    self._raise_lines(ind + _I4, vstack + args_ent, depth_msg)
                )
                out.extend(self._writeback(ind))
                out.extend(self._spill(ind, vstack))
                out.extend(self._sync(ind))
                E("_fr = _fs[-1]")
                E(f"_fr.pc = {p + 1}")
                E(f"_fr.fast_pc = {self.slot_of[p + 1]}")
                arglist = "[" + ", ".join(a.expr for a in args_ent) + "]"
                if p in self.callees:
                    # Direct-call fast path: invoke the callee's region
                    # on the Python stack.  On a normal return the
                    # callee has popped its frame and pushed the result
                    # on ours, and our resume slot is untouched — so
                    # resume inline through the entry arm (which
                    # reloads from the frame, exactly as the driver
                    # would).  The slot test also admits a THROW that
                    # unwound to a handler in this frame at this very
                    # slot; the entry-arm reload is correct for that
                    # path too.  Anything else (yield, halt, deeper
                    # rebind, our slot changed) propagates to the
                    # driver.  Mirrors must be re-read: the callee
                    # advanced the shared ExecStats.
                    hc = f"_hc{p}"
                    self.extras[hc] = ("dcell",)
                    pad = self.callees[p].num_locals - nargs
                    if pad >= 0:
                        # Inline frame construction: the callee's local
                        # count is a compile-time constant (and part of
                        # the lowering key), so the padded locals list
                        # is one literal and the ctor call disappears.
                        loc = (
                            "["
                            + ", ".join(
                                [a.expr for a in args_ent] + ["0"] * pad
                            )
                            + "]"
                        )
                        E("_nf = _FNew(_Frame)")
                        E(f"_nf.function = {callee_ref}")
                        E("_nf.pc = 0")
                        E("_nf.fast_pc = 0")
                        E(f"_nf.locals = {loc}")
                        E("_nf.stack = []")
                        E("_nf.handlers = []")
                    else:  # pragma: no cover - verifier rejects this
                        E(f"_nf = _Frame({callee_ref}, {arglist})")
                    E("_fs.append(_nf)")
                    E(f"_h = {hc}[0]")
                    E("if _h is None:")
                    E(f"    _h = {hc}[0] = _eng._direct_entry({callee_ref})")
                    E(f"if _h is not False and _d < {_DIRECT_DEPTH - 1}:")
                    E("    _rv = _h(_nf.stack, _nf.locals)")
                    E(
                        f"    if _rv == {_REBIND} and _fs[-1] is _fr"
                        f" and _fr.fast_pc == {self.slot_of[p + 1]}:"
                    )
                    E("        _cy = _stats.cycles")
                    E("        _ni = _stats.instructions")
                    E("        _nt = _eng.next_tick")
                    E(f"        _L = {self.labels[('e', p + 1)]}")
                    E("        continue")
                    E("    return _rv")
                else:
                    E(f"_fs.append(_Frame({callee_ref}, {arglist}))")
                E(f"return {_REBIND}")
                return
            elif op == _RETURN:
                if self.leaf_mode:
                    # Hand the updated mirrors back to the caller's
                    # region; counters went straight to _stats.  The
                    # value expression is used exactly once, so no
                    # atomization is needed.
                    r = vpop()
                    E("_stats.returns += 1")
                    E(f"return ({r.expr}, _cy, _ni, _nt)")
                    return
                r = atomize(vpop())
                E("_stats.returns += 1")
                out.extend(self._sync(ind))
                E("_fs.pop()")
                E("if not _fs:")
                E("    _th = _eng.thread")
                E("    _th.done = True")
                E(f"    _th.result = {r.expr}")
                E(f"    return {_DONE}")
                E(f"_fs[-1].stack.append({r.expr})")
                E(f"return {_REBIND}")
                return
            elif op == _HALT:
                out.extend(self._sync(ind))
                E("_th = _eng.thread")
                E("_th.done = True")
                E("_th.result = 0")
                E(f"return {_DONE}")
                return

            # ---- observer / breaker ops ----------------------------
            elif op == _CHECK:
                E("_stats.checks_executed += 1")
                E("if _poll():")
                E("    _stats.checks_taken += 1")
                E(f"    _cy += {self.penalty}")
                if rec_on:
                    E(
                        f"    _rec.check(_cy, _eng.thread.tid,"
                        f" {fn_name!r}, {p}, True, {arg}{ctx_arg})"
                    )
                if prof_on:
                    E(
                        f"    _pcb(True, {fn_name!r}, {p},"
                        " _fs, _eng.thread.tid)"
                    )
                transfer(arg, [], ind + _I4)
                if rec_on:
                    E(
                        f"_rec.check(_cy, _eng.thread.tid,"
                        f" {fn_name!r}, {p}, False"
                        + (", None, _fs)" if self.ctx_on else ")")
                    )
                if prof_on:
                    E(
                        f"_pcb(False, {fn_name!r}, {p},"
                        " _fs, _eng.thread.tid)"
                    )
            elif op == _GUARDED_INSTR:
                act = f"_ac{p}"
                self.extras[act] = ("arg", p)
                # Canonicalize up front so both poll outcomes agree on
                # the compile-time stack shape.
                out.extend(self._mat(ind, vstack))
                vstack[:] = [
                    _VEntry(f"s{i}", atom=True) for i in range(len(vstack))
                ]
                E("_stats.guarded_checks_executed += 1")
                E("if _poll():")
                E("    _stats.guarded_checks_taken += 1")
                E(f"    _cy += {act}.cost")
                E("    _stats.instr_ops_executed += 1")
                if rec_on:
                    E(
                        f"    _rec.guarded_fired(_cy, _eng.thread.tid,"
                        f" {fn_name!r}, {p}{ctx_arg})"
                    )
                out.extend(self._writeback(ind + _I4))
                out.extend(self._spill(ind + _I4, vstack))
                out.extend(self._sync(ind + _I4))
                E("    _fr = _fs[-1]")
                E(f"    _fr.pc = {p + 1}")
                E(f"    {act}.execute(_vm, _fr)")
                out.extend(self._reload(ind + _I4, len(vstack)))
                if prof_on:
                    E(
                        f"    _pgb(True, {fn_name!r}, {p},"
                        " _fs, _eng.thread.tid)"
                    )
                    E("else:")
                    E(
                        f"    _pgb(False, {fn_name!r}, {p},"
                        " _fs, _eng.thread.tid)"
                    )
            elif op == _INSTR:
                act = f"_ac{p}"
                self.extras[act] = ("arg", p)
                E(f"_cy += {act}.cost")
                E("_stats.instr_ops_executed += 1")
                barrier_pre()
                E("_fr = _fs[-1]")
                E(f"_fr.pc = {p + 1}")
                E(f"{act}.execute(_vm, _fr)")
                barrier_post(ind)
            elif op == _YIELDPOINT:
                E("_stats.yieldpoints_executed += 1")
                E("if _vm._threadswitch_bit:")
                E("    _vm._threadswitch_bit = False")
                E("    _th = _eng.thread")
                E("    for _t in _vm.threads:")
                E("        if _t is not _th and not _t.done:")
                yind = ind + _I4 * 3
                if len(vstack) != depth_at[p + 1]:
                    raise _Bailout(f"{fn_name}: depth mismatch at yield {p}")
                out.extend(self._mat(yind, vstack))
                out.extend(self._writeback(yind))
                if len(vstack) == 1:
                    out.append(yind + "stack.append(s0)")
                elif vstack:
                    exprs = ", ".join(f"s{i}" for i in range(len(vstack)))
                    out.append(yind + f"stack += ({exprs})")
                out.extend(self._sync(yind))
                out.append(yind + "_fr = _fs[-1]")
                out.append(yind + f"_fr.pc = {p + 1}")
                out.append(yind + f"_fr.fast_pc = {self.slot_of[p + 1]}")
                out.append(yind + f"return {_YIELD}")
            elif op == _NEW:
                kl = f"_kl{p}"
                self.extras[kl] = ("class", arg)
                E("_vm._alloc_count += 1")
                E(f"if _vm._alloc_count % {self.gc_every} == 0:")
                E(f"    _cy += {self.gc_pause}")
                E("    _stats.gc_pauses += 1")
                if rec_on:
                    E(
                        f"    _rec.gc_pause(_cy, _eng.thread.tid,"
                        f" {fn_name!r}, {p}, {self.gc_pause},"
                        f" _vm._alloc_count{ctx_arg})"
                    )
                t = newtmp()
                # Inline allocation: the field count is a compile-time
                # constant (part of the lowering key), so the ctor call
                # and the num_fields() lookup both disappear.
                nf = self.vm.program.classes[arg].num_fields()
                E(f"{t} = _FNew(_RObject)")
                E(f"{t}.klass = {kl}")
                E(f"{t}.slots = [0] * {nf}")
                vstack.append(_VEntry(t, atom=True))
            elif op == _NEWARRAY:
                ln = atomize(vpop())
                E(f"if not isinstance({ln.expr}, int) or {ln.expr} < 0:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('bad array length %r'"
                        f" % ({ln.expr},), {fn_name!r}, {p})",
                    )
                )
                E("_vm._alloc_count += 1")
                E(f"if _vm._alloc_count % {self.gc_every} == 0:")
                E(f"    _cy += {self.gc_pause}")
                E("    _stats.gc_pauses += 1")
                if rec_on:
                    E(
                        f"    _rec.gc_pause(_cy, _eng.thread.tid,"
                        f" {fn_name!r}, {p}, {self.gc_pause},"
                        f" _vm._alloc_count{ctx_arg})"
                    )
                t = newtmp()
                E(f"{t} = _FNew(_RArray)")
                E(f"{t}.slots = [0] * {ln.expr}")
                vstack.append(_VEntry(t, atom=True))
            elif op == _IO:
                E(f"_cy += {self.io_base * arg}")
                E("_stats.io_ops += 1")
                t = newtmp()
                E(f"{t} = _vm._io_value(_eng.thread)")
                vstack.append(_VEntry(t, atom=True))
            elif op == _SPAWN:
                nargs = self.arity[p]
                if nargs:
                    args_ent = vstack[-nargs:]
                    del vstack[-nargs:]
                else:
                    args_ent = []
                if p in self.callees:
                    callee_ref = f"_sp{p}"
                    self.extras[callee_ref] = ("callee", p)
                else:
                    callee_ref = "_callee"
                    E(f"_callee = _functions.get({arg!r})")
                    E("if _callee is None:")
                    msg = f"call to unloaded function {arg!r}"
                    out.extend(
                        self._raise_lines(
                            ind + _I4,
                            vstack + args_ent,
                            f"raise _VMTrap({msg!r}, {fn_name!r}, {p})",
                        )
                    )
                t = newtmp()
                arglist = "[" + ", ".join(a.expr for a in args_ent) + "]"
                E(f"{t} = _vm._spawn_thread({callee_ref}, {arglist}).tid")
                vstack.append(_VEntry(t, atom=True))
            elif op == _TRY:
                E(
                    f"_fs[-1].handlers.append"
                    f"(({arg}, {len(vstack)}))"
                )
            elif op == _ENDTRY:
                E("_fr = _fs[-1]")
                E("if not _fr.handlers:")
                out.extend(
                    self._raise_lines(
                        ind + _I4,
                        vstack,
                        f"raise _VMTrap('ENDTRY without matching TRY',"
                        f" {fn_name!r}, {p})",
                    )
                )
                E("_fr.handlers.pop()")
            elif op == _THROW:
                val = atomize(vpop())
                out.extend(self._writeback(ind))
                out.extend(self._spill(ind, vstack))
                out.extend(self._sync(ind))
                E(f"return _eng._throw({val.expr}, {fn_name!r}, {p})")
                return
            elif op == _LOADFN or op == _REPLACEFN:
                barrier_pre()
                t = newtmp()
                E("try:")
                if op == _LOADFN:
                    E(f"    {t} = _vm._dyn_load({arg!r})")
                    fail = "LOADFN failed: %s"
                else:
                    E(f"    {t} = _vm._dyn_replace({arg[0]!r}, {arg[1]!r})")
                    fail = "REPLACEFN failed: %s"
                E("except (_BErr, _VErr) as _exc:")
                E(
                    f"    raise _VMTrap({fail!r} % (_exc,),"
                    f" {fn_name!r}, {p}) from None"
                )
                barrier_post(ind)
                vstack.append(_VEntry(t, atom=True))
            elif op == _OSRPOINT:
                if vstack:
                    raise _Bailout(f"{fn_name}: OSRPOINT at depth != 0")
                self.extras["_fnself"] = ("self",)
                E(f"_cur = _functions.get({fn_name!r})")
                E("if _cur is not None and _cur is not _fnself:")
                E(f"    _landing = _vm._osr_landing(_cur, {arg!r})")
                E("    if _landing is None:")
                msg = (
                    f"no OSR point {arg!r} in replacement of {fn_name}"
                )
                out.extend(
                    self._raise_lines(
                        ind + _I4 * 2,
                        vstack,
                        f"raise _VMTrap({msg!r}, {fn_name!r}, {p})",
                    )
                )
                E("    _stats.osr_remaps += 1")
                out.extend(self._writeback(ind + _I4))
                E("    _nl = _cur.num_locals")
                E("    if len(locals_) < _nl:")
                E("        locals_.extend([0] * (_nl - len(locals_)))")
                E("    elif len(locals_) > _nl:")
                E("        del locals_[_nl:]")
                E("    _fr = _fs[-1]")
                E("    _fr.handlers.clear()")
                E("    _fr.function = _cur")
                E("    _eng._code_for(_cur)")
                out.extend(self._sync(ind + _I4))
                E("    _fr.fast_pc = _eng._heads[_cur][_landing]")
                E(f"    return {_REBIND}")
            else:  # pragma: no cover - guarded by _LOWERABLE
                raise _Bailout(f"{fn_name}: unhandled op {op}")
            p += 1

    # -- arm and module assembly --------------------------------------------

    def _loopify(self, body: List[str], self_label: int) -> List[str]:
        """Turn an arm that transfers back to its own head into a real
        Python loop.

        Hot inner loops compile to canonical arms whose back-edge is a
        transfer to themselves; without this pass every iteration pays
        a full dispatch-tree descent.  Wrapping the arm in ``while
        True:`` rewrites self-transfers (``_L = k; continue``) into a
        bare ``continue`` of the inner loop and every *other* transfer's
        ``continue`` into ``break`` (falling out to the outer dispatch
        loop, which re-reads ``_L``).  Accounting is untouched: the
        arm's segment head — fuel, charge, tick check, observer
        boundaries — is part of the loop body and reruns on every
        iteration exactly as the dispatched form did.  Safe because the
        only ``continue`` statements a canonical arm emits are
        transfers, and the loops the walk itself generates (the
        YIELDPOINT thread scan, and the same scan hoisted to an
        outlined leaf's call site) exit by ``return``, never ``break``.
        """
        tag = f"_L = {self_label}"
        if not any(ln.lstrip() == tag for ln in body):
            return body
        out = ["while True:"]
        i = 0
        while i < len(body):
            ln = body[i]
            ind = ln[: len(ln) - len(ln.lstrip())]
            stripped = ln.lstrip()
            if (
                stripped == tag
                and i + 1 < len(body)
                and body[i + 1] == ind + "continue"
            ):
                out.append(_I4 + ind + "continue")
                i += 2
            elif stripped == "continue":
                out.append(_I4 + ind + "break")
                i += 1
            else:
                out.append(_I4 + ln)
                i += 1
        return out

    def lower(self) -> Tuple[str, Dict[str, tuple], List[int]]:
        self._analyze()
        arm_lines: List[List[str]] = []
        for kind, pc in self.order:
            body: List[str] = []
            if kind == "e":
                body.extend(self._reload("", self.depth_at[pc]))
                if ("c", pc) in self.labels:
                    body.append(f"_L = {self.labels[('c', pc)]}")
                    body.append("continue")
                else:
                    self._walk(pc, body, "")
            else:
                self._walk(pc, body, "")
                body = self._loopify(body, self.labels[("c", pc)])
            arm_lines.append(body)

        src: List[str] = [
            "def _r(stack, locals_, _L=0):",
            "    _cy = _stats.cycles",
            "    _ni = _stats.instructions",
            "    _nt = _eng.next_tick",
            "    _fs = _eng.frames",
            "    while True:",
        ]

        def render(lo: int, hi: int, ind: str) -> None:
            if hi - lo == 1:
                for ln in arm_lines[lo]:
                    src.append(ind + ln)
                return
            if hi - lo <= _LEAF_ARMS:
                for k in range(lo, hi):
                    if k == lo:
                        src.append(ind + f"if _L == {k}:")
                    elif k == hi - 1:
                        src.append(ind + "else:")
                    else:
                        src.append(ind + f"elif _L == {k}:")
                    for ln in arm_lines[k]:
                        src.append(ind + _I4 + ln)
                return
            mid = (lo + hi) // 2
            src.append(ind + f"if _L < {mid}:")
            render(lo, mid, ind + _I4)
            src.append(ind + "else:")
            render(mid, hi, ind + _I4)

        if len(arm_lines) > 1:
            # Arm 0 is the function-entry arm — the target of every
            # call — so test it first instead of walking the tree's
            # leftmost path for the hottest label.
            src.append("        if _L == 0:")
            for ln in arm_lines[0]:
                src.append("            " + ln)
            src.append("        else:")
            render(1, len(arm_lines), "            ")
        else:
            render(0, len(arm_lines), "        ")
        for pc in self.entry_sorted[1:]:
            slot = self.slot_of[pc]
            lab = self.labels[("e", pc)]
            src.append(f"def _e{slot}(stack, locals_):")
            src.append(f"    return _r(stack, locals_, {lab})")
        return "\n".join(src) + "\n", self.extras, self.entry_sorted


class _LeafLowerer(_Lowerer):
    """Lowers an eligible leaf callee to an *outlined* frameless helper:

    ``_lf(_cy, _ni, _nt, l0, .., l{np-1}) -> (value, _cy, _ni, _nt)``

    Guest locals are Python parameters (plus zero-initialized extras),
    the operand stack is entirely virtual, and no :class:`Frame` ever
    exists: caller regions invoke the helper directly after performing
    the callee's entry-segment accounting themselves (see the leaf
    branch of ``_Lowerer._walk``).  Eligibility
    (``CompiledEngine._leaf_eligible``) restricts the body to
    ``_LEAF_SAFE`` ops past the entry YIELDPOINT, all of which observe
    only ``_stats``/``_eng``/``_vm`` — never the frame list — so traps
    and fuel exhaustion raise directly with the callee's name and the
    suspended-frame protocol is never needed.  Accounting (segment
    heads, ticks, GC pauses, IO charges, opcode counts, telemetry
    events) is emitted by the inherited walk and is bit-identical to
    the framed lowering.
    """

    def __init__(self, eng: "CompiledEngine", fn: Function):
        super().__init__(eng, fn)
        self.leaf_mode = True

    # Frameless: the frame's locals/stack don't exist, so environment
    # barriers degrade to mirror syncs (the only barrier-ish paths a
    # leaf can reach are trap raises).
    def _writeback(self, ind: str) -> List[str]:
        return []

    def _spill(self, ind: str, vstack: List[_VEntry]) -> List[str]:
        return []

    def _reload(self, ind: str, depth: int) -> List[str]:  # pragma: no cover
        raise _Bailout(f"{self.fn_name}: reload in leaf codegen")

    def _head(self, ind: str, s: int) -> List[str]:
        # Same head as a region, but the fuel trap raises directly:
        # the reference message names the executing function, a
        # compile-time literal here.
        out = super()._head(ind, s)
        trap = ind + _I4 + f"_eng._fuel_trap({s})"
        msg = (
            f"instruction budget of {self.fuel}"
            f" exhausted in {self.fn_name}@{s}"
        )
        return [
            ind + _I4 + f"raise _FuelErr({msg!r})" if ln == trap else ln
            for ln in out
        ]

    def lower_leaf(self) -> Tuple[str, Dict[str, tuple]]:
        self._analyze()
        ops = self.ops
        if self.prof_on or self.ctx_on or self.eng._dynamic:
            raise _Bailout(
                f"{self.fn_name}: leaf under profiler/context/dynamic"
            )
        if not ops or ops[0] != _YIELDPOINT:
            raise _Bailout(f"{self.fn_name}: leaf without entry yieldpoint")
        for op in ops[1:]:
            if op not in _LEAF_SAFE:
                raise _Bailout(f"{self.fn_name}: op {op} not leaf-safe")

        # Arms: a start arm walking from pc 1 (the entry yieldpoint is
        # consumed by the caller) plus one canonical arm per branch
        # target.  No entry arms — a leaf is never resumed.
        self.labels = {}
        self.order = []
        if 1 not in self.block_pcs:
            self.labels[("x", 1)] = 0
            self.order.append(("x", 1))
        for pc in sorted(self.block_pcs):
            self.labels[("c", pc)] = len(self.order)
            self.order.append(("c", pc))

        arm_lines: List[List[str]] = []
        for kind, pc in self.order:
            body: List[str] = []
            self._walk(pc, body, "")
            if kind == "c":
                body = self._loopify(body, self.labels[("c", pc)])
            arm_lines.append(body)

        np = self.fn.num_params
        params = "".join(f", l{k}" for k in range(np))
        src: List[str] = [f"def _lf(_cy, _ni, _nt{params}):"]
        zero = [f"l{k}" for k in self.used_sorted if k >= np]
        if zero:
            src.append("    " + " = ".join(zero) + " = 0")
        if len(arm_lines) == 1:
            # Straight-line leaf: no dispatch loop at all.
            for ln in arm_lines[0]:
                src.append("    " + ln)
        else:
            start = (
                0 if ("x", 1) in self.labels else self.labels[("c", 1)]
            )
            src.append(f"    _L = {start}")
            src.append("    while True:")

            def render(lo: int, hi: int, ind: str) -> None:
                if hi - lo == 1:
                    for ln in arm_lines[lo]:
                        src.append(ind + ln)
                    return
                if hi - lo <= _LEAF_ARMS:
                    for k in range(lo, hi):
                        if k == lo:
                            src.append(ind + f"if _L == {k}:")
                        elif k == hi - 1:
                            src.append(ind + "else:")
                        else:
                            src.append(ind + f"elif _L == {k}:")
                        for ln in arm_lines[k]:
                            src.append(ind + _I4 + ln)
                    return
                mid = (lo + hi) // 2
                src.append(ind + f"if _L < {mid}:")
                render(lo, mid, ind + _I4)
                src.append(ind + "else:")
                render(mid, hi, ind + _I4)

            if len(arm_lines) > 1 and self.order[0] == ("x", 1):
                src.append("        if _L == 0:")
                for ln in arm_lines[0]:
                    src.append("            " + ln)
                src.append("        else:")
                render(1, len(arm_lines), "            ")
            else:
                render(0, len(arm_lines), "        ")
        return "\n".join(src) + "\n", self.extras


class CompiledEngine(FastEngine):
    """Region-compiling engine: whole functions lowered to generated
    Python, with per-function fallback to the inherited fast tier.

    Shares the fast engine's driver loop, tick/fuel helpers, segment
    model, head maps and dynamic-code discipline; only ``_compile`` is
    replaced.  Construction eagerly compiles every function in the
    program (dynamic functions arrive lazily through ``_code_for``).
    """

    def __init__(self, vm):
        #: regions / fallbacks / cache_hits / invalidations for this
        #: run; mirrored into the telemetry metrics registry (when one
        #: is attached) as ``vm.compiled.*`` counters.
        self.compile_counts: Dict[str, int] = {
            "regions": 0,
            "fallbacks": 0,
            "cache_hits": 0,
            "invalidations": 0,
            "leafs": 0,
        }
        self._fn_by_name: Dict[str, Function] = {}
        #: Function -> outlined leaf helper bound to this engine.
        self._leaf_fns: Dict[Function, Callable] = {}
        #: Functions whose handlers are region entry points (vs
        #: fast-tier fallback closures); only these may be invoked
        #: directly by the in-region call fast path.
        self._region_fns: set = set()
        super().__init__(vm)

    # -- compilation --------------------------------------------------------

    def _compile(self, fn: Function) -> List[Callable]:
        name = fn.name
        prev = self._fn_by_name.get(name)
        if prev is not None and prev is not fn:
            # REPLACEFN/OSR retirement: derived state is keyed by
            # Function object, so the new body compiles fresh and the
            # retired region dies with its last live frame.
            self.compile_counts["invalidations"] += 1
            self._note_metric("invalidations", name)
        self._fn_by_name[name] = fn
        try:
            handlers = self._lower(fn)
        except _Bailout:
            self.compile_counts["fallbacks"] += 1
            self._note_metric("fallbacks", name)
            return FastEngine._compile(self, fn)
        self.compile_counts["regions"] += 1
        self._region_fns.add(fn)
        self._note_metric("regions", name)
        return handlers

    def _direct_entry(self, fn: Function):
        """The callee's slot-0 region handler for the direct-call fast
        path, or ``False`` when the callee fell back to the fast tier
        (whose per-segment closures speak the index protocol and must
        go through the driver)."""
        handlers = self._code_for(fn)
        return handlers[0] if fn in self._region_fns else False

    # -- leaf outlining -----------------------------------------------------

    def _leaf_eligible(self, fn: Function) -> bool:
        """Cheap shape test for leaf outlining: an entry YIELDPOINT
        followed exclusively by frameless-safe ops (see _LEAF_SAFE).
        The shape guarantees the callee's entry pcs are exactly
        ``{0, 1}``, which the caller's cold suspend path relies on."""
        code = fn.code
        if not code or len(code) > _MAX_CODE_LEN:
            return False
        if int(code[0].op) != _YIELDPOINT:
            return False
        if fn.num_locals < fn.num_params:  # pragma: no cover - verifier
            return False
        return all(int(ins.op) in _LEAF_SAFE for ins in code[1:])

    def _leaf_key(self, fn: Function) -> tuple:
        return ("leaf",) + self._lower_key(fn)

    def _leaf_lowering(self, fn: Function) -> Optional[Tuple[str, Dict[str, tuple]]]:
        """The cached ``(src, extras_spec)`` for *fn*'s outlined leaf
        helper, or None if leaf lowering bails (callers then emit the
        ordinary framed call for that site)."""
        key = self._leaf_key(fn)
        if key in _LEAF_CACHE:
            return _LEAF_CACHE[key]
        try:
            lowered: Optional[Tuple[str, Dict[str, tuple]]] = _LeafLowerer(
                self, fn
            ).lower_leaf()
        except _Bailout:
            lowered = None
        _LEAF_CACHE[key] = lowered
        return lowered

    def _leaf_entry(self, fn: Function) -> Callable:
        """The outlined leaf helper for *fn*, bound to this engine's
        stats/recorder/extras.  Only reached through an extras spec
        emitted for a proven-eligible site, so the lowering is always
        present in the cache."""
        cached = self._leaf_fns.get(fn)
        if cached is not None:
            return cached
        src, spec = self._leaf_lowering(fn)
        co = _REGION_CODE_CACHE.get(src)
        if co is None:
            co = compile(src, "<leaf>", "exec")
            _REGION_CODE_CACHE[src] = co
        vm = self.vm
        ns: Dict[str, object] = {
            "_stats": vm.stats,
            "_eng": self,
            "_vm": vm,
            "_out": vm.output,
            "_FNew": object.__new__,
            "_VMTrap": VMTrap,
            "_RObject": RObject,
            "_RArray": RArray,
            "_FuelErr": FuelExhaustedError,
        }
        if vm.recorder is not None:
            ns["_rec"] = vm.recorder
        if vm.stats.opcode_counts is not None:
            ns["_oc"] = vm.stats.opcode_counts
        ns.update(self._bind_extras(fn, spec))
        exec(co, ns)
        leaf = ns["_lf"]
        self._leaf_fns[fn] = leaf
        self.compile_counts["leafs"] += 1
        self._note_metric("leafs", fn.name)
        return leaf

    def _lower_key(self, fn: Function) -> tuple:
        """A hashable key that determines the lowering output exactly.

        Covers the function's name (embedded in trap messages), code
        shape (ops plus every immediate argument the generated text
        can mention — opaque action objects are keyed by a placeholder
        because the source only ever references them through an extras
        global), per-call-site arity (two programs may bind the same
        callee name to different signatures), and the engine's codegen
        flags and cost constants.
        """
        vm = self.vm

        def norm(a: object) -> object:
            # Exact-class checks: bool and float are normalized with a
            # type tag so PUSH True and PUSH 1 (whose reprs differ in
            # the generated text) can never share a key.
            cls = a.__class__
            if a is None or cls is int or cls is str:
                return a
            if cls is bool or cls is float:
                return (cls.__name__, a)
            return None

        sig: List[tuple] = []
        for p, ins in enumerate(fn.code):
            arg = ins.arg
            op = int(ins.op)
            if op == _INSTR or op == _GUARDED_INSTR:
                # The action object is opaque to the generated source —
                # it is only ever reached through an extras global.
                karg: object = "<action>"
            elif isinstance(arg, tuple):
                karg = tuple(norm(a) for a in arg)
                if any(k is None and a is not None for k, a in zip(karg, arg)):
                    karg = ("<opaque>", p, id(arg))
            else:
                karg = norm(arg)
                if karg is None and arg is not None:
                    # Unknown immediate: the source may embed its repr,
                    # so key by identity — never shared, never wrong.
                    karg = ("<opaque>", p, id(arg))
            if op == _CALL or op == _SPAWN:
                # Arity shapes the argument split and the inlined
                # frame's locals pad, so both callee facts are part of
                # the key.  A leaf-eligible callee goes further: the
                # caller's source embeds the callee's entry-segment
                # cost and invokes its outlined body, so the whole
                # callee lowering key joins the site's entry.
                try:
                    callee = vm.program.resolve_callable(arg)
                    arity: object = (callee.num_params, callee.num_locals)
                except Exception:
                    arity = ("<unresolvable>", p)
                else:
                    leaf_fn = (
                        None
                        if self._dynamic or op != _CALL
                        else vm.program.functions.get(arg)
                    )
                    if leaf_fn is not None and self._leaf_eligible(leaf_fn):
                        arity = arity + self._leaf_key(leaf_fn)
                sig.append((op, karg, arity))
            elif op == _NEW:
                # The inlined allocation embeds the field count.
                try:
                    nf: object = vm.program.classes[arg].num_fields()
                except Exception:
                    nf = ("<noclass>", p)
                sig.append((op, karg, nf))
            else:
                sig.append((op, karg))
        return (fn.name, fn.num_params, fn.num_locals, tuple(sig)) + self._flags_key()

    def _flags_key(self) -> tuple:
        key = self.__dict__.get("_flags_key_cached")
        if key is None:
            vm = self.vm
            cost = vm.cost_model.cost_table()
            cost_key = (
                tuple(cost)
                if not isinstance(cost, dict)
                else tuple(sorted(cost.items()))
            )
            prof = vm.profiler
            key = (
                self._dynamic,
                vm.recorder is not None,
                # Context-tracking recorders change the emitted hook
                # calls *and* the leaf-outlining decision, so they must
                # not share lowered code with plain recorders.
                vm.recorder is not None
                and getattr(vm.recorder, "wants_context", False),
                vm.stats.opcode_counts is not None,
                prof is not None and prof.enabled,
                vm.fuel,
                vm.max_stack_depth,
                vm.cost_model.sample_transfer_penalty,
                vm.cost_model.gc_every_allocs,
                vm.cost_model.gc_pause_cycles,
                vm.cost_model.io_base_cost,
                cost_key,
            )
            self._flags_key_cached = key
        return key

    def _bind_extras(
        self, fn: Function, spec: Dict[str, tuple]
    ) -> Dict[str, object]:
        """Rebind cached extras specs to this engine's live objects."""
        program = self.vm.program
        code = fn.code
        out: Dict[str, object] = {}
        for name, s in spec.items():
            kind = s[0]
            if kind == "cell":
                out[name] = [None, 0]
            elif kind == "dcell":
                out[name] = [None]
            elif kind == "arg":
                out[name] = code[s[1]].arg
            elif kind == "callee":
                out[name] = program.functions[code[s[1]].arg]
            elif kind == "leaf":
                out[name] = self._leaf_entry(
                    program.functions[code[s[1]].arg]
                )
            elif kind == "class":
                out[name] = program.classes[s[1]]
            else:  # "self"
                out[name] = fn
        return out

    def _lower(self, fn: Function) -> List[Callable]:
        key = self._lower_key(fn)
        if key in _LOWER_CACHE:
            cached = _LOWER_CACHE[key]
            if cached is None:
                raise _Bailout(f"{fn.name}: remembered bailout")
            src, spec, entry_sorted = cached
            self.compile_counts["cache_hits"] += 1
            self._note_metric("cache_hits", fn.name)
        else:
            try:
                src, spec, entry_sorted = _Lowerer(self, fn).lower()
            except _Bailout:
                _LOWER_CACHE[key] = None
                raise
            _LOWER_CACHE[key] = (src, spec, entry_sorted)
        co = _REGION_CODE_CACHE.get(src)
        if co is None:
            co = compile(src, "<region>", "exec")
            _REGION_CODE_CACHE[src] = co
        vm = self.vm
        ns: Dict[str, object] = {
            "_stats": vm.stats,
            "_eng": self,
            "_vm": vm,
            "_out": vm.output,
            "_poll": vm.trigger.poll,
            "_functions": vm.program.functions,
            "_Frame": Frame,
            "_FNew": object.__new__,
            "_VMTrap": VMTrap,
            "_RObject": RObject,
            "_RArray": RArray,
            "_SO": StackOverflowError,
            "_BErr": BytecodeError,
            "_VErr": VerificationError,
            "_FuelErr": FuelExhaustedError,
        }
        if vm.recorder is not None:
            ns["_rec"] = vm.recorder
        if vm.stats.opcode_counts is not None:
            ns["_oc"] = vm.stats.opcode_counts
        prof = vm.profiler
        if prof is not None and prof.enabled:
            ns["_pb"] = prof.boundary
            ns["_pcb"] = prof.check_boundary
            ns["_pgb"] = prof.guarded_boundary
        ns.update(self._bind_extras(fn, spec))
        exec(co, ns)
        handlers: List[Callable] = [ns["_r"]]
        for i in range(1, len(entry_sorted)):
            handlers.append(ns[f"_e{i}"])
        self._heads[fn] = {pc: i for i, pc in enumerate(entry_sorted)}
        return handlers

    # -- slow-path helpers --------------------------------------------------

    def _throw(self, value, fn_name: str, pc: int) -> int:
        """Guest THROW unwinding, shared by all regions (mirrors the
        fast engine's THROW closure).  Returns the rebind sentinel or
        raises the uncaught-exception trap."""
        stats = self.vm.stats
        stats.throws += 1
        frames = self.frames
        fr = frames[-1]
        while True:
            if fr.handlers:
                target, depth = fr.handlers.pop()
                del fr.stack[depth:]
                fr.stack.append(value)
                fr.fast_pc = self._heads[fr.function][target]
                return _REBIND
            frames.pop()
            stats.frames_unwound += 1
            if not frames:
                raise VMTrap(
                    f"uncaught guest exception {value!r}", fn_name, pc
                )
            fr = frames[-1]

    def _note_metric(self, which: str, fn_name: str) -> None:
        rec = self.vm.recorder
        metrics = getattr(rec, "metrics", None) if rec is not None else None
        if metrics is None:
            return
        metrics.counter(f"vm.compiled.{which}").inc()
        metrics.counter(
            f"vm.compiled.{which}.by_function", {"function": fn_name}
        ).inc()
