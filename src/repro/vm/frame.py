"""Call frames and green threads."""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.function import Function
from repro.vm.values import Value


class Frame:
    """One activation: function, pc, locals, operand stack.

    ``pc`` is always an *original* program counter (the index into
    ``function.code``) — instrumentation actions and tracebacks read it
    on every engine.  ``fast_pc`` is the fast engine's resume slot: the
    index into the function's compiled handler list at which execution
    continues after a call returns or a yielded thread is rescheduled.
    The reference interpreter ignores it.

    ``handlers`` is the frame's guest-exception handler stack: TRY
    pushes a ``(handler_pc, stack_depth)`` record, ENDTRY pops it, and
    THROW unwinds to the innermost record (or to the caller when the
    list is empty). Both engines share this representation, so unwinds
    are bit-identical.
    """

    __slots__ = ("function", "pc", "locals", "stack", "fast_pc", "handlers")

    def __init__(self, function: Function, args: List[Value]):
        self.function = function
        self.pc = 0
        self.fast_pc = 0
        self.locals: List[Value] = list(args) + [0] * (
            function.num_locals - len(args)
        )
        self.stack: List[Value] = []
        self.handlers: List[tuple] = []

    def __repr__(self) -> str:
        return f"<Frame {self.function.name}@{self.pc}>"


class GreenThread:
    """A VM green thread: a stack of frames plus scheduling state.

    Threads are cooperative: the scheduler switches only at YIELDPOINT
    instructions (exactly Jalapeño's quasi-preemptive model, which is
    what makes the paper's yieldpoint optimization sound — moving
    yieldpoints into duplicated code keeps switch latency finite as long
    as the sample interval is finite).
    """

    __slots__ = ("tid", "frames", "done", "result", "io_state")

    def __init__(self, tid: int, entry: Function, args: List[Value]):
        self.tid = tid
        self.frames: List[Frame] = [Frame(entry, args)]
        self.done = False
        self.result: Optional[Value] = None
        # Per-thread pseudo-input stream seed: IO values must not
        # depend on thread interleaving, or transformed programs (whose
        # timing differs) would compute different results.
        self.io_state = 0x12345678 ^ (tid * 0x9E3779B97F4A7C15)

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def finish(self, result: Value) -> None:
        self.done = True
        self.result = result
        self.frames.clear()

    def __repr__(self) -> str:
        state = "done" if self.done else f"depth={len(self.frames)}"
        return f"<GreenThread {self.tid} {state}>"
