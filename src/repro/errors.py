"""Exception hierarchy shared by every repro subsystem.

Each layer of the toolchain raises its own subclass so callers can catch
precisely the failures they can handle (e.g. a REPL catching
:class:`FrontendError` without masking VM bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class BytecodeError(ReproError):
    """Malformed bytecode: bad operands, unknown opcodes, builder misuse."""


class VerificationError(BytecodeError):
    """A function failed stack-shape / reference verification.

    Raised by :mod:`repro.bytecode.verifier` with a message naming the
    function and program counter at fault.
    """


class AssemblerError(BytecodeError):
    """Syntax or semantic error in textual bytecode assembly."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class FrontendError(ReproError):
    """Base class for MiniJ compilation errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid character or malformed token in MiniJ source."""


class ParseError(FrontendError):
    """MiniJ source does not conform to the grammar."""


class TypeCheckError(FrontendError):
    """MiniJ source is grammatical but ill-typed or ill-scoped."""


class CFGError(ReproError):
    """Inconsistent control-flow graph (bad edges, unreachable fixups)."""


class TransformError(ReproError):
    """An instrumentation or sampling transform could not be applied."""


class VMError(ReproError):
    """Base class for runtime faults inside the virtual machine."""


class VMTrap(VMError):
    """A program-level fault: division by zero, bad array index, etc."""

    def __init__(self, message: str, function: str = "?", pc: int = -1):
        self.function = function
        self.pc = pc
        super().__init__(f"{function}@{pc}: {message}")


class StackOverflowError(VMError):
    """The call stack exceeded the VM's configured maximum depth."""


class FuelExhaustedError(VMError):
    """Execution exceeded the configured instruction budget.

    Guards tests and experiments against accidental infinite loops in
    generated code; never raised for well-behaved workloads.
    """


class HarnessError(ReproError):
    """An experiment configuration is inconsistent or unrunnable."""


class AnalysisError(ReproError):
    """The static auditor was misused (unknown rule, bad suppression,
    malformed certificate) — distinct from a *finding*, which reports a
    problem in the audited code rather than in the audit request."""
