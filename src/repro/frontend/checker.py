"""MiniJ semantic analysis.

MiniJ is dynamically typed at runtime (ints vs references trap at use),
so the checker's job is scoping and structural validity:

* classes and functions have unique names; fields are unique within a
  class **and across classes** (field names resolve to their class
  without type inference — a deliberate MiniJ simplification);
* every variable is declared before use; shadowing in nested blocks is
  allowed, redeclaration in one scope is not;
* calls and spawns name existing functions with matching arity;
* ``break``/``continue`` appear only inside loops;
* assignment targets are names, field accesses, or array elements.

Results are delivered as a :class:`CheckedProgram`: per-node slot
resolutions (side table keyed by node identity), class/function tables,
and each function's total local-slot count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import TypeCheckError
from repro.frontend import ast_nodes as ast
from repro.frontend.symbols import FunctionScope


@dataclass
class CheckedProgram:
    """The checker's output, consumed by the code generator."""

    source: ast.SourceProgram
    classes: Dict[str, ast.ClassDecl] = field(default_factory=dict)
    functions: Dict[str, ast.FuncDecl] = field(default_factory=dict)
    #: field name -> owning class name (fields are globally unique)
    field_owner: Dict[str, str] = field(default_factory=dict)
    #: id(Name node) -> local slot
    name_slots: Dict[int, int] = field(default_factory=dict)


class Checker:
    def __init__(self, source: ast.SourceProgram):
        self.result = CheckedProgram(source)
        self._scope: Optional[FunctionScope] = None
        self._loop_depth = 0

    # -- driver ------------------------------------------------------------

    def check(self) -> CheckedProgram:
        for cls in self.result.source.classes:
            self._declare_class(cls)
        for fn in self.result.source.functions:
            if fn.name in self.result.functions:
                raise TypeCheckError(
                    f"duplicate function {fn.name!r}", fn.line, fn.column
                )
            if fn.name in self.result.classes:
                raise TypeCheckError(
                    f"{fn.name!r} is both a class and a function",
                    fn.line,
                    fn.column,
                )
            self.result.functions[fn.name] = fn
        for fn in self.result.source.functions:
            self._check_function(fn)
        return self.result

    def _declare_class(self, cls: ast.ClassDecl) -> None:
        if cls.name in self.result.classes:
            raise TypeCheckError(
                f"duplicate class {cls.name!r}", cls.line, cls.column
            )
        seen = set()
        for name in cls.fields:
            if name in seen:
                raise TypeCheckError(
                    f"class {cls.name}: duplicate field {name!r}",
                    cls.line,
                    cls.column,
                )
            seen.add(name)
            owner = self.result.field_owner.get(name)
            if owner is not None:
                raise TypeCheckError(
                    f"field {name!r} declared in both {owner!r} and "
                    f"{cls.name!r} (MiniJ field names must be globally "
                    f"unique)",
                    cls.line,
                    cls.column,
                )
            self.result.field_owner[name] = cls.name
        self.result.classes[cls.name] = cls

    # -- functions --------------------------------------------------------------

    def _check_function(self, fn: ast.FuncDecl) -> None:
        if len(set(fn.params)) != len(fn.params):
            raise TypeCheckError(
                f"func {fn.name}: duplicate parameter names",
                fn.line,
                fn.column,
            )
        self._scope = FunctionScope(fn.params, fn.line, fn.column)
        self._loop_depth = 0
        assert fn.body is not None
        self._check_block(fn.body)
        fn.num_locals = self._scope.next_slot
        self._scope = None

    # -- statements ------------------------------------------------------------

    def _check_block(self, block: ast.Block) -> None:
        assert self._scope is not None
        self._scope.push()
        for stmt in block.statements:
            self._check_stmt(stmt)
        self._scope.pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._check_expr(stmt.init)
            assert self._scope is not None
            slot = self._scope.declare(stmt.name, stmt.line, stmt.column)
            self.result.name_slots[id(stmt)] = slot
        elif isinstance(stmt, ast.Assign):
            assert stmt.target is not None and stmt.value is not None
            self._check_expr(stmt.value)
            self._check_assign_target(stmt.target)
        elif isinstance(stmt, ast.If):
            assert stmt.condition is not None and stmt.then_block is not None
            self._check_expr(stmt.condition)
            self._check_block(stmt.then_block)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block)
        elif isinstance(stmt, ast.While):
            assert stmt.condition is not None and stmt.body is not None
            self._check_expr(stmt.condition)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            assert self._scope is not None and stmt.body is not None
            # The init clause scopes over condition/update/body.
            self._scope.push()
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.condition is not None:
                self._check_expr(stmt.condition)
            if stmt.update is not None:
                self._check_stmt(stmt.update)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
            self._scope.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value)
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise TypeCheckError(
                    "'break' outside a loop", stmt.line, stmt.column
                )
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise TypeCheckError(
                    "'continue' outside a loop", stmt.line, stmt.column
                )
        elif isinstance(stmt, ast.Print):
            assert stmt.value is not None
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr)
        else:  # pragma: no cover - parser produces no other statements
            raise TypeCheckError(
                f"unknown statement {type(stmt).__name__}",
                stmt.line,
                stmt.column,
            )

    def _check_assign_target(self, target: ast.Expr) -> None:
        if isinstance(target, ast.Name):
            self._resolve_name(target)
        elif isinstance(target, ast.FieldAccess):
            assert target.obj is not None
            self._check_expr(target.obj)
            self._resolve_field(target)
        elif isinstance(target, ast.Index):
            assert target.array is not None and target.index is not None
            self._check_expr(target.array)
            self._check_expr(target.index)
        else:  # pragma: no cover - parser rejects other targets
            raise TypeCheckError(
                "invalid assignment target", target.line, target.column
            )

    # -- expressions ------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.BoolLit, ast.IORead)):
            return
        if isinstance(expr, ast.Name):
            self._resolve_name(expr)
        elif isinstance(expr, ast.Binary):
            assert expr.left is not None and expr.right is not None
            self._check_expr(expr.left)
            self._check_expr(expr.right)
        elif isinstance(expr, ast.Unary):
            assert expr.operand is not None
            self._check_expr(expr.operand)
        elif isinstance(expr, (ast.Call, ast.SpawnExpr)):
            fn = self.result.functions.get(expr.callee)
            if fn is None:
                raise TypeCheckError(
                    f"call to unknown function {expr.callee!r}",
                    expr.line,
                    expr.column,
                )
            if len(expr.args) != len(fn.params):
                raise TypeCheckError(
                    f"{expr.callee!r} takes {len(fn.params)} argument(s), "
                    f"got {len(expr.args)}",
                    expr.line,
                    expr.column,
                )
            for arg in expr.args:
                self._check_expr(arg)
        elif isinstance(expr, ast.New):
            if expr.class_name not in self.result.classes:
                raise TypeCheckError(
                    f"new of unknown class {expr.class_name!r}",
                    expr.line,
                    expr.column,
                )
        elif isinstance(expr, ast.NewArray):
            assert expr.length is not None
            self._check_expr(expr.length)
        elif isinstance(expr, ast.Len):
            assert expr.array is not None
            self._check_expr(expr.array)
        elif isinstance(expr, ast.FieldAccess):
            assert expr.obj is not None
            self._check_expr(expr.obj)
            self._resolve_field(expr)
        elif isinstance(expr, ast.Index):
            assert expr.array is not None and expr.index is not None
            self._check_expr(expr.array)
            self._check_expr(expr.index)
        else:  # pragma: no cover - parser produces no other expressions
            raise TypeCheckError(
                f"unknown expression {type(expr).__name__}",
                expr.line,
                expr.column,
            )

    def _resolve_name(self, name: ast.Name) -> None:
        assert self._scope is not None
        slot = self._scope.lookup(name.ident)
        if slot is None:
            raise TypeCheckError(
                f"undefined variable {name.ident!r}", name.line, name.column
            )
        self.result.name_slots[id(name)] = slot

    def _resolve_field(self, access: ast.FieldAccess) -> None:
        owner = self.result.field_owner.get(access.field_name)
        if owner is None:
            raise TypeCheckError(
                f"unknown field {access.field_name!r}",
                access.line,
                access.column,
            )
        access.resolved_class = owner


def check(source: ast.SourceProgram) -> CheckedProgram:
    """Run semantic analysis over a parsed program."""
    return Checker(source).check()
