"""MiniJ compiler driver: source text -> runnable :class:`Program`.

Pipelines:

* :func:`compile_source` — parse, check, generate, verify, optionally
  optimize (O0/O1/O2 via :mod:`repro.opt`).
* :func:`compile_baseline` — :func:`compile_source` plus the VM
  conventions every experiment assumes: yieldpoints on entries and
  backedges (Jalapeño threading substrate) and stable call-site ids
  (profile keys). The result is the paper's "original, non-instrumented
  code" — the denominator of every overhead number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program

from repro.frontend.checker import check
from repro.frontend.codegen import generate
from repro.frontend.parser import parse


@dataclass
class CompileOptions:
    """Knobs for :func:`compile_source`."""

    entry: str = "main"
    opt_level: int = 2
    verify: bool = True


def compile_source(source: str, options: CompileOptions = None) -> Program:
    """Compile MiniJ source to bytecode (no VM conventions applied)."""
    options = options or CompileOptions()
    checked = check(parse(source))
    program = generate(checked, entry=options.entry)
    if options.verify:
        verify_program(program)
    if options.opt_level > 0:
        from repro.opt.pipeline import optimize_program

        program = optimize_program(program, level=options.opt_level)
        if options.verify:
            verify_program(program)
    return program


def compile_baseline(source: str, options: CompileOptions = None) -> Program:
    """Compile to the experiment-ready baseline: optimized code with
    yieldpoints and call-site ids. All instrumentation and sampling
    transforms start from this program, mirroring the paper's setup
    where all code is compiled at O2 before instrumentation."""
    from repro.instrument.call_edge import assign_call_site_ids
    from repro.sampling.yieldpoints import insert_yieldpoints

    program = compile_source(source, options)
    program = insert_yieldpoints(program)
    assign_call_site_ids(program)
    options = options or CompileOptions()
    if options.verify:
        verify_program(program)
    return program
