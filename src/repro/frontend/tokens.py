"""Token definitions for MiniJ."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TokenType(enum.Enum):
    # literals / identifiers
    INT = "int"
    IDENT = "ident"
    # keywords
    CLASS = "class"
    FIELD = "field"
    FUNC = "func"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    PRINT = "print"
    NEW = "new"
    NEWARRAY = "newarray"
    LEN = "len"
    IO = "io"
    SPAWN = "spawn"
    TRUE = "true"
    FALSE = "false"
    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    DOT = "."
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    SHL = "<<"
    SHR = ">>"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    BANG = "!"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    ANDAND = "&&"
    OROR = "||"
    EOF = "<eof>"


KEYWORDS = {
    "class": TokenType.CLASS,
    "field": TokenType.FIELD,
    "func": TokenType.FUNC,
    "var": TokenType.VAR,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "for": TokenType.FOR,
    "return": TokenType.RETURN,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
    "print": TokenType.PRINT,
    "new": TokenType.NEW,
    "newarray": TokenType.NEWARRAY,
    "len": TokenType.LEN,
    "io": TokenType.IO,
    "spawn": TokenType.SPAWN,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int
    value: Optional[int] = None  # for INT tokens

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.column})"
