"""The MiniJ frontend: lexer, parser, checker, code generator, driver."""

from repro.frontend.checker import CheckedProgram, check
from repro.frontend.codegen import generate
from repro.frontend.compiler import CompileOptions, compile_baseline, compile_source
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse

__all__ = [
    "tokenize",
    "Lexer",
    "parse",
    "Parser",
    "check",
    "CheckedProgram",
    "generate",
    "compile_source",
    "compile_baseline",
    "CompileOptions",
]
