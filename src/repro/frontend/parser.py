"""Recursive-descent parser for MiniJ.

Grammar sketch (statements are ``;``-terminated except blocks)::

    program    := (class_decl | func_decl)*
    class_decl := "class" IDENT "{" ("field" IDENT ";")* "}"
    func_decl  := "func" IDENT "(" params? ")" block
    block      := "{" stmt* "}"
    stmt       := var | assign-or-expr | if | while | for | return
                | break | continue | print | block
    var        := "var" IDENT ("=" expr)? ";"
    if         := "if" "(" expr ")" block ("else" (block | if))?
    while      := "while" "(" expr ")" block
    for        := "for" "(" (var | simple)? ";" expr? ";" simple? ")" block
    expr       := or-expr (short-circuit || / && above binary tiers)
    primary    := INT | true | false | IDENT | call | "(" expr ")"
                | "new" IDENT | "newarray" "(" expr ")"
                | "len" "(" expr ")" | "io" "(" INT ")"
                | "spawn" IDENT "(" args ")"
    postfix    := primary ("." IDENT | "[" expr "]")*
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenType

_BINOP_TOKENS = {
    TokenType.PIPE: "|",
    TokenType.CARET: "^",
    TokenType.AMP: "&",
    TokenType.EQ: "==",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
    TokenType.SHL: "<<",
    TokenType.SHR: ">>",
    TokenType.PLUS: "+",
    TokenType.MINUS: "-",
    TokenType.STAR: "*",
    TokenType.SLASH: "/",
    TokenType.PERCENT: "%",
}


class Parser:
    def __init__(self, source: str):
        self.tokens: List[Token] = tokenize(source)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenType) -> bool:
        return self._peek().type is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenType, context: str = "") -> Token:
        token = self._peek()
        if token.type is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r}{where}, got {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: TokenType) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- program structure ---------------------------------------------------

    def parse_program(self) -> ast.SourceProgram:
        program = ast.SourceProgram(line=1, column=1)
        while not self._at(TokenType.EOF):
            if self._at(TokenType.CLASS):
                program.classes.append(self._class_decl())
            elif self._at(TokenType.FUNC):
                program.functions.append(self._func_decl())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected 'class' or 'func', got {token.text!r}",
                    token.line,
                    token.column,
                )
        return program

    def _class_decl(self) -> ast.ClassDecl:
        start = self._expect(TokenType.CLASS)
        name = self._expect(TokenType.IDENT, "class declaration").text
        decl = ast.ClassDecl(start.line, start.column, name)
        self._expect(TokenType.LBRACE, f"class {name}")
        while not self._accept(TokenType.RBRACE):
            self._expect(TokenType.FIELD, f"class {name}")
            decl.fields.append(
                self._expect(TokenType.IDENT, "field declaration").text
            )
            self._expect(TokenType.SEMI, "field declaration")
        return decl

    def _func_decl(self) -> ast.FuncDecl:
        start = self._expect(TokenType.FUNC)
        name = self._expect(TokenType.IDENT, "function declaration").text
        decl = ast.FuncDecl(start.line, start.column, name)
        self._expect(TokenType.LPAREN, f"func {name}")
        if not self._at(TokenType.RPAREN):
            while True:
                decl.params.append(
                    self._expect(TokenType.IDENT, "parameter list").text
                )
                if not self._accept(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, f"func {name}")
        decl.body = self._block()
        return decl

    # -- statements ----------------------------------------------------------

    def _block(self) -> ast.Block:
        start = self._expect(TokenType.LBRACE)
        block = ast.Block(start.line, start.column)
        while not self._accept(TokenType.RBRACE):
            if self._at(TokenType.EOF):
                raise ParseError("unterminated block", start.line, start.column)
            block.statements.append(self._statement())
        return block

    def _statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.type
        if kind is TokenType.VAR:
            stmt = self._var_decl()
            self._expect(TokenType.SEMI, "var declaration")
            return stmt
        if kind is TokenType.IF:
            return self._if_stmt()
        if kind is TokenType.WHILE:
            return self._while_stmt()
        if kind is TokenType.FOR:
            return self._for_stmt()
        if kind is TokenType.RETURN:
            self._advance()
            value = None if self._at(TokenType.SEMI) else self._expression()
            self._expect(TokenType.SEMI, "return statement")
            return ast.Return(token.line, token.column, value)
        if kind is TokenType.BREAK:
            self._advance()
            self._expect(TokenType.SEMI, "break statement")
            return ast.Break(token.line, token.column)
        if kind is TokenType.CONTINUE:
            self._advance()
            self._expect(TokenType.SEMI, "continue statement")
            return ast.Continue(token.line, token.column)
        if kind is TokenType.PRINT:
            self._advance()
            self._expect(TokenType.LPAREN, "print statement")
            value = self._expression()
            self._expect(TokenType.RPAREN, "print statement")
            self._expect(TokenType.SEMI, "print statement")
            return ast.Print(token.line, token.column, value)
        if kind is TokenType.LBRACE:
            return self._block()
        stmt = self._simple_statement()
        self._expect(TokenType.SEMI, "statement")
        return stmt

    def _var_decl(self) -> ast.VarDecl:
        start = self._expect(TokenType.VAR)
        name = self._expect(TokenType.IDENT, "var declaration").text
        init = None
        if self._accept(TokenType.ASSIGN):
            init = self._expression()
        return ast.VarDecl(start.line, start.column, name, init)

    def _simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing ';')."""
        start = self._peek()
        expr = self._expression()
        if self._accept(TokenType.ASSIGN):
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise ParseError(
                    "invalid assignment target", start.line, start.column
                )
            value = self._expression()
            return ast.Assign(start.line, start.column, expr, value)
        return ast.ExprStmt(start.line, start.column, expr)

    def _if_stmt(self) -> ast.If:
        start = self._expect(TokenType.IF)
        self._expect(TokenType.LPAREN, "if condition")
        condition = self._expression()
        self._expect(TokenType.RPAREN, "if condition")
        then_block = self._block()
        else_block: Optional[ast.Block] = None
        if self._accept(TokenType.ELSE):
            if self._at(TokenType.IF):
                nested = self._if_stmt()
                else_block = ast.Block(
                    nested.line, nested.column, [nested]
                )
            else:
                else_block = self._block()
        return ast.If(start.line, start.column, condition, then_block, else_block)

    def _while_stmt(self) -> ast.While:
        start = self._expect(TokenType.WHILE)
        self._expect(TokenType.LPAREN, "while condition")
        condition = self._expression()
        self._expect(TokenType.RPAREN, "while condition")
        body = self._block()
        return ast.While(start.line, start.column, condition, body)

    def _for_stmt(self) -> ast.For:
        start = self._expect(TokenType.FOR)
        self._expect(TokenType.LPAREN, "for header")
        init: Optional[ast.Stmt] = None
        if not self._at(TokenType.SEMI):
            init = (
                self._var_decl()
                if self._at(TokenType.VAR)
                else self._simple_statement()
            )
        self._expect(TokenType.SEMI, "for header")
        condition = None if self._at(TokenType.SEMI) else self._expression()
        self._expect(TokenType.SEMI, "for header")
        update = None if self._at(TokenType.RPAREN) else self._simple_statement()
        self._expect(TokenType.RPAREN, "for header")
        body = self._block()
        return ast.For(start.line, start.column, init, condition, update, body)

    # -- expressions ----------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._at(TokenType.OROR):
            token = self._advance()
            right = self._and_expr()
            left = ast.Binary(token.line, token.column, "||", left, right)
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._binary_expr(0)
        while self._at(TokenType.ANDAND):
            token = self._advance()
            right = self._binary_expr(0)
            left = ast.Binary(token.line, token.column, "&&", left, right)
        return left

    def _binary_expr(self, tier: int) -> ast.Expr:
        if tier >= len(ast.PRECEDENCE):
            return self._unary_expr()
        ops = ast.PRECEDENCE[tier]
        left = self._binary_expr(tier + 1)
        while True:
            token = self._peek()
            op = _BINOP_TOKENS.get(token.type)
            if op not in ops:
                return left
            self._advance()
            right = self._binary_expr(tier + 1)
            left = ast.Binary(token.line, token.column, op, left, right)

    def _unary_expr(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            return ast.Unary(
                token.line, token.column, "-", self._unary_expr()
            )
        if token.type is TokenType.BANG:
            self._advance()
            return ast.Unary(
                token.line, token.column, "!", self._unary_expr()
            )
        return self._postfix_expr()

    def _postfix_expr(self) -> ast.Expr:
        expr = self._primary_expr()
        while True:
            if self._accept(TokenType.DOT):
                name = self._expect(TokenType.IDENT, "field access")
                expr = ast.FieldAccess(name.line, name.column, expr, name.text)
            elif self._at(TokenType.LBRACKET):
                bracket = self._advance()
                index = self._expression()
                self._expect(TokenType.RBRACKET, "array index")
                expr = ast.Index(bracket.line, bracket.column, expr, index)
            else:
                return expr

    def _primary_expr(self) -> ast.Expr:
        token = self._peek()
        kind = token.type
        if kind is TokenType.INT:
            self._advance()
            return ast.IntLit(token.line, token.column, token.value or 0)
        if kind is TokenType.TRUE:
            self._advance()
            return ast.BoolLit(token.line, token.column, True)
        if kind is TokenType.FALSE:
            self._advance()
            return ast.BoolLit(token.line, token.column, False)
        if kind is TokenType.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(TokenType.RPAREN, "parenthesized expression")
            return expr
        if kind is TokenType.NEW:
            self._advance()
            name = self._expect(TokenType.IDENT, "new expression")
            return ast.New(token.line, token.column, name.text)
        if kind is TokenType.NEWARRAY:
            self._advance()
            self._expect(TokenType.LPAREN, "newarray")
            length = self._expression()
            self._expect(TokenType.RPAREN, "newarray")
            return ast.NewArray(token.line, token.column, length)
        if kind is TokenType.LEN:
            self._advance()
            self._expect(TokenType.LPAREN, "len")
            array = self._expression()
            self._expect(TokenType.RPAREN, "len")
            return ast.Len(token.line, token.column, array)
        if kind is TokenType.IO:
            self._advance()
            self._expect(TokenType.LPAREN, "io")
            latency = self._expect(TokenType.INT, "io latency class")
            self._expect(TokenType.RPAREN, "io")
            return ast.IORead(token.line, token.column, latency.value or 1)
        if kind is TokenType.SPAWN:
            self._advance()
            callee = self._expect(TokenType.IDENT, "spawn")
            self._expect(TokenType.LPAREN, "spawn")
            args = self._call_args()
            return ast.SpawnExpr(token.line, token.column, callee.text, args)
        if kind is TokenType.IDENT:
            self._advance()
            if self._at(TokenType.LPAREN):
                self._advance()
                args = self._call_args()
                return ast.Call(token.line, token.column, token.text, args)
            return ast.Name(token.line, token.column, token.text)
        raise ParseError(
            f"unexpected token {token.text!r} in expression",
            token.line,
            token.column,
        )

    def _call_args(self) -> List[ast.Expr]:
        """Arguments after '('; consumes the closing ')'."""
        args: List[ast.Expr] = []
        if not self._at(TokenType.RPAREN):
            while True:
                args.append(self._expression())
                if not self._accept(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, "call arguments")
        return args


def parse(source: str) -> ast.SourceProgram:
    """Parse MiniJ source into an AST."""
    return Parser(source).parse_program()
