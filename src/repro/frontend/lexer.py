"""MiniJ lexer: source text -> token stream.

Supports decimal and hexadecimal (``0x``) integer literals, ``//``
line comments, and ``/* ... */`` block comments (non-nesting).
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.frontend.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR = {
    "<<": TokenType.SHL,
    ">>": TokenType.SHR,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "&&": TokenType.ANDAND,
    "||": TokenType.OROR,
}

_ONE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
    ".": TokenType.DOT,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "&": TokenType.AMP,
    "|": TokenType.PIPE,
    "^": TokenType.CARET,
    "!": TokenType.BANG,
    "<": TokenType.LT,
    ">": TokenType.GT,
}


class Lexer:
    """Single-pass lexer over MiniJ source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if not ch:
                return
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while True:
                    if not self._peek():
                        raise LexError(
                            "unterminated block comment", start_line, 0
                        )
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start : self.pos]
            if len(text) <= 2:
                raise LexError(f"malformed hex literal {text!r}", line, column)
            return Token(TokenType.INT, text, line, column, int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(
                f"identifier cannot start with a digit", line, column
            )
        text = self.source[start : self.pos]
        return Token(TokenType.INT, text, line, column, int(text))

    def _lex_word(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenType.IDENT)
        return Token(kind, text, line, column)

    def tokens(self) -> List[Token]:
        """Lex the entire source; always ends with an EOF token."""
        result: List[Token] = []
        while True:
            self._skip_trivia()
            ch = self._peek()
            if not ch:
                result.append(Token(TokenType.EOF, "", self.line, self.column))
                return result
            if ch.isdigit():
                result.append(self._lex_number())
                continue
            if ch.isalpha() or ch == "_":
                result.append(self._lex_word())
                continue
            two = ch + self._peek(1)
            if two in _TWO_CHAR:
                result.append(Token(_TWO_CHAR[two], two, self.line, self.column))
                self._advance(2)
                continue
            if ch in _ONE_CHAR:
                result.append(Token(_ONE_CHAR[ch], ch, self.line, self.column))
                self._advance()
                continue
            raise LexError(f"unexpected character {ch!r}", self.line, self.column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokens()
