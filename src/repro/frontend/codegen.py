"""MiniJ code generation: checked AST -> stack bytecode.

Straightforward one-pass emission via :class:`BytecodeBuilder`. Every
expression leaves exactly one value on the stack; expression statements
pop it. ``&&``/``||`` compile to short-circuit control flow producing
0/1. Every function gets a trailing ``push 0; ret`` so all paths
return (it is unreachable, and later dropped, when the source already
returns on every path).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.builder import BytecodeBuilder
from repro.bytecode.function import Function
from repro.bytecode.instructions import Label
from repro.bytecode.klass import Klass
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.errors import TypeCheckError
from repro.frontend import ast_nodes as ast
from repro.frontend.checker import CheckedProgram

_BINOPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&": Op.AND,
    "|": Op.OR,
    "^": Op.XOR,
    "<<": Op.SHL,
    ">>": Op.SHR,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
    "==": Op.EQ,
    "!=": Op.NE,
}


class _FunctionEmitter:
    def __init__(self, checked: CheckedProgram, fn: ast.FuncDecl):
        self.checked = checked
        self.fn = fn
        self.builder = BytecodeBuilder(
            fn.name, num_params=len(fn.params), num_locals=fn.num_locals
        )
        # (break target, continue target) per enclosing loop
        self.loop_labels: List[Tuple[Label, Label]] = []

    def emit(self) -> Function:
        assert self.fn.body is not None
        self._block(self.fn.body)
        self.builder.ret_const(0)
        return self.builder.build()

    def _slot(self, node) -> int:
        slot = self.checked.name_slots.get(id(node))
        if slot is None:  # pragma: no cover - checker guarantees resolution
            raise TypeCheckError(
                f"unresolved name in {self.fn.name}", node.line, node.column
            )
        return slot

    # -- statements ----------------------------------------------------------

    def _block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._expr(stmt.init)
            else:
                b.push(0)
            b.store(self._slot(stmt))
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            else:
                b.push(0)
            b.ret()
        elif isinstance(stmt, ast.Break):
            b.jump(self.loop_labels[-1][0])
        elif isinstance(stmt, ast.Continue):
            b.jump(self.loop_labels[-1][1])
        elif isinstance(stmt, ast.Print):
            assert stmt.value is not None
            self._expr(stmt.value)
            b.emit(Op.PRINT)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._expr(stmt.expr)
            b.emit(Op.POP)
        else:  # pragma: no cover
            raise TypeCheckError(
                f"cannot emit {type(stmt).__name__}", stmt.line, stmt.column
            )

    def _assign(self, stmt: ast.Assign) -> None:
        b = self.builder
        target = stmt.target
        assert target is not None and stmt.value is not None
        if isinstance(target, ast.Name):
            self._expr(stmt.value)
            b.store(self._slot(target))
        elif isinstance(target, ast.FieldAccess):
            assert target.obj is not None
            self._expr(target.obj)
            self._expr(stmt.value)
            b.putfield(target.resolved_class, target.field_name)
        elif isinstance(target, ast.Index):
            assert target.array is not None and target.index is not None
            self._expr(target.array)
            self._expr(target.index)
            self._expr(stmt.value)
            b.emit(Op.ASTORE)
        else:  # pragma: no cover
            raise TypeCheckError(
                "invalid assignment target", stmt.line, stmt.column
            )

    def _if(self, stmt: ast.If) -> None:
        b = self.builder
        assert stmt.condition is not None and stmt.then_block is not None
        else_label = b.new_label("else")
        end_label = b.new_label("endif")
        self._expr(stmt.condition)
        b.jz(else_label if stmt.else_block is not None else end_label)
        self._block(stmt.then_block)
        if stmt.else_block is not None:
            b.jump(end_label)
            b.label(else_label)
            self._block(stmt.else_block)
        b.label(end_label)

    def _while(self, stmt: ast.While) -> None:
        b = self.builder
        assert stmt.condition is not None and stmt.body is not None
        head = b.new_label("while")
        end = b.new_label("endwhile")
        b.label(head)
        self._expr(stmt.condition)
        b.jz(end)
        self.loop_labels.append((end, head))
        self._block(stmt.body)
        self.loop_labels.pop()
        b.jump(head)
        b.label(end)

    def _for(self, stmt: ast.For) -> None:
        b = self.builder
        assert stmt.body is not None
        head = b.new_label("for")
        cont = b.new_label("forcont")
        end = b.new_label("endfor")
        if stmt.init is not None:
            self._stmt(stmt.init)
        b.label(head)
        if stmt.condition is not None:
            self._expr(stmt.condition)
            b.jz(end)
        self.loop_labels.append((end, cont))
        self._block(stmt.body)
        self.loop_labels.pop()
        b.label(cont)
        if stmt.update is not None:
            self._stmt(stmt.update)
        b.jump(head)
        b.label(end)

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        b = self.builder
        if isinstance(expr, ast.IntLit):
            b.push(expr.value)
        elif isinstance(expr, ast.BoolLit):
            b.push(1 if expr.value else 0)
        elif isinstance(expr, ast.Name):
            b.load(self._slot(expr))
        elif isinstance(expr, ast.Binary):
            self._binary(expr)
        elif isinstance(expr, ast.Unary):
            assert expr.operand is not None
            self._expr(expr.operand)
            b.emit(Op.NEG if expr.op == "-" else Op.NOT)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._expr(arg)
            b.call(expr.callee)
        elif isinstance(expr, ast.SpawnExpr):
            for arg in expr.args:
                self._expr(arg)
            b.emit(Op.SPAWN, expr.callee)
        elif isinstance(expr, ast.New):
            b.new(expr.class_name)
        elif isinstance(expr, ast.NewArray):
            assert expr.length is not None
            self._expr(expr.length)
            b.emit(Op.NEWARRAY)
        elif isinstance(expr, ast.Len):
            assert expr.array is not None
            self._expr(expr.array)
            b.emit(Op.ALEN)
        elif isinstance(expr, ast.IORead):
            b.emit(Op.IO, expr.latency_class)
        elif isinstance(expr, ast.FieldAccess):
            assert expr.obj is not None
            self._expr(expr.obj)
            b.getfield(expr.resolved_class, expr.field_name)
        elif isinstance(expr, ast.Index):
            assert expr.array is not None and expr.index is not None
            self._expr(expr.array)
            self._expr(expr.index)
            b.emit(Op.ALOAD)
        else:  # pragma: no cover
            raise TypeCheckError(
                f"cannot emit {type(expr).__name__}", expr.line, expr.column
            )

    def _binary(self, expr: ast.Binary) -> None:
        b = self.builder
        assert expr.left is not None and expr.right is not None
        if expr.op in ("&&", "||"):
            self._short_circuit(expr)
            return
        self._expr(expr.left)
        self._expr(expr.right)
        b.emit(_BINOPS[expr.op])

    def _short_circuit(self, expr: ast.Binary) -> None:
        b = self.builder
        assert expr.left is not None and expr.right is not None
        done = b.new_label("sc_done")
        short = b.new_label("sc_short")
        self._expr(expr.left)
        if expr.op == "&&":
            b.jz(short)
            self._expr(expr.right)
            b.jz(short)
            b.push(1)
            b.jump(done)
            b.label(short)
            b.push(0)
        else:  # "||"
            b.jnz(short)
            self._expr(expr.right)
            b.jnz(short)
            b.push(0)
            b.jump(done)
            b.label(short)
            b.push(1)
        b.label(done)


def generate(checked: CheckedProgram, entry: str = "main") -> Program:
    """Emit a whole :class:`Program` from a checked AST."""
    program = Program(entry=entry)
    for cls in checked.source.classes:
        program.add_class(Klass(cls.name, cls.fields))
    for fn in checked.source.functions:
        program.add_function(_FunctionEmitter(checked, fn).emit())
    return program
