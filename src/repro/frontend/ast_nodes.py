"""MiniJ abstract syntax tree.

Nodes are plain dataclasses with source positions for diagnostics. The
tree is immutable by convention (the checker annotates via side tables,
not node mutation), except that :class:`FuncDecl` records its resolved
local-slot count after checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0
    column: int = 0


# --------------------------------------------------------------------------
# Expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class SpawnExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    class_name: str = ""


@dataclass
class NewArray(Expr):
    length: Optional[Expr] = None


@dataclass
class Len(Expr):
    array: Optional[Expr] = None


@dataclass
class IORead(Expr):
    latency_class: int = 1


@dataclass
class FieldAccess(Expr):
    obj: Optional[Expr] = None
    field_name: str = ""
    #: class name resolved by the checker (MiniJ field names are
    #: globally unique across classes, so resolution is by field name)
    resolved_class: str = ""


@dataclass
class Index(Expr):
    array: Optional[Expr] = None
    index: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Optional[Expr] = None  # Name | FieldAccess | Index
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_block: Optional[Block] = None
    else_block: Optional[Block] = None


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None       # VarDecl | Assign | None
    condition: Optional[Expr] = None  # None means "true"
    update: Optional[Stmt] = None     # Assign | None
    body: Optional[Block] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None  # None returns 0


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Print(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


# --------------------------------------------------------------------------
# Declarations


@dataclass
class ClassDecl(Node):
    name: str = ""
    fields: List[str] = field(default_factory=list)


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Optional[Block] = None
    #: filled by the checker: total local slots (params + vars)
    num_locals: int = 0


@dataclass
class SourceProgram(Node):
    classes: List[ClassDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)


#: Binary operators grouped by precedence, weakest first. ``&&``/``||``
#: are handled separately (short-circuit codegen).
PRECEDENCE: Tuple[Tuple[str, ...], ...] = (
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)
