"""Symbol tables and scopes for the MiniJ checker."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TypeCheckError


class Scope:
    """One lexical scope: variable name -> local slot."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.bindings: Dict[str, int] = {}

    def declare(self, name: str, slot: int, line: int = 0, column: int = 0) -> None:
        if name in self.bindings:
            raise TypeCheckError(
                f"variable {name!r} already declared in this scope",
                line,
                column,
            )
        self.bindings[name] = slot

    def lookup(self, name: str) -> Optional[int]:
        scope: Optional[Scope] = self
        while scope is not None:
            slot = scope.bindings.get(name)
            if slot is not None:
                return slot
            scope = scope.parent
        return None


class FunctionScope:
    """Slot allocation and nested scopes for one function body."""

    def __init__(self, params: List[str], line: int = 0, column: int = 0):
        self.next_slot = 0
        self.root = Scope()
        self.current = self.root
        for param in params:
            self.root.declare(param, self.next_slot, line, column)
            self.next_slot += 1

    def push(self) -> None:
        self.current = Scope(self.current)

    def pop(self) -> None:
        if self.current.parent is None:
            raise TypeCheckError("internal error: popping the root scope")
        self.current = self.current.parent

    def declare(self, name: str, line: int = 0, column: int = 0) -> int:
        slot = self.next_slot
        self.current.declare(name, slot, line, column)
        self.next_slot += 1
        return slot

    def lookup(self, name: str) -> Optional[int]:
        return self.current.lookup(name)
