"""Instrumentation kinds and the exhaustive-instrumentation driver."""

from repro.instrument.apply import instrument_program
from repro.instrument.base import (
    CombinedInstrumentation,
    Instrumentation,
    InstrumentationAction,
    count_instr_ops,
)
from repro.instrument.cct import (
    CCTInstrumentation,
    CCTNode,
    CCTSampleAction,
    build_cct,
    render_cct,
)
from repro.instrument.branch_bias import (
    BranchBiasInstrumentation,
    branch_biases,
    strongly_biased_branches,
)
from repro.instrument.block_profile import (
    BlockCountInstrumentation,
    CountAction,
    EdgeProfileInstrumentation,
)
from repro.instrument.call_edge import (
    CallEdgeAction,
    CallEdgeInstrumentation,
    assign_call_site_ids,
)
from repro.instrument.field_access import (
    FieldAccessAction,
    FieldAccessInstrumentation,
)
from repro.instrument.path_profile import PathProfileInstrumentation
from repro.instrument.value_profile import (
    ParameterValueInstrumentation,
    StoreValueInstrumentation,
)

__all__ = [
    "Instrumentation",
    "InstrumentationAction",
    "CombinedInstrumentation",
    "count_instr_ops",
    "instrument_program",
    "CallEdgeInstrumentation",
    "CCTInstrumentation",
    "CCTNode",
    "CCTSampleAction",
    "build_cct",
    "render_cct",
    "CallEdgeAction",
    "assign_call_site_ids",
    "FieldAccessInstrumentation",
    "FieldAccessAction",
    "BlockCountInstrumentation",
    "BranchBiasInstrumentation",
    "branch_biases",
    "strongly_biased_branches",
    "EdgeProfileInstrumentation",
    "CountAction",
    "ParameterValueInstrumentation",
    "StoreValueInstrumentation",
    "PathProfileInstrumentation",
]
