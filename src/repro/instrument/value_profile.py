"""Value profiling (Calder/Feller-style, cited by the paper as [15, 26]).

Two variants:

* :class:`ParameterValueInstrumentation` — at each function entry,
  record the values of the first *k* integer parameters. This is the
  paper's §4.3 suggestion of profiling "parameter values that can be
  used to guide specialization" with a single entry check.
* :class:`StoreValueInstrumentation` — before each STORE to a chosen
  local slot, record the value being stored (top of stack).

Keys are ``(function, site, value)`` with values clamped into a small
signed range so profiles stay bounded (real value profilers use
top-N-value tables; clamping is our bounded equivalent).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.cfg.graph import CFG
from repro.instrument.base import Instrumentation, InstrumentationAction
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM

#: Values outside [-CLAMP, CLAMP] are bucketed to +/-(CLAMP + 1).
VALUE_CLAMP = 255


def clamp_value(value) -> int:
    if not isinstance(value, int):
        return -(VALUE_CLAMP + 2)  # reference bucket
    if value > VALUE_CLAMP:
        return VALUE_CLAMP + 1
    if value < -VALUE_CLAMP:
        return -(VALUE_CLAMP + 1)
    return value


class ParamValueAction(InstrumentationAction):
    """Record the clamped values of the first *k* parameters."""

    cost = 15

    def __init__(self, function_name: str, num_params: int, profile: Profile):
        self.function_name = function_name
        self.num_params = num_params
        self.profile = profile

    def execute(self, vm: "VM", frame: "Frame") -> None:
        for index in range(self.num_params):
            self.profile.record(
                (self.function_name, index, clamp_value(frame.locals[index]))
            )

    def describe(self) -> str:
        return f"param-values {self.function_name}/{self.num_params}"


class ParameterValueInstrumentation(Instrumentation):
    """Profile parameter values at every function entry."""

    kind = "param-value"

    def __init__(self, max_params: int = 2, action_cost: int = 15):
        super().__init__()
        self.max_params = max_params
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        num = min(cfg.num_params, self.max_params)
        if num == 0:
            return
        action = ParamValueAction(cfg.name, num, self.profile)
        action.cost = self.action_cost
        self.insert_at_entry(cfg, action)


class StoreValueAction(InstrumentationAction):
    """Record the value about to be stored (top of operand stack)."""

    cost = 15

    def __init__(self, site_key, profile: Profile):
        self.site_key = site_key
        self.profile = profile

    def execute(self, vm: "VM", frame: "Frame") -> None:
        if frame.stack:
            self.profile.record(
                self.site_key + (clamp_value(frame.stack[-1]),)
            )

    def describe(self) -> str:
        return f"store-value {self.site_key!r}"


class StoreValueInstrumentation(Instrumentation):
    """Profile values written to locals (optionally one slot only)."""

    kind = "store-value"

    def __init__(self, slot: Optional[int] = None, action_cost: int = 15):
        super().__init__()
        self.slot = slot
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        for block in cfg.blocks.values():
            positions = [
                (index, ins)
                for index, ins in enumerate(block.instructions)
                if ins.op == Op.STORE
                and (self.slot is None or ins.arg == self.slot)
            ]
            for offset, (index, ins) in enumerate(positions):
                action = StoreValueAction(
                    (cfg.name, block.bid, index, ins.arg), self.profile
                )
                action.cost = self.action_cost
                self.insert_before(cfg, block.bid, index + offset, action)
