"""Call-edge instrumentation (paper §4.2, example 1).

Every method entry examines the call stack and records the call edge
``(caller, call-site id, callee)``, incrementing its counter. The paper
uses this deliberately simple, deliberately expensive implementation
(88.3% average exhaustive overhead) to show the framework absorbing the
cost; we reproduce both the mechanism (a stack walk at entry) and the
cost class (a multi-cycle action at every entry).

Call-site ids must be stable across program transforms so perfect and
sampled profiles share keys: :func:`assign_call_site_ids` stamps every
CALL instruction's ``meta`` once, right after compilation; all
transform copies inherit the stamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.cfg.graph import CFG
from repro.instrument.base import Instrumentation, InstrumentationAction
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM

#: Caller recorded for a thread's entry function (no Java-level caller).
ROOT_CALLER: Tuple[str, int] = ("<root>", 0)


def assign_call_site_ids(program: Program) -> int:
    """Stamp every CALL/SPAWN instruction with a unique site id.

    Ids are ``(function_name, ordinal)`` pairs, deterministic for a
    given program. Returns the number of sites stamped. Run this once on
    the freshly compiled program, *before* taking the baseline copy, so
    every later transform shares the stamps.
    """
    stamped = 0
    for name in program.function_names():
        fn = program.functions[name]
        ordinal = 0
        for ins in fn.code:
            if ins.op in (Op.CALL, Op.SPAWN):
                ins.meta = (name, ordinal)
                ordinal += 1
                stamped += 1
    return stamped


class CallEdgeAction(InstrumentationAction):
    """Walk one frame up the stack and count the call edge.

    Cost models the paper's implementation: inspect the caller frame's
    saved state, derive the call site, and bump a hash-table counter —
    a deliberately unoptimized stack examination. The default (115
    cycles) is calibrated so the suite-average exhaustive overhead
    matches the paper's Table 1 (88.3%); the paper's own numbers imply
    a similarly expensive per-entry operation (its call-edge overhead
    averages ~68x its per-entry check overhead, Table 1 vs Table 3).
    """

    cost = 115

    def __init__(self, callee: str, profile: Profile):
        self.callee = callee
        self.profile = profile

    def execute(self, vm: "VM", frame: "Frame") -> None:
        frames = vm.current_thread.frames
        if len(frames) >= 2:
            caller = frames[-2]
            call_ins = caller.function.code[caller.pc - 1]
            site = call_ins.meta
            if site is None:
                site = (caller.function.name, caller.pc - 1)
            key = (site[0], site[1], self.callee)
        else:
            key = (ROOT_CALLER[0], ROOT_CALLER[1], self.callee)
        self.profile.record(key)

    def describe(self) -> str:
        return f"call-edge -> {self.callee}"


class CallEdgeInstrumentation(Instrumentation):
    """Insert a :class:`CallEdgeAction` at every function entry."""

    kind = "call-edge"

    def __init__(self, action_cost: int = CallEdgeAction.cost):
        super().__init__()
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        action = CallEdgeAction(cfg.name, self.profile)
        action.cost = self.action_cost
        self.insert_at_entry(cfg, action)
