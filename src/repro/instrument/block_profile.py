"""Basic-block and intraprocedural-edge profiling.

Block counting is the cleanest probe of the framework's statistical
claim — "the basic blocks in the instrumented code must be executed
proportionally to their execution frequency in the non-instrumented
code" (§2.1) — so the test suite leans on it heavily. Edge profiling is
the classic client the paper name-checks (Ball–Larus style counters on
CFG edges), including instrumentation attached to backedges, which the
framework moves onto the duplicated-to-checking transfer edge.

Keys are minted from the *pre-transform* CFG's block ids, which are
deterministic for a given function body, so perfect and sampled
profiles are directly comparable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bytecode.program import Program
from repro.cfg.graph import CFG
from repro.instrument.base import Instrumentation, InstrumentationAction
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM


class CountAction(InstrumentationAction):
    """Increment the counter for a fixed key."""

    cost = 6

    def __init__(self, key, profile: Profile, cost: int = 6):
        self.key = key
        self.profile = profile
        self.cost = cost

    def execute(self, vm: "VM", frame: "Frame") -> None:
        self.profile.record(self.key)

    def describe(self) -> str:
        return f"count {self.key!r}"


class BlockCountInstrumentation(Instrumentation):
    """Count executions of every basic block."""

    kind = "block-count"

    def __init__(self, action_cost: int = 6):
        super().__init__()
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        for bid in sorted(cfg.blocks):
            action = CountAction(
                (cfg.name, bid), self.profile, self.action_cost
            )
            self.insert_before(cfg, bid, 0, action)


class EdgeProfileInstrumentation(Instrumentation):
    """Count traversals of every CFG edge (by edge splitting).

    Backedge counters end up on the duplicated-to-checking transfer
    edges after the sampling transform — the §2 "applicability" case.
    """

    kind = "edge-profile"

    def __init__(self, action_cost: int = 6):
        super().__init__()
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        # Snapshot the edge list before splitting mutates the graph;
        # dedupe because a conditional with both arms equal is a single
        # splittable edge.
        for src, dst in sorted(set(cfg.edges())):
            action = CountAction(
                (cfg.name, src, dst), self.profile, self.action_cost
            )
            self.insert_on_edge(cfg, src, dst, action)
