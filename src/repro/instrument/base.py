"""Instrumentation interface.

An :class:`Instrumentation` inserts ``INSTR`` instructions (each
carrying an :class:`InstrumentationAction`) into a function's CFG. That
is *exhaustive* instrumentation — exactly what a profiling author would
write without the sampling framework. The framework
(:mod:`repro.sampling`) then transforms the instrumented CFG so the
INSTR operations execute only during samples, **without the
instrumentation needing modification** — the paper's central usability
claim.

Actions are duck-typed by the VM: anything with an integer ``cost`` and
an ``execute(vm, frame)`` method works, so downstream users can write
new instrumentation kinds against this module only (see
``examples/custom_instrumentation.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import Op
from repro.cfg.graph import CFG
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bytecode.program import Program
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM


class InstrumentationAction:
    """One instrumentation operation, executed by INSTR/GUARDED_INSTR.

    Subclasses set ``cost`` (simulated cycles per execution) and
    implement :meth:`execute`. Actions are shared between the checking
    and duplicated copies of a function, so they must be stateless
    except for the profile they record into.
    """

    cost: int = 1

    def execute(self, vm: "VM", frame: "Frame") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class Instrumentation:
    """Base class for instrumentation kinds.

    Subclasses implement :meth:`instrument_cfg`, inserting INSTR
    instructions via the helpers below. Each instance owns the
    :class:`Profile` its actions record into; reuse an instance across
    runs only after calling :meth:`reset`.
    """

    #: human-readable kind name (used for profile and report labels)
    kind: str = "instrumentation"

    def __init__(self, name: Optional[str] = None):
        self.profile = Profile(name or self.kind)

    def reset(self) -> None:
        """Clear recorded profile data (between experiment runs)."""
        self.profile.clear()

    def instrument_cfg(self, cfg: CFG, program: "Program") -> None:
        """Insert INSTR instructions into *cfg* (exhaustively)."""
        raise NotImplementedError

    # -- insertion helpers -------------------------------------------------

    @staticmethod
    def insert_at_entry(cfg: CFG, action: InstrumentationAction) -> None:
        """Place an action at the very start of the function."""
        entry = cfg.entry_block()
        entry.instructions.insert(0, Instruction(Op.INSTR, action))

    @staticmethod
    def insert_before(
        cfg: CFG, bid: int, index: int, action: InstrumentationAction
    ) -> None:
        """Place an action immediately before instruction *index* of
        block *bid*."""
        cfg.block(bid).instructions.insert(index, Instruction(Op.INSTR, action))

    @staticmethod
    def insert_at_block_end(
        cfg: CFG, bid: int, action: InstrumentationAction
    ) -> None:
        """Place an action after every body instruction of *bid* (just
        before its terminator)."""
        cfg.block(bid).instructions.append(Instruction(Op.INSTR, action))

    @staticmethod
    def insert_on_edge(
        cfg: CFG, src: int, dst: int, action: InstrumentationAction
    ) -> int:
        """Split the edge ``src -> dst`` and place the action on it.

        Returns the id of the new edge block. Splitting happens *before*
        the sampling transform runs, so an action on a backedge ends up
        attached to the duplicated-to-checking transfer edge, exactly as
        §2's "instrumentation can be attached to the edge transferring
        control from the duplicated code to the checking code".
        """
        mid = cfg.split_edge(src, dst)
        mid.instructions.append(Instruction(Op.INSTR, action))
        return mid.bid


class EmptyInstrumentation(Instrumentation):
    """Inserts nothing.

    Used to measure pure framework overhead (the paper's Table 2 /
    Figure 8(A) configuration: code duplicated, checks inserted, "no
    instrumentation was inserted in the duplicated code").
    """

    kind = "none"

    def instrument_cfg(self, cfg: CFG, program: "Program") -> None:
        return None


class CombinedInstrumentation(Instrumentation):
    """Apply several instrumentation kinds in one pass.

    The paper highlights that multiple instrumentations can share one
    duplicated body and one set of checks ("recompiling the method only
    once"); combining at instrument time is how that is realized here.
    The combined profile is unused — read each part's own profile.
    """

    kind = "combined"

    def __init__(self, parts: Iterable[Instrumentation]):
        super().__init__()
        self.parts: List[Instrumentation] = list(parts)
        if not self.parts:
            raise ValueError("CombinedInstrumentation needs at least one part")

    def reset(self) -> None:
        for part in self.parts:
            part.reset()

    def instrument_cfg(self, cfg: CFG, program: "Program") -> None:
        for part in self.parts:
            part.instrument_cfg(cfg, program)


def count_instr_ops(cfg: CFG) -> int:
    """Static count of INSTR/GUARDED_INSTR operations in a CFG."""
    return sum(
        1
        for block in cfg.blocks.values()
        for ins in block.instructions
        if ins.op in (Op.INSTR, Op.GUARDED_INSTR)
    )
