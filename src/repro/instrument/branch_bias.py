"""Branch-bias profiling: taken/not-taken counts per conditional.

The classic client for intraprocedural edge profiles ([10, 11] in the
paper): superblock formation and code layout want to know which way
each branch usually goes. Implemented with the edge-splitting helper,
so under the sampling framework the counters ride along in duplicated
code like any other instrumentation.

Keys are ``(function, branch block id, "taken" | "fallthrough")``; the
block id is minted from the pre-transform CFG and therefore stable
across baseline / exhaustive / sampled variants.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.bytecode.program import Program
from repro.cfg.basic_block import CondBranch
from repro.cfg.graph import CFG
from repro.instrument.base import Instrumentation
from repro.instrument.block_profile import CountAction
from repro.profiles.profile import Profile


class BranchBiasInstrumentation(Instrumentation):
    """Count taken vs fallthrough executions of every conditional."""

    kind = "branch-bias"

    def __init__(self, action_cost: int = 6):
        super().__init__()
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        # Snapshot conditionals first: splitting adds blocks.
        conditionals: List[Tuple[int, int, int]] = [
            (bid, block.terminator.taken, block.terminator.fallthrough)
            for bid, block in sorted(cfg.blocks.items())
            if isinstance(block.terminator, CondBranch)
        ]
        for bid, taken, fallthrough in conditionals:
            if taken == fallthrough:
                # Degenerate conditional: both arms identical, a single
                # splittable edge — bias is meaningless, count it once.
                self.insert_on_edge(
                    cfg, bid, taken,
                    CountAction(
                        (cfg.name, bid, "taken"), self.profile,
                        self.action_cost,
                    ),
                )
                continue
            self.insert_on_edge(
                cfg, bid, taken,
                CountAction(
                    (cfg.name, bid, "taken"), self.profile, self.action_cost
                ),
            )
            self.insert_on_edge(
                cfg, bid, fallthrough,
                CountAction(
                    (cfg.name, bid, "fallthrough"), self.profile,
                    self.action_cost,
                ),
            )


def branch_biases(profile: Profile) -> Dict[Hashable, float]:
    """Per-branch taken fraction from a (possibly sampled) profile.

    Returns ``{(function, bid): taken / (taken + fallthrough)}`` for
    every branch with at least one observation.
    """
    totals: Dict[Tuple, List[int]] = {}
    for (function, bid, arm), count in profile.counts.items():
        entry = totals.setdefault((function, bid), [0, 0])
        if arm == "taken":
            entry[0] += count
        else:
            entry[1] += count
    return {
        key: taken / (taken + fall)
        for key, (taken, fall) in totals.items()
        if taken + fall > 0
    }


def strongly_biased_branches(
    profile: Profile, threshold: float = 0.9
) -> List[Tuple[Hashable, float]]:
    """Branches taken (or not taken) at least *threshold* of the time —
    the candidates a layout/superblock pass would act on."""
    result = []
    for key, bias in branch_biases(profile).items():
        extremity = max(bias, 1.0 - bias)
        if extremity >= threshold:
            result.append((key, bias))
    result.sort(key=lambda item: (-max(item[1], 1 - item[1]), repr(item[0])))
    return result
