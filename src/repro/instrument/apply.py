"""Exhaustive (non-sampled) instrumentation of whole programs.

This is the paper's baseline-for-comparison (Table 1): instrumentation
inserted as-is, executing on every event. The sampling framework
(:mod:`repro.sampling.framework`) is the low-overhead alternative.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program
from repro.cfg.graph import CFG
from repro.cfg.linearize import linearize
from repro.instrument.base import Instrumentation


def instrument_program(
    program: Program,
    instrumentation: Instrumentation,
    functions: Optional[Iterable[str]] = None,
    verify: bool = True,
) -> Program:
    """Return a copy of *program* with INSTR operations inserted
    exhaustively into the selected functions (default: all).

    The input program is left untouched, so baseline and instrumented
    variants can run side by side in one experiment.
    """
    result = program.copy()
    names = list(functions) if functions is not None else result.function_names()
    for name in names:
        cfg = CFG.from_function(result.function(name))
        instrumentation.instrument_cfg(cfg, result)
        fn = linearize(cfg, notes={"instrumentation": instrumentation.kind})
        result.replace_function(fn)
    if verify:
        verify_program(result)
    return result
