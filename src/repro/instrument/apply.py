"""Exhaustive (non-sampled) instrumentation of whole programs.

This is the paper's baseline-for-comparison (Table 1): instrumentation
inserted as-is, executing on every event. The sampling framework
(:mod:`repro.sampling.framework`) is the low-overhead alternative.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bytecode.function import Function
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_function, verify_program
from repro.cfg.graph import CFG
from repro.cfg.linearize import linearize
from repro.instrument.base import Instrumentation


class ExhaustiveLoader:
    """Instrument-at-load hook for exhaustively instrumented programs:
    templates materialized by LOADFN/REPLACEFN get the same INSTR
    operations as the statically instrumented functions."""

    def __init__(self, instrumentation: Instrumentation, verify: bool = True):
        self.instrumentation = instrumentation
        self.verify = verify

    def load(self, template: Function, name: str, program: Program) -> Function:
        fn = template.copy(name=name)
        cfg = CFG.from_function(fn)
        self.instrumentation.instrument_cfg(cfg, program)
        out = linearize(
            cfg, notes={"instrumentation": self.instrumentation.kind}
        )
        if self.verify:
            verify_function(out, program)
        return out


def instrument_program(
    program: Program,
    instrumentation: Instrumentation,
    functions: Optional[Iterable[str]] = None,
    verify: bool = True,
) -> Program:
    """Return a copy of *program* with INSTR operations inserted
    exhaustively into the selected functions (default: all).

    The input program is left untouched, so baseline and instrumented
    variants can run side by side in one experiment.
    """
    result = program.copy()
    names = list(functions) if functions is not None else result.function_names()
    for name in names:
        cfg = CFG.from_function(result.function(name))
        instrumentation.instrument_cfg(cfg, result)
        fn = linearize(cfg, notes={"instrumentation": instrumentation.kind})
        result.replace_function(fn)
    result.loader = ExhaustiveLoader(instrumentation, verify)
    if verify:
        verify_program(result)
    return result
