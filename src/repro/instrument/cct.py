"""Sampled calling-context-tree (CCT) approximation.

The paper cites Arnold & Sweeney's "Approximating the calling context
tree via sampling" [8] as the worked example of adapting a
sequence-sensitive profile (Ammons/Ball/Larus CCTs [3], which update a
context data structure on *every* entry and exit) to a sampling
setting: instead of tracking the context incrementally, each sample
walks the runtime stack and splices the observed call path into the
tree.

That is exactly what this instrumentation does. The action placed at
each method entry walks the frame stack up to ``max_depth`` frames and
records the path (caller chain, outermost first). Under the sampling
framework it runs only when a sample fires — which is the *intended*
deployment; exhaustively it reproduces the full (bounded-depth) CCT.

Keys are tuples of function names, outermost-first, ending at the
instrumented callee: ``("main", "parse", "scanNext")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.bytecode.program import Program
from repro.cfg.graph import CFG
from repro.instrument.base import Instrumentation, InstrumentationAction
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM

#: Cycle cost per stack frame visited during the walk.
WALK_COST_PER_FRAME = 12


class CCTSampleAction(InstrumentationAction):
    """Walk the stack and record the calling context of this entry."""

    def __init__(self, callee: str, profile: Profile, max_depth: int):
        self.callee = callee
        self.profile = profile
        self.max_depth = max_depth
        # Conservative static cost: a full-depth walk. The VM charges a
        # fixed per-action cost, so we bill the configured bound.
        self.cost = WALK_COST_PER_FRAME * max_depth

    def execute(self, vm: "VM", frame: "Frame") -> None:
        frames = vm.current_thread.frames
        start = max(0, len(frames) - self.max_depth)
        path = tuple(f.function.name for f in frames[start:])
        self.profile.record(path)

    def describe(self) -> str:
        return f"cct-sample {self.callee} depth<={self.max_depth}"


class CCTInstrumentation(Instrumentation):
    """Record bounded-depth calling contexts at every method entry."""

    kind = "cct"

    def __init__(self, max_depth: int = 8):
        super().__init__()
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        self.insert_at_entry(
            cfg, CCTSampleAction(cfg.name, self.profile, self.max_depth)
        )


class CCTNode:
    """A node of the reconstructed calling context tree."""

    __slots__ = ("name", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.children: Dict[str, "CCTNode"] = {}

    def child(self, name: str) -> "CCTNode":
        node = self.children.get(name)
        if node is None:
            node = CCTNode(name)
            self.children[name] = node
        return node

    def total_descendant_count(self) -> int:
        total = self.count
        for child in self.children.values():
            total += child.total_descendant_count()
        return total


def build_cct(profile: Profile, root_name: str = "<root>") -> CCTNode:
    """Splice the sampled paths into a tree (the [8] reconstruction).

    Each recorded path contributes one count at its leaf; interior
    counts are the implied pass-throughs, recoverable via
    :meth:`CCTNode.total_descendant_count`.
    """
    root = CCTNode(root_name)
    for path, count in sorted(profile.counts.items()):
        node = root
        for name in path:
            node = node.child(name)
        node.count += count
    return root


def render_cct(
    node: CCTNode, indent: int = 0, min_count: int = 1
) -> List[str]:
    """Readable tree rendering, heaviest subtrees first."""
    lines: List[str] = []
    if indent:
        lines.append(
            f"{'  ' * (indent - 1)}{node.name} "
            f"[{node.count}/{node.total_descendant_count()}]"
        )
    ordered = sorted(
        node.children.values(),
        key=lambda child: (-child.total_descendant_count(), child.name),
    )
    for child in ordered:
        if child.total_descendant_count() >= min_count:
            lines.extend(render_cct(child, indent + 1, min_count))
    return lines
