"""Ball–Larus intraprocedural path profiling (paper reference [11]).

Path profiling is the paper's example of instrumentation whose *design*
predates the framework but whose cost (their citation reports up to
~30-50% overhead) kept it offline. The encoding:

* Remove backedges to get the function's DAG.
* ``numpaths(v)`` = 1 for DAG sinks, else the sum over successors; each
  DAG edge ``v -> w`` gets the increment that makes every v-to-sink
  path sum unique in ``[0, numpaths(v))``.
* A per-frame *path register* (a dedicated local slot allocated by the
  instrumentation) is reset at every DAG source (function entry and
  loop headers), incremented on nonzero-value edges, and recorded at
  every DAG sink (returns and backedge sources).

This reset/record placement is deliberately per-iteration, which makes
the profile *sampling-compatible*: a sample that enters duplicated code
at a loop-header check observes complete header-to-backedge paths — the
§2 "monitoring N consecutive loop iterations" discussion specialized to
N = 1.

Path keys are ``(function, start block id, path number)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.bytecode.program import Program
from repro.cfg.basic_block import Halt, Return
from repro.cfg.graph import CFG
from repro.cfg.loops import sampling_backedges
from repro.errors import TransformError
from repro.instrument.base import Instrumentation, InstrumentationAction
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM

_START_SHIFT = 32
_PATH_MASK = (1 << _START_SHIFT) - 1


class PathResetAction(InstrumentationAction):
    """Path register := (start block id << 32)."""

    cost = 1

    def __init__(self, slot: int, start_bid: int):
        self.slot = slot
        self.start_value = start_bid << _START_SHIFT

    def execute(self, vm: "VM", frame: "Frame") -> None:
        frame.locals[self.slot] = self.start_value

    def describe(self) -> str:
        return f"path-reset r{self.slot} start=B{self.start_value >> _START_SHIFT}"


class PathIncAction(InstrumentationAction):
    """Path register += edge increment."""

    cost = 1

    def __init__(self, slot: int, increment: int):
        self.slot = slot
        self.increment = increment

    def execute(self, vm: "VM", frame: "Frame") -> None:
        frame.locals[self.slot] += self.increment

    def describe(self) -> str:
        return f"path-inc r{self.slot} += {self.increment}"


class PathRecordAction(InstrumentationAction):
    """Record (function, start, path number) from the path register."""

    cost = 8

    def __init__(self, slot: int, function_name: str, profile: Profile):
        self.slot = slot
        self.function_name = function_name
        self.profile = profile

    def execute(self, vm: "VM", frame: "Frame") -> None:
        register = frame.locals[self.slot]
        if not isinstance(register, int):
            return
        self.profile.record(
            (
                self.function_name,
                register >> _START_SHIFT,
                register & _PATH_MASK,
            )
        )

    def describe(self) -> str:
        return f"path-record r{self.slot}"


def _topological_order(
    nodes: Set[int], dag_succs: Dict[int, List[int]]
) -> List[int]:
    """Kahn's algorithm; raises TransformError on a cycle (irreducible
    flow survived backedge removal)."""
    indegree = {bid: 0 for bid in nodes}
    for src in nodes:
        for dst in dag_succs.get(src, ()):
            indegree[dst] += 1
    ready = sorted(bid for bid, deg in indegree.items() if deg == 0)
    order: List[int] = []
    while ready:
        bid = ready.pop()
        order.append(bid)
        for dst in dag_succs.get(bid, ()):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                ready.append(dst)
    if len(order) != len(nodes):
        raise TransformError("path profiling requires a reducible CFG")
    return order


class PathProfileInstrumentation(Instrumentation):
    """Ball–Larus path profiling over every instrumented function."""

    kind = "path-profile"

    def __init__(self, record_cost: int = 8):
        super().__init__()
        self.record_cost = record_cost
        #: per-function numpaths at entry, for tests/diagnostics
        self.num_paths: Dict[str, int] = {}

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        nodes = cfg.reachable()
        back = set(sampling_backedges(cfg))
        dag_succs: Dict[int, List[int]] = {bid: [] for bid in nodes}
        dag_edges: List[Tuple[int, int]] = []
        for src in nodes:
            for dst in cfg.block(src).successors():
                if (src, dst) in back:
                    continue
                if dst in dag_succs[src]:
                    # A conditional with both arms equal is one edge.
                    continue
                dag_succs[src].append(dst)
                dag_edges.append((src, dst))

        order = _topological_order(nodes, dag_succs)
        numpaths: Dict[int, int] = {}
        edge_value: Dict[Tuple[int, int], int] = {}
        for bid in reversed(order):
            succs = dag_succs[bid]
            if not succs:
                numpaths[bid] = 1
                continue
            acc = 0
            for dst in succs:
                edge_value[(bid, dst)] = acc
                acc += numpaths[dst]
            numpaths[bid] = acc
        self.num_paths[cfg.name] = numpaths.get(cfg.entry, 1)

        # Allocate the path register.
        slot = cfg.num_locals
        cfg.num_locals += 1

        headers = sorted({dst for _, dst in back})
        starts = [cfg.entry] + [h for h in headers if h != cfg.entry]

        # Resets at every DAG source (entry + loop headers).
        for start in starts:
            self.insert_before(cfg, start, 0, PathResetAction(slot, start))

        # Records at returns/halts...
        for bid in sorted(nodes):
            block = cfg.block(bid)
            if isinstance(block.terminator, (Return, Halt)):
                record = PathRecordAction(slot, cfg.name, self.profile)
                record.cost = self.record_cost
                self.insert_at_block_end(cfg, bid, record)
        # ...and on backedges (split so only the looping arm records).
        for src, dst in sorted(back):
            record = PathRecordAction(slot, cfg.name, self.profile)
            record.cost = self.record_cost
            self.insert_on_edge(cfg, src, dst, record)

        # Increments on nonzero-value DAG edges. Zero-increment edges
        # need no instrumentation — the Ball–Larus trick that makes the
        # common path free.
        for (src, dst), value in sorted(edge_value.items()):
            if value == 0:
                continue
            if len(dag_succs[src]) == 1:
                # Only successor: increment can live at the block end.
                self.insert_at_block_end(
                    cfg, src, PathIncAction(slot, value)
                )
            else:
                self.insert_on_edge(
                    cfg, src, dst, PathIncAction(slot, value)
                )
    # NOTE: header resets must run after a backedge's record; that holds
    # because the record lives on the (split) backedge itself and the
    # reset at the header's index 0 executes on re-entry.
