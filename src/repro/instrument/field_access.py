"""Field-access instrumentation (paper §4.2, example 2).

A counter is maintained per ``(class, field, kind)`` where kind is
``get`` or ``put``; every GETFIELD/PUTFIELD is instrumented to bump its
counter. The paper motivates this with data-layout optimizations and
notes its exhaustive overhead averages 60.4%; the per-access action cost
here models its "two loads, an increment, and a store" remark — which is
also why No-Duplication barely helps for this instrumentation (the
guard costs as much as the operation, Table 3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.cfg.graph import CFG
from repro.instrument.base import Instrumentation, InstrumentationAction
from repro.profiles.profile import Profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.frame import Frame
    from repro.vm.interpreter import VM


class FieldAccessAction(InstrumentationAction):
    """Bump the counter for one static field-access site."""

    cost = 6

    def __init__(self, class_name: str, field: str, kind: str, profile: Profile):
        self.key = (class_name, field, kind)
        self.profile = profile

    def execute(self, vm: "VM", frame: "Frame") -> None:
        self.profile.record(self.key)

    def describe(self) -> str:
        return f"field-access {self.key[0]}.{self.key[1]} ({self.key[2]})"


class FieldAccessInstrumentation(Instrumentation):
    """Instrument every GETFIELD/PUTFIELD with a counter bump.

    The action is inserted immediately *before* the access it profiles,
    so under No-Duplication the guard wraps just the instrumentation
    (the access itself always executes), matching Figure 6.
    """

    kind = "field-access"

    def __init__(self, action_cost: int = FieldAccessAction.cost):
        super().__init__()
        self.action_cost = action_cost

    def instrument_cfg(self, cfg: CFG, program: Program) -> None:
        for block in cfg.blocks.values():
            # Collect insertion positions first: inserting while
            # scanning would shift indices.
            positions = [
                (index, ins)
                for index, ins in enumerate(block.instructions)
                if ins.op in (Op.GETFIELD, Op.PUTFIELD)
            ]
            for offset, (index, ins) in enumerate(positions):
                class_name, field = ins.arg
                kind = "get" if ins.op == Op.GETFIELD else "put"
                action = FieldAccessAction(
                    class_name, field, kind, self.profile
                )
                action.cost = self.action_cost
                self.insert_before(cfg, block.bid, index + offset, action)
