"""``pbob`` — analog of IBM's pBOB (portable Business Object Benchmark).

Character: TPC-C-flavoured transaction processing on several warehouse
threads — moderate call density (72.3% call-edge in Table 1), light
field traffic (20.2%), and multithreading. Each teller thread runs its
own warehouse (disjoint data, so the checksum is schedule-independent);
transactions mix stock updates, order placement, and payment math.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Warehouse {
    field wid; field worders; field wlines; field wunits; field wcash; field wydone;
}

func nextRand(seed) {
    return (seed * 48271) % 2147483647;
}

func pickItem(seed, nitems) {
    // non-uniform: favour low item ids like TPC-C's NURand
    var a = (seed >> 3) % nitems;
    var b = (seed >> 9) % nitems;
    if (a < b) { return a; }
    return b;
}

func newOrder(w, stock, nitems, seed) {
    var lines = 3 + seed % 4;
    var total = 0;
    for (var l = 0; l < lines; l = l + 1) {
        seed = nextRand(seed);
        var item = pickItem(seed, nitems);
        var qty = 1 + seed % 5;
        if (stock[item] < qty) {
            stock[item] = stock[item] + 50; // restock
        }
        stock[item] = stock[item] - qty;
        w.wlines = w.wlines + 1;
        w.wunits = w.wunits + qty;
        total = total + qty * (item % 97 + 1);
    }
    w.worders = w.worders + 1;
    return total;
}

func payment(w, amount) {
    // authorization round-trip: long-latency external call
    var auth = io(2);
    w.wcash = (w.wcash + amount + auth % 13) % 1000000007;
    return w.wcash;
}

func stockLevel(stock, nitems, threshold) {
    var low = 0;
    for (var i = 0; i < nitems; i = i + 1) {
        if (stock[i] < threshold) {
            low = low + 1;
        }
    }
    return low;
}

func runTeller(w, transactions, nitems) {
    var stock = newarray(nitems);
    for (var i = 0; i < nitems; i = i + 1) {
        stock[i] = 40 + (i * 7) % 60;
    }
    var seed = 1000 + w.wid * 131;
    var result = 0;
    for (var t = 0; t < transactions; t = t + 1) {
        seed = nextRand(seed);
        var kind = seed % 10;
        if (kind < 5) {
            result = (result + newOrder(w, stock, nitems, seed)) % 1000000007;
        } else {
            if (kind < 9) {
                result = (result + payment(w, seed % 5000)) % 1000000007;
            } else {
                result = (result + stockLevel(stock, nitems, 30)) % 1000000007;
            }
        }
    }
    w.wydone = result;
    return result;
}

func spawnTeller(w, transactions, nitems) {
    runTeller(w, transactions, nitems);
    return 0;
}

func main() {
    var transactions = 60 * __SCALE__;
    var nitems = 64;
    // two teller threads on their own warehouses, plus main's own
    var w1 = new Warehouse; w1.wid = 1;
    var w2 = new Warehouse; w2.wid = 2;
    var w0 = new Warehouse; w0.wid = 0;
    spawn spawnTeller(w1, transactions, nitems);
    spawn spawnTeller(w2, transactions, nitems);
    var checksum = runTeller(w0, transactions, nitems);
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="pbob",
        paper_name="pBOB",
        description="TPC-C-style teller threads on disjoint warehouses",
        source=SOURCE,
        # Raised 1 -> 10 once the fast engine landed: ~10x the
        # dynamic checks per cell at roughly the old wall cost.
        default_scale=10,
    )
)
