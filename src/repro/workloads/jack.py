"""``jack`` — analog of SPECjvm98 _228_jack (a parser generator).

Character: token scanning and table-driven state machines with heavy
per-character state-object field traffic (the paper's field-access row
for _228_jack is 108.7%, its highest) and comparatively few calls
(34.3%). The analog repeatedly scans a synthetic grammar text, tracking
scanner state, line/column, and token statistics in object fields
updated on (almost) every character.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Lexer {
    field lpos; field lline; field lcol; field lstate;
    field lidents; field lnums; field lpuncts; field lerrors; field lsum;
}

class Token {
    field tkind; field tline; field tcol;
}

// char classes: 1 letter, 2 digit, 3 space, 4 newline, 5 punct

func buildClassTable(ctab) {
    // table-driven scanner: one classification table built up front
    for (var c = 0; c < len(ctab); c = c + 1) {
        if (c < 10) { ctab[c] = 2; }
        else {
            if (c < 36) { ctab[c] = 1; }
            else {
                if (c == 36) { ctab[c] = 3; }
                else {
                    if (c == 37) { ctab[c] = 4; }
                    else { ctab[c] = 5; }
                }
            }
        }
    }
    return len(ctab);
}

func startToken(lx, cls) {
    // token-boundary bookkeeping (called per token, not per char);
    // allocates a Token record per boundary, like the Java version's
    // per-token string/Token churn
    var t = new Token;
    t.tkind = cls;
    t.tline = lx.lline;
    t.tcol = lx.lcol;
    if (cls == 1) {
        lx.lstate = 1;
        lx.lidents = lx.lidents + 1;
    }
    if (cls == 2) {
        lx.lstate = 2;
        lx.lnums = lx.lnums + 1;
    }
    if (cls == 5) {
        lx.lpuncts = lx.lpuncts + 1;
    }
    return t.tkind;
}

func scanText(lx, text, n, ctab) {
    // per-character hot path: table lookup + state-machine step, all
    // state held in lexer fields (the Java TokenEngine does exactly this)
    for (var i = 0; i < n; i = i + 1) {
        var c = text[i];
        var cls = ctab[c];
        if (cls == 4) {
            lx.lline = lx.lline + 1;
            lx.lcol = 0;
        } else {
            lx.lcol = lx.lcol + 1;
        }
        if (lx.lstate == 0) {
            startToken(lx, cls);
        } else {
            if (lx.lstate == 1 && cls != 1 && cls != 2) { lx.lstate = 0; }
            if (lx.lstate == 2 && cls != 2) {
                if (cls == 1) { lx.lerrors = lx.lerrors + 1; }
                lx.lstate = 0;
            }
        }
        lx.lsum = (lx.lsum * 7 + c + cls) % 1000003;
    }
    return lx.lsum;
}

func main() {
    var n = 260 * __SCALE__;
    var text = newarray(n);
    var seed = 31337;
    for (var i = 0; i < n; i = i + 1) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        text[i] = (seed >> 16) % 40;
    }
    var ctab = newarray(40);
    buildClassTable(ctab);
    // jack famously parses its own grammar 16 times; we scan 4 passes
    var checksum = 0;
    for (var pass = 0; pass < 4; pass = pass + 1) {
        var lx = new Lexer;
        scanText(lx, text, n, ctab);
        checksum = (checksum + lx.lsum + lx.lidents * 31
                    + lx.lnums * 17 + lx.lpuncts * 7
                    + lx.lerrors * 3 + lx.lline) % 1000000007;
    }
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="jack",
        paper_name="_228_jack",
        description="state-machine scanner: per-char field traffic",
        source=SOURCE,
    )
)
