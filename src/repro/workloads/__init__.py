"""The benchmark suite: ten paper benchmark analogs plus the
dynamic-code workloads (``dynload``, ``osr``)."""

from repro.workloads.suite import (
    Workload,
    all_workloads,
    get_workload,
    paper_workload_names,
    prepare_baseline,
    register,
    workload_names,
)

__all__ = [
    "Workload",
    "register",
    "get_workload",
    "paper_workload_names",
    "prepare_baseline",
    "workload_names",
    "all_workloads",
]
