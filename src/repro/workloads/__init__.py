"""The ten-workload benchmark suite (paper benchmark analogs)."""

from repro.workloads.suite import (
    Workload,
    all_workloads,
    get_workload,
    register,
    workload_names,
)

__all__ = [
    "Workload",
    "register",
    "get_workload",
    "workload_names",
    "all_workloads",
]
