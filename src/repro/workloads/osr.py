"""``osr`` — tiered kernel with on-stack replacement.

Character: an adaptive system (Jalapeño's recompilation loop) swaps a
method's body while frames are live. The kernel starts in its tier-1
body, counts its own iterations, and — once "hot" — replaces itself
with the tier-2 template mid-loop (``REPLACEFN`` from inside the
function being replaced). The live frame migrates at the next
``OSRPOINT``: locals are remapped and execution continues in the new
body. The driver periodically re-installs tier 1 ("deoptimization"),
so the run performs many replace → OSR → deopt cycles and the
instrument-at-load path re-transforms each arriving body.

Hand-built with :class:`BytecodeBuilder`; see ``dynload`` for why.
"""

from repro.bytecode.builder import BytecodeBuilder
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.workloads.suite import Workload, register

MODULUS = 1000000007
HOT = 13  # iteration at which tier 1 requests its own replacement


def _build_kernel(name: str, tier: int):
    """kernel(n): loop i in 0..n accumulating a per-tier mix. Tier 1
    self-replaces at i == HOT; both tiers carry OSRPOINT 1 at the loop
    head so a migrating frame has a landing site."""
    b = BytecodeBuilder(name, num_params=1)
    i = b.new_local()
    acc = b.new_local()
    loop, done = b.new_label("loop"), b.new_label("done")
    b.push(0).store(i).push(0).store(acc)
    b.label(loop)
    b.osrpoint(1)
    b.load(i).load(0).emit(Op.LT).jz(done)
    if tier == 1:
        cold = b.new_label("cold")
        b.load(i).push(HOT).emit(Op.NE).jnz(cold)
        b.replacefn("kernel", "kernel_v2").emit(Op.POP)
        b.label(cold)
        # tier-1 mix: acc = (acc + i*i + 7) % 65537
        b.load(acc).load(i).load(i).emit(Op.MUL).emit(Op.ADD)
        b.push(7).emit(Op.ADD).push(65537).emit(Op.MOD).store(acc)
    else:
        # tier-2 mix: acc = (acc + 5i + 11) % 65537
        b.load(acc).load(i).push(5).emit(Op.MUL).emit(Op.ADD)
        b.push(11).emit(Op.ADD).push(65537).emit(Op.MOD).store(acc)
    b.load(i).push(1).emit(Op.ADD).store(i)
    b.jump(loop)
    b.label(done)
    b.load(acc).ret()
    return b.build()


def _build_main(scale: int):
    rounds = 60 * scale
    b = BytecodeBuilder("main", num_params=0)
    acc = b.new_local()
    r = b.new_local()
    loop, done = b.new_label("loop"), b.new_label("done")
    no_deopt = b.new_label("no_deopt")
    b.push(5).store(acc).push(0).store(r)
    b.label(loop)
    b.load(r).push(rounds).emit(Op.LT).jz(done)
    # deopt every 10 rounds: reinstall tier 1, which will get hot and
    # OSR back to tier 2 during its next invocation
    b.load(r).push(10).emit(Op.MOD).jnz(no_deopt)
    b.load(acc).replacefn("kernel", "kernel_v1").emit(Op.ADD).store(acc)
    b.label(no_deopt)
    # acc = (acc * 31 + kernel(40 + r % 9) + r) % MODULUS
    b.load(acc).push(31).emit(Op.MUL)
    b.push(40).load(r).push(9).emit(Op.MOD).emit(Op.ADD)
    b.call("kernel").emit(Op.ADD)
    b.load(r).emit(Op.ADD).push(MODULUS).emit(Op.MOD).store(acc)
    b.load(r).push(1).emit(Op.ADD).store(r)
    b.jump(loop)
    b.label(done)
    b.load(acc).emit(Op.PRINT)
    b.load(acc).ret()
    return b.build()


def build(scale: int) -> Program:
    program = Program(
        [_build_main(scale), _build_kernel("kernel", tier=1)],
        [],
        "main",
        loadables=[
            _build_kernel("kernel_v1", tier=1),
            _build_kernel("kernel_v2", tier=2),
        ],
    )
    return program


WORKLOAD = register(
    Workload(
        name="osr",
        paper_name="(on-stack replacement)",
        description="tiered kernel: REPLACEFN mid-loop + OSR frame remap",
        builder=build,
    )
)
