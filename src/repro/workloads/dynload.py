"""``dynload`` — dynamic class loading with exception-heavy plugins.

Character: the paper's framework targets Jalapeño, where code arrives
*while the program runs* (dynamic class loading) and must be
instrumented at load time. This workload is a plugin host: the main
loop materializes plugin functions on demand with ``LOADFN`` (the
second and later loads are no-ops, as a class loader's cache would
make them), periodically swaps the hot plugin's implementation with
``REPLACEFN``, and calls a risky plugin whose guest exceptions unwind
across frame and duplicated/checking-code boundaries (``TRY`` /
``THROW`` / ``ENDTRY``). One loaded plugin loads another — dynamic
code loading dynamic code.

MiniJ has no syntax for the dynamic-code opcodes, so the program is
hand-built with :class:`BytecodeBuilder` and normalized through
:func:`repro.workloads.suite.prepare_baseline`.
"""

from repro.bytecode.builder import BytecodeBuilder
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.workloads.suite import Workload, register

MODULUS = 1000000007


def _build_plug_mix(name: str, mult: int, bias: int):
    """Plugin template: an 8-iteration mixing loop — backedges inside
    dynamically loaded code, so backedge checks land there at load
    time."""
    b = BytecodeBuilder(name, num_params=2)
    s = b.new_local()
    j = b.new_local()
    loop, done = b.new_label("loop"), b.new_label("done")
    b.push(0).store(s).push(0).store(j)
    b.label(loop)
    b.load(j).push(8).emit(Op.LT).jz(done)
    # s = (s * mult + a + j * b + bias) % 65537
    b.load(s).push(mult).emit(Op.MUL)
    b.load(0).emit(Op.ADD)
    b.load(j).load(1).emit(Op.MUL).emit(Op.ADD)
    b.push(bias).emit(Op.ADD)
    b.push(65537).emit(Op.MOD).store(s)
    b.load(j).push(1).emit(Op.ADD).store(j)
    b.jump(loop)
    b.label(done)
    b.load(s).ret()
    return b.build()


def _build_plug_thrower():
    """plug_thrower(x): returns x + 9 for even x, throws 2x + 1 for
    odd x — the throw unwinds this frame into plug_risky's handler."""
    b = BytecodeBuilder("plug_thrower", num_params=1)
    odd = b.new_label("odd")
    b.load(0).push(2).emit(Op.MOD).jnz(odd)
    b.load(0).push(9).emit(Op.ADD).ret()
    b.label(odd)
    b.load(0).push(2).emit(Op.MUL).push(1).emit(Op.ADD).throw()
    return b.build()


def _build_plug_risky():
    """plug_risky(r): by r % 7 either throws to the *caller's* handler,
    loads and calls plug_thrower under a local handler, or returns a
    plain value."""
    b = BytecodeBuilder("plug_risky", num_params=1)
    t = b.new_local()
    not3, not5 = b.new_label("not3"), b.new_label("not5")
    handler = b.new_label("handler")
    b.load(0).push(7).emit(Op.MOD).store(t)
    b.load(t).push(3).emit(Op.NE).jnz(not3)
    # throw 13r + 5 — no local handler: unwinds into main
    b.load(0).push(13).emit(Op.MUL).push(5).emit(Op.ADD).throw()
    b.label(not3)
    # loaded code loading more code
    b.loadfn("plug_thrower").emit(Op.POP)
    b.load(t).push(5).emit(Op.NE).jnz(not5)
    b.try_(handler)
    b.load(0).call("plug_thrower")
    b.endtry()
    b.ret()
    b.label(handler)
    # caught value from plug_thrower
    b.push(1).emit(Op.ADD).ret()
    b.label(not5)
    b.load(0).push(3).emit(Op.MUL).push(1).emit(Op.ADD).ret()
    return b.build()


def _build_main(scale: int):
    rounds = 120 * scale
    b = BytecodeBuilder("main", num_params=0)
    acc = b.new_local()
    r = b.new_local()
    loop, done = b.new_label("loop"), b.new_label("done")
    no_v2, no_v1 = b.new_label("no_v2"), b.new_label("no_v1")
    handler, cont = b.new_label("handler"), b.new_label("cont")
    b.push(17).store(acc).push(0).store(r)
    b.label(loop)
    b.load(r).push(rounds).emit(Op.LT).jz(done)
    # lazy loads: 1 the first time, 0 after — like a class-loader cache
    b.load(acc).loadfn("plug_mix").emit(Op.ADD)
    b.loadfn("plug_risky").emit(Op.ADD).store(acc)
    # re-tier the mixer every 40 rounds: v2 at r%40==20, back at r%40==0
    b.load(r).push(40).emit(Op.MOD).push(20).emit(Op.NE).jnz(no_v2)
    b.load(acc).replacefn("plug_mix", "plug_mix_v2").emit(Op.ADD).store(acc)
    b.label(no_v2)
    b.load(r).push(40).emit(Op.MOD).jnz(no_v1)
    b.load(acc).replacefn("plug_mix", "plug_mix").emit(Op.ADD).store(acc)
    b.label(no_v1)
    # acc = (acc * 3 + plug_mix(acc % 9973, r)) % MODULUS
    b.load(acc).push(3).emit(Op.MUL)
    b.load(acc).push(9973).emit(Op.MOD)
    b.load(r).call("plug_mix")
    b.emit(Op.ADD).push(MODULUS).emit(Op.MOD).store(acc)
    # risky plugin under a handler: catches throws from one or two
    # frames down
    b.try_(handler)
    b.load(r).call("plug_risky")
    b.endtry()
    b.load(acc).emit(Op.ADD).push(MODULUS).emit(Op.MOD).store(acc)
    b.jump(cont)
    b.label(handler)
    # caught value on the stack
    b.push(7).emit(Op.ADD)
    b.load(acc).emit(Op.ADD).push(MODULUS).emit(Op.MOD).store(acc)
    b.label(cont)
    b.load(r).push(1).emit(Op.ADD).store(r)
    b.jump(loop)
    b.label(done)
    b.load(acc).emit(Op.PRINT)
    b.load(acc).ret()
    return b.build()


def build(scale: int) -> Program:
    program = Program(
        [_build_main(scale)],
        [],
        "main",
        loadables=[
            _build_plug_mix("plug_mix", 31, 3),
            _build_plug_mix("plug_mix_v2", 37, 11),
            _build_plug_risky(),
            _build_plug_thrower(),
        ],
    )
    return program


WORKLOAD = register(
    Workload(
        name="dynload",
        paper_name="(dynamic loading)",
        description="plugin host: LOADFN/REPLACEFN + guest exceptions",
        builder=build,
    )
)
