"""``mtrt`` — analog of SPECjvm98 _227_mtrt (multi-threaded raytracer).

Character: two worker threads ray-marching over halves of an image
plane, intersecting rays against spheres held in objects with x/y/z/r
fields, through a stack of small vector-math functions (the paper's
call-edge row is 122.2%). Threading exercises the yieldpoint scheduler:
the workers only interleave at yieldpoints, and under the
Jalapeño-specific optimization, only when samples are taken.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Sphere { field sx; field sy; field sz; field sr; }
class Scene { field spheres; field nspheres; field img; field acc1; field acc2; }
class Tracer { field trays; field ttests; field thits; field tshades; }
class Ray { field rox; field roy; field rdx; field rdy; }

func dot3(ax, ay, az, bx, by, bz) {
    return ax * bx + ay * by + az * bz;
}

func intersect(s, ox, oy, dx, dy) {
    // fixed-point ray/sphere test in the z=plane slice
    var cx = s.sx - ox;
    var cy = s.sy - oy;
    var proj = dot3(cx, cy, 0, dx, dy, 0);
    if (proj <= 0) { return 0 - 1; }
    var d2 = dot3(cx, cy, 0, cx, cy, 0) - (proj * proj) / 4096;
    var r2 = s.sr * s.sr;
    if (d2 > r2) { return 0 - 1; }
    return proj - (r2 - d2) / 64;
}

func shade(hit, depth) {
    if (hit < 0) { return 10; }
    var base = 255 - (hit % 200);
    if (depth > 0 && base > 128) {
        return (base + shade(hit / 2, depth - 1)) / 2;
    }
    return base;
}

func traceRay(scene, tr, ox, oy, dx, dy) {
    var ray = new Ray;
    ray.rox = ox;
    ray.roy = oy;
    ray.rdx = dx;
    ray.rdy = dy;
    var best = 0 - 1;
    var spheres = scene.spheres;
    tr.trays = tr.trays + 1;
    for (var i = 0; i < scene.nspheres; i = i + 1) {
        tr.ttests = tr.ttests + 1;
        var hit = intersect(spheres[i], ray.rox, ray.roy, ray.rdx, ray.rdy);
        if (hit >= 0 && (best < 0 || hit < best)) {
            best = hit;
            tr.thits = tr.thits + 1;
        }
    }
    tr.tshades = tr.tshades + 1;
    return shade(best, 2);
}

func renderRows(scene, y0, y1, w, slot) {
    var img = scene.img;
    var tr = new Tracer;
    var acc = 0;
    for (var y = y0; y < y1; y = y + 1) {
        for (var x = 0; x < w; x = x + 1) {
            var dx = 32 + (x * 64) / w;
            var dy = 32 + (y * 64) / w;
            var c = traceRay(scene, tr, x * 16, y * 16, dx, dy);
            img[y * w + x] = c;
            acc = (acc + c) % 1000003;
        }
    }
    acc = (acc + tr.trays + tr.ttests * 3 + tr.thits * 5
           + tr.tshades * 7) % 1000003;
    if (slot == 1) { scene.acc1 = acc; }
    if (slot == 2) { scene.acc2 = acc; }
    return acc;
}

func main() {
    var w = 12 + 4 * __SCALE__;
    var h = w;
    var scene = new Scene;
    scene.nspheres = 6;
    scene.spheres = newarray(scene.nspheres);
    var spheres = scene.spheres;
    for (var i = 0; i < scene.nspheres; i = i + 1) {
        var s = new Sphere;
        s.sx = (i * 97) % 300;
        s.sy = (i * 57) % 300;
        s.sz = 0;
        s.sr = 20 + (i * 13) % 40;
        spheres[i] = s;
    }
    scene.img = newarray(w * h);
    // Two worker threads render the lower two thirds; the main thread
    // renders the top strip. Rows are disjoint and workers' results are
    // not read by main, so the checksum is schedule-independent (the
    // workers' cycles and profile events still count).
    spawn renderRows(scene, h / 3, (2 * h) / 3, w, 1);
    spawn renderRows(scene, (2 * h) / 3, h, w, 2);
    var mine = renderRows(scene, 0, h / 3, w, 0);
    var checksum = (mine * 31 + w) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="mtrt",
        paper_name="_227_mtrt",
        description="two-thread raytracer: vector-math call stack",
        source=SOURCE,
    )
)
