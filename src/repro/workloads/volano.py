"""``volano`` — analog of VolanoMark (chat-server benchmark).

Character: network-bound chat rooms — long-latency socket operations
interleaved with short message-processing bursts. This is the workload
where the *timer-based* trigger is catastrophically inaccurate in the
paper (27% overlap vs 71% for counter-based, Table 5): timer interrupts
land during the long I/O waits and the sample is charged to whatever
check follows, over-sampling the post-I/O dispatch code. The ``io()``
operations here reproduce exactly that bias. Client threads handle
disjoint rooms, keeping the checksum schedule-independent.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Room {
    field rid; field rcount; field rsum; field rbytes; field rdropped;
}

class RoomStats {
    field qshort; field qmedium; field qlong; field qmin; field qmax;
    field qtotal; field qlast; field qtrend;
}

func updateStats(st, h, mlen) {
    // per-message room statistics: pure computation, heavy field
    // traffic, and crucially *no I/O*. Under a timer trigger the ticks
    // land in the long network operations, so the check that fires is
    // (almost) never adjacent to this code: its field accesses are
    // systematically under-sampled -- the paper's mis-attribution bias.
    if (mlen < 12) { st.qshort = st.qshort + 1; }
    else {
        if (mlen < 24) { st.qmedium = st.qmedium + 1; }
        else { st.qlong = st.qlong + 1; }
    }
    if (st.qmin == 0 || h < st.qmin) { st.qmin = h; }
    if (h > st.qmax) { st.qmax = h; }
    st.qtrend = (st.qtrend * 3 + (h - st.qlast)) % 65536;
    st.qlast = h;
    st.qtotal = st.qtotal + 1;
    return st.qtotal;
}

func decodeByte(b) {
    // protocol decode: affine map, sign fix, whitening (kept above the
    // inliner's size bound so per-byte call traffic is real)
    var v = (b * 167 + 13) % 256;
    if (v < 0) {
        v = v + 256;
    }
    v = (v ^ 85) % 256;
    if (v == 0) {
        return 1;
    }
    return v;
}

func processMessage(room, buf, mlen) {
    var h = 0;
    for (var i = 0; i < mlen; i = i + 1) {
        h = (h * 31 + decodeByte(buf[i])) % 1000003;
    }
    room.rcount = room.rcount + 1;
    room.rbytes = room.rbytes + mlen;
    room.rsum = (room.rsum + h) % 1000000007;
    return h;
}

func broadcast(room, buf, mlen, fanout) {
    var acc = 0;
    for (var c = 0; c < fanout; c = c + 1) {
        // send to one connection: a network write
        var ack = io(3);
        if (ack % 64 == 0) {
            room.rdropped = room.rdropped + 1;
        } else {
            acc = (acc + processMessage(room, buf, mlen)) % 1000000007;
        }
    }
    return acc;
}

func chatSession(room, messages, fanout) {
    var buf = newarray(32);
    var st = new RoomStats;
    var result = 0;
    for (var m = 0; m < messages; m = m + 1) {
        // receive a message: a network read (long latency)
        var first = io(3);
        var mlen = 8 + first % 24;
        for (var i = 0; i < mlen; i = i + 1) {
            buf[i] = (first + i * 7) % 256;
        }
        var h = broadcast(room, buf, mlen, fanout);
        result = (result + h) % 1000000007;
        // room maintenance: several stats updates per message
        for (var k = 0; k < 6; k = k + 1) {
            updateStats(st, (h + k * 1299721) % 1000003, mlen);
        }
    }
    result = (result + st.qshort + st.qmedium * 3 + st.qlong * 5
              + st.qmin + st.qmax + st.qtrend) % 1000000007;
    return result;
}

func clientThread(room, messages, fanout) {
    chatSession(room, messages, fanout);
    return 0;
}

func main() {
    var messages = 4 * __SCALE__;
    var fanout = 5;
    var r1 = new Room; r1.rid = 1;
    var r2 = new Room; r2.rid = 2;
    var r0 = new Room; r0.rid = 0;
    spawn clientThread(r1, messages, fanout);
    spawn clientThread(r2, messages, fanout);
    var checksum = chatSession(r0, messages, fanout);
    checksum = (checksum + r0.rcount * 31 + r0.rdropped) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="volano",
        paper_name="VolanoMark 2.1",
        description="chat rooms: long-latency I/O + short bursts",
        source=SOURCE,
    )
)
