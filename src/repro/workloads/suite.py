"""The benchmark suite: ten MiniJ analogs of the paper's workloads.

The paper evaluates on SPECjvm98 (input size 10), the Jalapeño
optimizing compiler on itself, pBOB, and VolanoMark. We cannot run Java
benchmarks, so each workload here is a MiniJ program engineered to the
same *character* — the mix of loop backedges, calls, field accesses,
allocation, threading and I/O that drives that benchmark's row in the
paper's tables (see each module's docstring for the mapping rationale).

Every workload is deterministic and returns a checksum from ``main`` so
semantic preservation under transformation is testable. ``scale``
multiplies the input size; the default keeps a full baseline run around
10^5 VM instructions so the whole experiment matrix fits in CI time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from repro.bytecode.program import Program
from repro.errors import HarnessError
from repro.frontend.compiler import CompileOptions, compile_baseline


@dataclass(frozen=True)
class Workload:
    """One benchmark: a MiniJ source template plus metadata.

    The source must contain the literal token ``__SCALE__`` wherever
    the problem size appears.
    """

    name: str
    paper_name: str
    description: str
    source: str
    default_scale: int = 1

    def render_source(self, scale: Optional[int] = None) -> str:
        actual = self.default_scale if scale is None else scale
        if actual < 1:
            raise HarnessError(f"{self.name}: scale must be >= 1")
        return self.source.replace("__SCALE__", str(actual))

    def compile(self, scale: Optional[int] = None) -> Program:
        """Compile the experiment-ready baseline (O2 + yieldpoints +
        call-site ids). Cached per (workload, scale); callers receive a
        fresh copy so transforms can't corrupt the cache."""
        actual = self.default_scale if scale is None else scale
        return _compile_cached(self.name, actual).copy()


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise HarnessError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise HarnessError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None


def workload_names() -> List[str]:
    """Suite order follows the paper's tables."""
    _ensure_loaded()
    return [
        "compress",
        "jess",
        "db",
        "javac",
        "mpegaudio",
        "mtrt",
        "jack",
        "optcompiler",
        "pbob",
        "volano",
    ]


def all_workloads() -> List[Workload]:
    return [get_workload(name) for name in workload_names()]


@lru_cache(maxsize=None)
def _compile_cached(name: str, scale: int) -> Program:
    workload = get_workload(name)
    return compile_baseline(
        workload.render_source(scale), CompileOptions(opt_level=2)
    )


_loaded = False


def _ensure_loaded() -> None:
    """Import the workload modules (each registers itself)."""
    global _loaded
    if _loaded:
        return
    from repro.workloads import (  # noqa: F401
        compress,
        db,
        jack,
        javac,
        jess,
        mpegaudio,
        mtrt,
        optcompiler,
        pbob,
        volano,
    )

    _loaded = True
