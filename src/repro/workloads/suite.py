"""The benchmark suite: ten MiniJ analogs of the paper's workloads.

The paper evaluates on SPECjvm98 (input size 10), the Jalapeño
optimizing compiler on itself, pBOB, and VolanoMark. We cannot run Java
benchmarks, so each workload here is a MiniJ program engineered to the
same *character* — the mix of loop backedges, calls, field accesses,
allocation, threading and I/O that drives that benchmark's row in the
paper's tables (see each module's docstring for the mapping rationale).

Every workload is deterministic and returns a checksum from ``main`` so
semantic preservation under transformation is testable. ``scale``
multiplies the input size; the default keeps a full baseline run around
10^5 VM instructions so the whole experiment matrix fits in CI time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional

from repro.bytecode.program import Program
from repro.errors import HarnessError
from repro.frontend.compiler import CompileOptions, compile_baseline


@dataclass(frozen=True)
class Workload:
    """One benchmark: a MiniJ source template plus metadata.

    Most workloads are MiniJ source (the ``source`` template, with the
    literal token ``__SCALE__`` wherever the problem size appears). The
    dynamic-code workloads (``dynload``, ``osr``) exercise opcodes MiniJ
    has no syntax for, so they supply a ``builder`` — a function from
    scale to a raw :class:`Program` — instead; :func:`prepare_baseline`
    applies the same VM conventions ``compile_baseline`` would.
    """

    name: str
    paper_name: str
    description: str
    source: str = ""
    default_scale: int = 1
    builder: Optional[Callable[[int], Program]] = None

    def render_source(self, scale: Optional[int] = None) -> str:
        if self.builder is not None and not self.source:
            raise HarnessError(
                f"{self.name}: bytecode-built workload has no MiniJ source"
            )
        actual = self.default_scale if scale is None else scale
        if actual < 1:
            raise HarnessError(f"{self.name}: scale must be >= 1")
        return self.source.replace("__SCALE__", str(actual))

    def compile(self, scale: Optional[int] = None) -> Program:
        """Compile the experiment-ready baseline (O2 + yieldpoints +
        call-site ids). Cached per (workload, scale); callers receive a
        fresh copy so transforms can't corrupt the cache."""
        actual = self.default_scale if scale is None else scale
        if actual < 1:
            raise HarnessError(f"{self.name}: scale must be >= 1")
        return _compile_cached(self.name, actual).copy()


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise HarnessError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise HarnessError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None


def paper_workload_names() -> List[str]:
    """The ten analogs of the paper's benchmark rows (Tables 1-5),
    in table order — the workloads with published reference data."""
    _ensure_loaded()
    return [
        "compress",
        "jess",
        "db",
        "javac",
        "mpegaudio",
        "mtrt",
        "jack",
        "optcompiler",
        "pbob",
        "volano",
    ]


def workload_names() -> List[str]:
    """Suite order follows the paper's tables; the dynamic-code
    workloads (outside the paper's matrix) come last."""
    return paper_workload_names() + ["dynload", "osr"]


def all_workloads() -> List[Workload]:
    return [get_workload(name) for name in workload_names()]


def prepare_baseline(program: Program) -> Program:
    """Apply the ``compile_baseline`` conventions to a hand-built
    program: yieldpoints (entry + backedges), call-site ids, and full
    verification — loadable templates included, so code arriving via
    LOADFN/REPLACEFN follows the same conventions as static code."""
    from repro.bytecode.opcodes import Op
    from repro.bytecode.verifier import verify_program
    from repro.cfg.graph import CFG
    from repro.cfg.linearize import linearize
    from repro.sampling.yieldpoints import (
        insert_yieldpoints,
        insert_yieldpoints_cfg,
    )
    from repro.instrument.call_edge import assign_call_site_ids

    result = insert_yieldpoints(program)
    for name in sorted(result.loadables):
        cfg = CFG.from_function(result.loadables[name])
        insert_yieldpoints_cfg(cfg)
        result.loadables[name] = linearize(cfg, notes={"yieldpoints": True})
    assign_call_site_ids(result)
    for name in sorted(result.loadables):
        ordinal = 0
        for ins in result.loadables[name].code:
            if ins.op in (Op.CALL, Op.SPAWN):
                ins.meta = (name, ordinal)
                ordinal += 1
    verify_program(result)
    return result


@lru_cache(maxsize=None)
def _compile_cached(name: str, scale: int) -> Program:
    workload = get_workload(name)
    if workload.builder is not None:
        return prepare_baseline(workload.builder(scale))
    return compile_baseline(
        workload.render_source(scale), CompileOptions(opt_level=2)
    )


_loaded = False


def _ensure_loaded() -> None:
    """Import the workload modules (each registers itself)."""
    global _loaded
    if _loaded:
        return
    from repro.workloads import (  # noqa: F401
        compress,
        db,
        dynload,
        jack,
        javac,
        jess,
        mpegaudio,
        mtrt,
        optcompiler,
        osr,
        pbob,
        volano,
    )

    _loaded = True
