"""``db`` — analog of SPECjvm98 _209_db (in-memory database).

Character: the paper's *lowest* instrumentation overheads (8.3%
call-edge, 7.7% field-access) — _209_db's time goes into bulk data
operations whose per-event cost dwarfs the instrumentation. The analog
runs index lookups, a shell sort, and range scans over a record table,
with a simulated disk read (``io``) per batch so total cycles are
dominated by long-latency operations, suppressing every *relative*
overhead exactly as in the paper's row.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
// Record table: parallel arrays (key, balance); batched "disk" loads.

class Table {
    field tqueries; field thits; field tscans; field tcommits;
    field tdepth; field tsplits; field tmerges; field tfill;
}

func rebalanceStats(table, keys, n) {
    // index maintenance after each batch: pure in-memory bookkeeping
    // with dense field traffic and no disk I/O (timer ticks land in
    // the io() calls instead, under-sampling these accesses)
    for (var i = 1; i < n; i = i + 1) {
        if (keys[i] < keys[i - 1]) {
            table.tsplits = table.tsplits + 1;
        } else {
            table.tmerges = table.tmerges + 1;
        }
        table.tfill = (table.tfill + keys[i] % 16) % 1000003;
    }
    table.tdepth = table.tdepth + 1;
    return table.tfill;
}

func shellSort(keys, vals, n) {
    var gap = n / 2;
    while (gap > 0) {
        for (var i = gap; i < n; i = i + 1) {
            var k = keys[i];
            var v = vals[i];
            var j = i;
            while (j >= gap && keys[j - gap] > k) {
                keys[j] = keys[j - gap];
                vals[j] = vals[j - gap];
                j = j - gap;
            }
            keys[j] = k;
            vals[j] = v;
        }
        gap = gap / 2;
    }
    return n;
}

func binarySearch(keys, n, target) {
    var lo = 0;
    var hi = n - 1;
    while (lo <= hi) {
        var mid = (lo + hi) / 2;
        if (keys[mid] == target) {
            return mid;
        }
        if (keys[mid] < target) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return 0 - 1;
}

func rangeSum(vals, lo, hi) {
    var total = 0;
    for (var i = lo; i <= hi; i = i + 1) {
        total = total + vals[i];
    }
    return total;
}

func main() {
    var n = 40 * __SCALE__;
    var keys = newarray(n);
    var vals = newarray(n);
    var table = new Table;
    var checksum = 0;
    var batches = 5;
    for (var b = 0; b < batches; b = b + 1) {
        // load a batch from "disk"
        var seed = io(2) + b * 7919;
        for (var i = 0; i < n; i = i + 1) {
            seed = (seed * 69069 + 1) % 2147483648;
            keys[i] = (seed >> 12) % (4 * n);
            vals[i] = (seed >> 5) % 1000;
        }
        shellSort(keys, vals, n);
        // point queries
        for (var q = 0; q < 12; q = q + 1) {
            table.tqueries = table.tqueries + 1;
            var idx = binarySearch(keys, n, (q * 37) % (4 * n));
            if (idx >= 0) {
                table.thits = table.thits + 1;
                checksum = (checksum + vals[idx]) % 1000000007;
            } else {
                checksum = (checksum + 1) % 1000000007;
            }
            if (q % 3 == 0) {
                // write-back of the touched page (long latency; the
                // code that *follows* is the field-light probe loop)
                checksum = (checksum + io(1) % 7) % 1000000007;
            }
        }
        // index maintenance (field-heavy, far from any I/O)
        checksum = (checksum + rebalanceStats(table, keys, n / 2)) % 1000000007;
        // range scan
        table.tscans = table.tscans + 1;
        checksum = (checksum + rangeSum(vals, n / 4, (3 * n) / 4)) % 1000000007;
        // commit to "disk"
        var ack = io(1);
        table.tcommits = table.tcommits + 1;
        checksum = (checksum + ack % 97) % 1000000007;
    }
    checksum = (checksum + table.tqueries + table.thits * 3
                + table.tscans * 5 + table.tcommits * 7
                + table.tsplits + table.tmerges + table.tdepth) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="db",
        paper_name="_209_db",
        description="record sort/search with simulated disk I/O",
        source=SOURCE,
        # Raised 1 -> 10 once the fast engine landed: ~10x the
        # dynamic checks per cell at roughly the old wall cost.
        default_scale=10,
    )
)
