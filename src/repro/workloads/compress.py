"""``compress`` — analog of SPECjvm98 _201_compress.

Character: byte-array compression dominated by tight inner loops — the
paper's Table 2 shows _201_compress with the highest backedge-check
overhead (8.3%) because "execution is dominated by tight loops". The
analog run-length-encodes and decodes a pseudo-random byte buffer
through a codec object whose statistics fields are updated on every
emitted run (the Java version's Compressor/Decompressor state objects),
with a validating emit helper per run so call-edge instrumentation sees
real traffic.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Codec {
    field cpos; field copos; field cruns; field cbytes; field chash; field cworst;
}

func lcgNext(seed) {
    return (seed * 1103515245 + 12345) % 2147483648;
}

func fillInput(data, n) {
    var seed = 987321;
    for (var i = 0; i < n; i = i + 1) {
        seed = lcgNext(seed);
        // small alphabet so runs are common
        data[i] = (seed >> 16) % 7;
    }
    return seed;
}

func emitRun(codec, out, oi, run, v) {
    if (run < 1 || run > 255 || oi + 1 >= len(out)) {
        print(0 - 99);
        return oi;
    }
    out[oi] = run;
    out[oi + 1] = v;
    codec.cruns = codec.cruns + 1;
    codec.cbytes = codec.cbytes + run;
    codec.chash = (codec.chash * 31 + run * 8 + v) % 1000003;
    if (run > codec.cworst) {
        codec.cworst = run;
    }
    return oi + 2;
}

func rleCompress(codec, data, n, out) {
    // the codec's input/output cursors live in fields, as in the Java
    // Compressor object: the innermost loop reads/writes them directly
    codec.cpos = 0;
    codec.copos = 0;
    while (codec.cpos < n) {
        var v = data[codec.cpos];
        var run = 1;
        while (codec.cpos + run < n && data[codec.cpos + run] == v && run < 255) {
            run = run + 1;
        }
        codec.copos = emitRun(codec, out, codec.copos, run, v);
        codec.cpos = codec.cpos + run;
    }
    return codec.copos;
}

func rleDecompress(codec, packed, plen, out) {
    codec.copos = 0;
    for (var i = 0; i < plen; i = i + 2) {
        var run = packed[i];
        var v = packed[i + 1];
        for (var k = 0; k < run; k = k + 1) {
            out[codec.copos] = v;
            codec.copos = codec.copos + 1;
        }
    }
    return codec.copos;
}

func main() {
    var n = 420 * __SCALE__;
    var data = newarray(n);
    var packed = newarray(2 * n + 2);
    var restored = newarray(n);
    var checksum = fillInput(data, n);
    var codec = new Codec;
    var rounds = 6;
    for (var r = 0; r < rounds; r = r + 1) {
        var plen = rleCompress(codec, data, n, packed);
        var dlen = rleDecompress(codec, packed, plen, restored);
        if (dlen != n) {
            return 0 - 1;
        }
        // verify round-trip (tight loop, no calls)
        for (var i = 0; i < n; i = i + 1) {
            if (data[i] != restored[i]) {
                return 0 - 2;
            }
        }
        checksum = (checksum + codec.chash + plen) % 1000000007;
    }
    checksum = (checksum + codec.cruns * 31 + codec.cbytes
                + codec.cworst * 7) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="compress",
        paper_name="_201_compress",
        description="RLE codec: tight array loops, high backedge density",
        source=SOURCE,
    )
)
