"""``optcompiler`` — analog of the Jalapeño optimizing compiler run on
a subset of itself.

Character: the paper's highest call-edge instrumentation overhead
(189%) — an optimizer is a storm of small analysis/transform method
calls over an IR. The analog builds straight-line three-address IR
functions in arrays, then runs real(ish) passes over each: constant
propagation, algebraic simplification, dead-code elimination, and a
cost estimator — each pass and each per-instruction helper is its own
function, so call density is extreme while loops stay modest.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class PassStats {
    field pvisited; field pfolded; field psimplified; field plive;
}

// IR: per-instruction arrays. op codes: 0 const, 1 add, 2 mul, 3 copy.
// dst/a/b are virtual register numbers (a is an immediate for const).
// Accessors validate their index (like Jalapeño's assertion-bearing IR
// accessors), which also keeps them beyond the inliner's size bound —
// the call density is the point of this workload.

func irOp(ops, i) {
    if (i < 0 || i >= len(ops)) {
        print(0 - 99);
        return 0 - 1;
    }
    return ops[i];
}

func irDst(dsts, i) {
    if (i < 0 || i >= len(dsts)) {
        print(0 - 98);
        return 0 - 1;
    }
    return dsts[i];
}

func irA(as_, i) {
    if (i < 0 || i >= len(as_)) {
        print(0 - 97);
        return 0 - 1;
    }
    return as_[i];
}

func irB(bs, i) {
    if (i < 0 || i >= len(bs)) {
        print(0 - 96);
        return 0 - 1;
    }
    return bs[i];
}

func propagate(ops, dsts, as_, bs, n, known, vals, st) {
    var changed = 0;
    for (var i = 0; i < n; i = i + 1) {
        st.pvisited = st.pvisited + 1;
        var op = irOp(ops, i);
        var d = irDst(dsts, i);
        if (op == 0) {
            if (known[d] == 0) {
                known[d] = 1;
                vals[d] = irA(as_, i);
                changed = changed + 1;
            }
        }
        if (op == 1 || op == 2) {
            var ra = irA(as_, i);
            var rb = irB(bs, i);
            if (known[ra] == 1 && known[rb] == 1 && known[d] == 0) {
                known[d] = 1;
                if (op == 1) { vals[d] = vals[ra] + vals[rb]; }
                else { vals[d] = vals[ra] * vals[rb]; }
                // rewrite to a constant
                ops[i] = 0;
                as_[i] = vals[d];
                st.pfolded = st.pfolded + 1;
                changed = changed + 1;
            }
        }
        if (op == 3) {
            var rs = irA(as_, i);
            if (known[rs] == 1 && known[d] == 0) {
                known[d] = 1;
                vals[d] = vals[rs];
                ops[i] = 0;
                as_[i] = vals[rs];
                changed = changed + 1;
            }
        }
    }
    return changed;
}

func simplify(ops, dsts, as_, bs, n, known, vals, st) {
    var changed = 0;
    for (var i = 0; i < n; i = i + 1) {
        st.pvisited = st.pvisited + 1;
        if (irOp(ops, i) == 2 && known[irB(bs, i)] == 1
            && vals[irB(bs, i)] == 1) {
            // x * 1 -> copy x
            ops[i] = 3;
            st.psimplified = st.psimplified + 1;
            changed = changed + 1;
        }
        if (irOp(ops, i) == 1 && known[irB(bs, i)] == 1
            && vals[irB(bs, i)] == 0) {
            // x + 0 -> copy x
            ops[i] = 3;
            st.psimplified = st.psimplified + 1;
            changed = changed + 1;
        }
    }
    return changed;
}

func markUse(used, r) { used[r] = 1; return r; }

func deadCode(ops, dsts, as_, bs, n, used, nregs, st) {
    for (var r = 0; r < nregs; r = r + 1) { used[r] = 0; }
    // last register is the function result
    markUse(used, nregs - 1);
    var live = 0;
    for (var i = n - 1; i >= 0; i = i - 1) {
        st.pvisited = st.pvisited + 1;
        var d = irDst(dsts, i);
        if (used[d] == 1) {
            live = live + 1;
            var op = irOp(ops, i);
            if (op == 1 || op == 2) {
                markUse(used, irA(as_, i));
                markUse(used, irB(bs, i));
            }
            if (op == 3) {
                markUse(used, irA(as_, i));
            }
        }
    }
    return live;
}

func estimateCost(ops, n, st) {
    var cost = 0;
    for (var i = 0; i < n; i = i + 1) {
        st.pvisited = st.pvisited + 1;
        var op = irOp(ops, i);
        if (op == 2) { cost = cost + 3; }
        else { cost = cost + 1; }
    }
    return cost;
}

func optimizeUnit(ops, dsts, as_, bs, n, known, vals, used, nregs, st) {
    for (var r = 0; r < nregs; r = r + 1) { known[r] = 0; vals[r] = 0; }
    var rounds = 0;
    var changed = 1;
    while (changed > 0 && rounds < 8) {
        changed = propagate(ops, dsts, as_, bs, n, known, vals, st)
                  + simplify(ops, dsts, as_, bs, n, known, vals, st);
        rounds = rounds + 1;
    }
    var live = deadCode(ops, dsts, as_, bs, n, used, nregs, st);
    st.plive = st.plive + live;
    return estimateCost(ops, n, st) * 100 + live + rounds;
}

func main() {
    var units = 7 * __SCALE__;
    var n = 40;
    var nregs = n + 4;
    var ops = newarray(n);
    var dsts = newarray(n);
    var as_ = newarray(n);
    var bs = newarray(n);
    var known = newarray(nregs);
    var vals = newarray(nregs);
    var used = newarray(nregs);
    var checksum = 0;
    var seed = 90210;
    var st = new PassStats;
    for (var u = 0; u < units; u = u + 1) {
        // generate a unit: mix of consts and ops over earlier regs
        for (var i = 0; i < n; i = i + 1) {
            seed = (seed * 69069 + 1) % 2147483648;
            dsts[i] = i + 4;
            if (i < 4 || seed % 3 == 0) {
                ops[i] = 0;
                as_[i] = (seed >> 8) % 7;
            } else {
                ops[i] = 1 + (seed >> 5) % 2;
                as_[i] = (seed >> 9) % (i + 4);
                bs[i] = (seed >> 13) % (i + 4);
            }
        }
        dsts[n - 1] = nregs - 1;
        checksum = (checksum * 31
                    + optimizeUnit(ops, dsts, as_, bs, n,
                                   known, vals, used, nregs, st)) % 1000000007;
    }
    checksum = (checksum + st.pvisited + st.pfolded * 31
                + st.psimplified * 17 + st.plive * 7) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="optcompiler",
        paper_name="opt-compiler",
        description="IR optimizer passes: extreme call density",
        source=SOURCE,
    )
)
