"""``javac`` — analog of SPECjvm98 _213_javac (the JDK 1.0.2 compiler).

Character: a compiler compiling source — many small methods (lexing,
parsing, tree walking, emission), object allocation with field traffic,
and a *skewed* call-edge profile: a handful of hot scanner/parser edges
dominate, with a long tail. This workload feeds Figure 7 (the paper
plots javac's call-edge sample-percentages; theirs overlaps 93.8% at
interval 1000).

The analog compiles a stream of arithmetic expressions: scanner over a
character-code array, recursive-descent parser building heap AST nodes,
a constant-folding pass, and bytecode-ish emission into an array.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Node { field ntag; field nval; field nleft; field nright; }
class Scanner { field spos; field stok; field stokval; field ssrc; field slen; }

// token kinds: 0 eof, 1 int, 2 plus, 3 minus, 4 star, 5 slash, 6 lpar, 7 rpar
// char codes: 0..9 digits, 10 '+', 11 '-', 12 '*', 13 '/', 14 '(', 15 ')'

func isDigit(c) { return c >= 0 && c <= 9; }

func scanNext(s) {
    var src = s.ssrc;
    var pos = s.spos;
    if (pos >= s.slen) {
        s.stok = 0;
        return 0;
    }
    var c = src[pos];
    if (isDigit(c)) {
        var v = 0;
        while (pos < s.slen && isDigit(src[pos])) {
            v = v * 10 + src[pos];
            pos = pos + 1;
        }
        s.spos = pos;
        s.stok = 1;
        s.stokval = v;
        return 1;
    }
    s.spos = pos + 1;
    if (c == 10) { s.stok = 2; return 2; }
    if (c == 11) { s.stok = 3; return 3; }
    if (c == 12) { s.stok = 4; return 4; }
    if (c == 13) { s.stok = 5; return 5; }
    if (c == 14) { s.stok = 6; return 6; }
    s.stok = 7;
    return 7;
}

func newLeaf(v) {
    var n = new Node;
    n.ntag = 1;
    n.nval = v;
    return n;
}

func newBinop(tag, l, r) {
    var n = new Node;
    n.ntag = tag;
    n.nleft = l;
    n.nright = r;
    return n;
}

func parsePrimary(s) {
    if (s.stok == 6) {
        scanNext(s);
        var inner = parseExpr(s);
        scanNext(s); // consume ')'
        return inner;
    }
    var leaf = newLeaf(s.stokval);
    scanNext(s);
    return leaf;
}

func parseTerm(s) {
    var left = parsePrimary(s);
    while (s.stok == 4 || s.stok == 5) {
        var op = s.stok;
        scanNext(s);
        left = newBinop(op, left, parsePrimary(s));
    }
    return left;
}

func parseExpr(s) {
    var left = parseTerm(s);
    while (s.stok == 2 || s.stok == 3) {
        var op = s.stok;
        scanNext(s);
        left = newBinop(op, left, parseTerm(s));
    }
    return left;
}

func evalOp(tag, a, b) {
    if (tag == 2) { return a + b; }
    if (tag == 3) { return a - b; }
    if (tag == 4) { return a * b; }
    if (b == 0) { return 0; }
    return a / b;
}

func foldTree(n) {
    if (n.ntag == 1) {
        return n;
    }
    var l = foldTree(n.nleft);
    var r = foldTree(n.nright);
    n.nleft = l;
    n.nright = r;
    if (l.ntag == 1 && r.ntag == 1) {
        return newLeaf(evalOp(n.ntag, l.nval, r.nval));
    }
    return n;
}

func emitTree(n, code, pos) {
    if (n.ntag == 1) {
        code[pos] = 1;
        code[pos + 1] = n.nval;
        return pos + 2;
    }
    pos = emitTree(n.nleft, code, pos);
    pos = emitTree(n.nright, code, pos);
    code[pos] = n.ntag;
    return pos + 1;
}

func runCode(code, clen) {
    var stack = newarray(64);
    var sp = 0;
    var pc = 0;
    while (pc < clen) {
        var op = code[pc];
        if (op == 1) {
            stack[sp] = code[pc + 1];
            sp = sp + 1;
            pc = pc + 2;
        } else {
            var b = stack[sp - 1];
            var a = stack[sp - 2];
            sp = sp - 1;
            var v = 0;
            if (op == 2) { v = a + b; }
            else {
                if (op == 3) { v = a - b; }
                else {
                    if (op == 4) { v = a * b; }
                    else {
                        if (b != 0) { v = a / b; }
                    }
                }
            }
            stack[sp - 1] = v;
            pc = pc + 1;
        }
    }
    return stack[0];
}

func genSource(src, cap, seed) {
    // emit: num (op num)* with random parens depth 1
    var pos = 0;
    var terms = 4 + seed % 5;
    for (var t = 0; t < terms && pos + 6 < cap; t = t + 1) {
        if (t > 0) {
            src[pos] = 10 + (seed >> 3) % 4;
            pos = pos + 1;
            seed = (seed * 69069 + 5) % 2147483648;
        }
        if (seed % 3 == 0 && pos + 5 < cap) {
            src[pos] = 14;
            src[pos + 1] = (seed >> 7) % 10;
            src[pos + 2] = 10 + (seed >> 11) % 4;
            src[pos + 3] = 1 + (seed >> 13) % 9;
            src[pos + 4] = 15;
            pos = pos + 5;
        } else {
            src[pos] = (seed >> 9) % 10;
            pos = pos + 1;
        }
        seed = (seed * 1103515245 + 12345) % 2147483648;
    }
    return pos;
}

func compileOne(src, slen, code) {
    var s = new Scanner;
    s.ssrc = src;
    s.slen = slen;
    s.spos = 0;
    scanNext(s);
    var tree = parseExpr(s);
    tree = foldTree(tree);
    var clen = emitTree(tree, code, 0);
    return runCode(code, clen);
}

func main() {
    var units = 22 * __SCALE__;
    var src = newarray(64);
    var code = newarray(192);
    var checksum = 0;
    var seed = 424243;
    for (var u = 0; u < units; u = u + 1) {
        seed = (seed * 48271) % 2147483647;
        var slen = genSource(src, 64, seed);
        var value = compileOne(src, slen, code);
        checksum = (checksum * 31 + value + slen) % 1000000007;
    }
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="javac",
        paper_name="_213_javac",
        description="mini compiler: many small methods, skewed call edges",
        source=SOURCE,
        # Raised 1 -> 10 once the fast engine landed: ~10x the
        # dynamic checks per cell at roughly the old wall cost.
        default_scale=10,
    )
)
