"""``mpegaudio`` — analog of SPECjvm98 _222_mpegaudio (MP3 decoding).

Character: fixed-point DSP kernels — tight multiply/shift loops (the
paper's other high-backedge-overhead benchmark, 9.0% in Table 2), a
filter state object whose fields are read and written every sample
(their field-access row is 99.8%), and a subband synthesis call per
sample window (call-edge 129.6%).
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Filter { field fz1; field fz2; field fgain; field fmix; }
class Meter { field mmax; field mclips; field menergy; }

func clip(v) {
    if (v > 32767) { return 32767; }
    if (v < 0 - 32768) { return 0 - 32768; }
    return v;
}

func biquadStep(f, x) {
    // fixed-point biquad with state in fields (field traffic per sample)
    var y = (x * f.fgain + f.fz1 * 3 - f.fz2) >> 2;
    f.fz2 = f.fz1;
    f.fz1 = clip(y);
    f.fmix = (f.fmix + (y ^ x)) % 65536;
    return clip(y);
}

func synthWindow(samples, out, base, n, f, g) {
    for (var i = 0; i < n; i = i + 1) {
        // two cascaded field-resident filter stages per sample, plus an
        // inline two-tap window (DSP kernels keep this in registers)
        var s = biquadStep(f, samples[base + i]);
        s = biquadStep(g, s + (f.fmix >> 12));
        var win = (samples[base] * 3 + samples[base + 1] * 4) >> 1;
        out[base + i] = clip(s + (win >> 3));
    }
    return n;
}

func main() {
    var frames = 6 * __SCALE__;
    var frameSize = 96;
    var n = frames * frameSize;
    var samples = newarray(n + 8);
    var out = newarray(n + 8);
    var seed = 777;
    for (var i = 0; i < n; i = i + 1) {
        seed = (seed * 65539) % 2147483648;
        samples[i] = (seed >> 14) % 4096 - 2048;
    }
    var f = new Filter;
    f.fgain = 5;
    var g = new Filter;
    g.fgain = 3;
    var meter = new Meter;
    var checksum = 0;
    var base = 0;
    for (var fr = 0; fr < frames; fr = fr + 1) {
        // frame sizes vary (as MP3 frames do); irregular trip counts
        // also keep fixed sampling strides from resonating with loops
        var flen = 64 + ((fr * 29) % 45);
        if (base + flen > n) { flen = n - base; }
        synthWindow(samples, out, base, flen, f, g);
        // normalization pass: division-heavy (these long operations
        // absorb timer ticks, so its meter fields are what a timer
        // trigger over-attributes samples to)
        var acc = 0;
        for (var i = 0; i < flen; i = i + 1) {
            var scaled = (out[base + i] * 2654435761) / 65536;
            acc = acc ^ (scaled / (i + 1));
            if (scaled > meter.mmax) { meter.mmax = scaled; }
            if (scaled > 30000) { meter.mclips = meter.mclips + 1; }
            meter.menergy = (meter.menergy + (scaled >> 4)) % 1000003;
        }
        base = base + flen;
        if (base >= n) { base = 0; }
        checksum = (checksum + acc + f.fmix + g.fmix) % 1000000007;
    }
    checksum = (checksum + meter.mmax + meter.mclips * 31
                + meter.menergy) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="mpegaudio",
        paper_name="_222_mpegaudio",
        description="fixed-point DSP: tight loops + per-sample field state",
        source=SOURCE,
    )
)
