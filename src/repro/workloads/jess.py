"""``jess`` — analog of SPECjvm98 _202_jess (expert-system shell).

Character: rule matching through many short method calls — _202_jess
has the paper's second-highest call-edge instrumentation overhead
(133.2%). The analog runs a forward-chaining rule engine over an
array-encoded fact base: duplicate detection (`hasFact`) and assertion
(`addFact`) are real method calls made per candidate match, and the
engine object's bookkeeping fields are touched on every rule firing.
"""

from repro.workloads.suite import Workload, register

SOURCE = """
class Engine {
    field easserted; field etested; field erounds; field escore;
}

func factKind(facts, i) { return facts[i * 3]; }
func factA(facts, i) { return facts[i * 3 + 1]; }
func factB(facts, i) { return facts[i * 3 + 2]; }

func hasFact(facts, count, kind, a, b) {
    for (var i = 0; i < count; i = i + 1) {
        if (facts[i * 3] == kind
            && facts[i * 3 + 1] == a
            && facts[i * 3 + 2] == b) {
            return 1;
        }
    }
    return 0;
}

func addFact(engine, facts, count, capacity, kind, a, b) {
    if (count >= capacity) {
        return count;
    }
    engine.etested = engine.etested + 1;
    if (hasFact(facts, count, kind, a, b) == 1) {
        return count;
    }
    facts[count * 3] = kind;
    facts[count * 3 + 1] = a;
    facts[count * 3 + 2] = b;
    engine.easserted = engine.easserted + 1;
    engine.escore = (engine.escore * 13 + kind * 100 + a * 10 + b) % 1000003;
    return count + 1;
}

func joinTest(engine, facts, j, kind, value) {
    // rete-style alpha/beta token test: called per candidate pair
    engine.etested = engine.etested + 1;
    if (facts[j * 3] != kind) {
        return 0;
    }
    if (facts[j * 3 + 1] != value) {
        return 0;
    }
    return 1;
}

func fireRules(engine, facts, count, capacity) {
    // parent(x,y) => ancestor(x,y)
    // ancestor(x,y) & parent(y,z) => ancestor(x,z)
    var added = 1;
    while (added == 1) {
        added = 0;
        engine.erounds = engine.erounds + 1;
        for (var i = 0; i < count; i = i + 1) {
            if (factKind(facts, i) == 1) {
                var before = count;
                count = addFact(engine, facts, count, capacity,
                                2, factA(facts, i), factB(facts, i));
                if (count != before) { added = 1; }
            }
        }
        for (var i = 0; i < count; i = i + 1) {
            if (factKind(facts, i) == 2) {
                var bi = factB(facts, i);
                for (var j = 0; j < count; j = j + 1) {
                    if (joinTest(engine, facts, j, 1, bi) == 1) {
                        var before2 = count;
                        count = addFact(engine, facts, count, capacity,
                                        2, factA(facts, i), factB(facts, j));
                        if (count != before2) { added = 1; }
                    }
                }
            }
        }
    }
    return count;
}

func main() {
    var people = 8 + 2 * __SCALE__;
    var capacity = people * people + people;
    var facts = newarray(capacity * 3);
    var engine = new Engine;
    var count = 0;
    // a family chain plus some branches: parent(i, i+1)
    for (var p = 0; p + 1 < people; p = p + 1) {
        count = addFact(engine, facts, count, capacity, 1, p, p + 1);
    }
    // a couple of second children
    for (var p = 0; p + 2 < people; p = p + 3) {
        count = addFact(engine, facts, count, capacity, 1, p, p + 2);
    }
    count = fireRules(engine, facts, count, capacity);
    var checksum = (engine.escore + count * 31 + engine.easserted * 7
                    + engine.etested + engine.erounds) % 1000000007;
    print(checksum);
    return checksum;
}
"""

WORKLOAD = register(
    Workload(
        name="jess",
        paper_name="_202_jess",
        description="forward-chaining rules: very high call density",
        source=SOURCE,
    )
)
