"""Disassembler: render functions and programs as readable text.

Round-trips with :mod:`repro.bytecode.assembler` for code free of
framework pseudo-payloads (INSTR actions render as comments, since they
carry Python objects that the assembler cannot reconstruct).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bytecode.function import Function
from repro.bytecode.instructions import format_arg
from repro.bytecode.opcodes import BRANCH_OPS, Op
from repro.bytecode.program import Program


def branch_targets(fn: Function) -> Dict[int, str]:
    """Map each pc that is a branch target to a synthetic label name."""
    targets = sorted(
        {
            ins.arg
            for ins in fn.code
            if ins.op in BRANCH_OPS and isinstance(ins.arg, int)
        }
    )
    return {pc: f"L{idx}" for idx, pc in enumerate(targets)}


def disassemble_function(fn: Function, with_pc: bool = False) -> str:
    """Render one function. ``with_pc`` adds absolute pcs for debugging."""
    labels = branch_targets(fn)
    extra = fn.num_locals - fn.num_params
    header = f"func {fn.name}({fn.num_params})"
    if extra:
        header += f" locals={extra}"
    lines: List[str] = [header + " {"]
    for pc, ins in enumerate(fn.code):
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        mnemonic = "ret" if ins.op == Op.RETURN else ins.op.name.lower()
        if ins.op in BRANCH_OPS and isinstance(ins.arg, int):
            operand = labels[ins.arg]
        elif ins.op in (Op.INSTR, Op.GUARDED_INSTR):
            operand = f"# {format_arg(ins)}"
        else:
            operand = format_arg(ins)
        text = f"    {mnemonic}" + (f" {operand}" if operand else "")
        if with_pc:
            text = f"{pc:4d}: {text.lstrip()}"
            text = "    " + text
        lines.append(text)
    lines.append("}")
    return "\n".join(lines)


def disassemble_program(program: Program, with_pc: bool = False) -> str:
    """Render every class and function of *program*."""
    parts: List[str] = []
    for name in sorted(program.classes):
        kl = program.classes[name]
        parts.append(f"class {kl.name} {{ {' '.join(kl.fields)} }}")
    for name in program.function_names():
        parts.append(disassemble_function(program.functions[name], with_pc))
    return "\n\n".join(parts) + "\n"
