"""Textual bytecode assembler.

Grammar (line oriented; ``#`` starts a comment)::

    program   := (class_decl | func_decl)*
    class_decl:= "class" NAME "{" NAME* "}"            (may span lines)
    func_decl := "func" NAME "(" INT ")" ["locals=" INT] "{"
                     (label_line | instr_line)*
                 "}"
    label_line:= NAME ":"
    instr_line:= MNEMONIC [operand]

Operands: integers for push/load/store/io, label names for branches,
function names for call/spawn, class names for new, ``Class.field`` for
getfield/putfield. ``locals=`` counts *extra* slots beyond params when
omitted params define the count.

The assembler exists for tests and examples; generated code normally
comes from :class:`repro.bytecode.builder.BytecodeBuilder` or the MiniJ
compiler.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.bytecode.builder import BytecodeBuilder
from repro.bytecode.instructions import Label
from repro.bytecode.klass import Klass
from repro.bytecode.opcodes import BRANCH_OPS, FIELD_REF_OPS, FUNCTION_REF_OPS, MNEMONICS, Op
from repro.bytecode.program import Program
from repro.errors import AssemblerError

_FUNC_RE = re.compile(
    r"^func\s+(?P<name>\w+)\s*\(\s*(?P<params>\d+)\s*\)"
    r"(?:\s+locals\s*=\s*(?P<locals>\d+))?\s*\{$"
)
_CLASS_OPEN_RE = re.compile(r"^class\s+(?P<name>\w+)\s*\{(?P<rest>.*)$")
_LABEL_RE = re.compile(r"^(?P<name>\w+)\s*:$")


def _strip(line: str) -> str:
    if "#" in line:
        line = line[: line.index("#")]
    return line.strip()


class _FunctionAssembler:
    """Assembles the body of one ``func`` block."""

    def __init__(self, name: str, params: int, extra_locals: Optional[int]):
        num_locals = params + (extra_locals or 0)
        self.builder = BytecodeBuilder(name, params, num_locals)
        self.labels: Dict[str, Label] = {}

    def _label(self, name: str) -> Label:
        if name not in self.labels:
            self.labels[name] = self.builder.new_label(name)
        return self.labels[name]

    def add_label(self, name: str, line_no: int) -> None:
        lab = self._label(name)
        try:
            self.builder.label(lab)
        except Exception as exc:  # duplicate binding
            raise AssemblerError(str(exc), line_no) from None

    def add_instruction(self, text: str, line_no: int) -> None:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand = parts[1].strip() if len(parts) > 1 else None
        op = MNEMONICS.get(mnemonic)
        if op is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
        self.builder.emit(op, self._parse_operand(op, operand, line_no))

    def _parse_operand(self, op: Op, operand: Optional[str], line_no: int):
        if op in BRANCH_OPS:
            if operand is None:
                raise AssemblerError(f"{op.name} needs a label", line_no)
            return self._label(operand)
        if op in FUNCTION_REF_OPS or op == Op.NEW:
            if operand is None:
                raise AssemblerError(f"{op.name} needs a name", line_no)
            return operand
        if op in FIELD_REF_OPS:
            if operand is None or "." not in operand:
                raise AssemblerError(
                    f"{op.name} needs Class.field", line_no
                )
            cls, field = operand.split(".", 1)
            return (cls, field)
        if op in (Op.PUSH, Op.LOAD, Op.STORE, Op.IO):
            if operand is None:
                if op == Op.IO:
                    return 1
                raise AssemblerError(f"{op.name} needs an integer", line_no)
            try:
                return int(operand, 0)
            except ValueError:
                raise AssemblerError(
                    f"{op.name}: bad integer {operand!r}", line_no
                ) from None
        if operand is not None:
            raise AssemblerError(
                f"{op.name} takes no operand (got {operand!r})", line_no
            )
        return None


def assemble(source: str, entry: str = "main") -> Program:
    """Assemble *source* text into a :class:`Program`.

    The resulting program has references validated but is not
    stack-verified; call :func:`repro.bytecode.verifier.verify_program`
    for that.
    """
    program = Program(entry=entry)
    lines = source.splitlines()
    i = 0
    while i < len(lines):
        line = _strip(lines[i])
        i += 1
        if not line:
            continue
        class_match = _CLASS_OPEN_RE.match(line)
        if class_match:
            i = _assemble_class(program, class_match, lines, i)
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            i = _assemble_function(program, func_match, lines, i)
            continue
        raise AssemblerError(f"expected 'class' or 'func', got {line!r}", i)
    program.validate_references()
    return program


def _assemble_class(
    program: Program, match: "re.Match[str]", lines: List[str], i: int
) -> int:
    name = match.group("name")
    body_parts: List[str] = []
    rest = match.group("rest")
    closed = False
    if "}" in rest:
        body_parts.append(rest[: rest.index("}")])
        closed = True
    else:
        body_parts.append(rest)
    while not closed:
        if i >= len(lines):
            raise AssemblerError(f"class {name}: missing '}}'", i)
        line = _strip(lines[i])
        i += 1
        if "}" in line:
            body_parts.append(line[: line.index("}")])
            closed = True
        else:
            body_parts.append(line)
    fields = " ".join(body_parts).split()
    program.add_class(Klass(name, fields))
    return i


def _assemble_function(
    program: Program, match: "re.Match[str]", lines: List[str], i: int
) -> int:
    name = match.group("name")
    params = int(match.group("params"))
    extra = match.group("locals")
    fasm = _FunctionAssembler(name, params, int(extra) if extra else None)
    while True:
        if i >= len(lines):
            raise AssemblerError(f"func {name}: missing '}}'", i)
        line = _strip(lines[i])
        i += 1
        if not line:
            continue
        if line == "}":
            break
        label_match = _LABEL_RE.match(line)
        if label_match:
            fasm.add_label(label_match.group("name"), i)
        else:
            fasm.add_instruction(line, i)
    try:
        program.add_function(fasm.builder.build())
    except Exception as exc:
        raise AssemblerError(f"func {name}: {exc}", i) from None
    return i


def parse_operand_pair(text: str) -> Tuple[str, str]:
    """Split ``Class.field`` notation (exposed for tooling/tests)."""
    cls, _, field = text.partition(".")
    if not field:
        raise AssemblerError(f"expected Class.field, got {text!r}")
    return cls, field
