"""Fluent bytecode emission with symbolic labels.

The builder is how code generators (the MiniJ backend, test fixtures,
synthetic workloads) produce functions without computing pcs by hand::

    b = BytecodeBuilder("count", num_params=1)
    n = 0                       # param slot
    i = b.new_local()           # scratch slot
    loop, done = b.new_label("loop"), b.new_label("done")
    b.push(0).store(i)
    b.label(loop)
    b.load(i).load(n).emit(Op.LT).jz(done)
    b.load(i).push(1).emit(Op.ADD).store(i)
    b.jump(loop)
    b.label(done)
    b.load(i).ret()
    fn = b.build()

``build()`` resolves every label to an absolute pc and returns a
:class:`Function` ready for verification and execution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bytecode.function import Function
from repro.bytecode.instructions import Instruction, Label
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError


class BytecodeBuilder:
    """Builds one :class:`Function`, resolving labels at :meth:`build`."""

    def __init__(self, name: str, num_params: int = 0, num_locals: Optional[int] = None):
        self.name = name
        self.num_params = num_params
        self._num_locals = num_locals if num_locals is not None else num_params
        self._code: List[Instruction] = []
        self._pending_labels: List[Label] = []
        self._positions: Dict[Label, int] = {}

    # -- locals & labels --------------------------------------------------

    def new_local(self) -> int:
        """Allocate a fresh local slot and return its index."""
        slot = self._num_locals
        self._num_locals += 1
        return slot

    def new_label(self, name: str = "") -> Label:
        return Label(name)

    def label(self, lab: Label) -> "BytecodeBuilder":
        """Bind *lab* to the next emitted instruction."""
        if lab in self._positions:
            raise BytecodeError(f"{self.name}: label {lab.name} bound twice")
        self._pending_labels.append(lab)
        return self

    # -- emission ------------------------------------------------------------

    def emit(self, op: Op, arg: Any = None) -> "BytecodeBuilder":
        for lab in self._pending_labels:
            self._positions[lab] = len(self._code)
        self._pending_labels.clear()
        self._code.append(Instruction(op, arg))
        return self

    # Shorthand emitters for the common opcodes. Each returns self so
    # straight-line sequences chain naturally.

    def push(self, value: int) -> "BytecodeBuilder":
        return self.emit(Op.PUSH, value)

    def load(self, slot: int) -> "BytecodeBuilder":
        return self.emit(Op.LOAD, slot)

    def store(self, slot: int) -> "BytecodeBuilder":
        return self.emit(Op.STORE, slot)

    def jump(self, target: Label) -> "BytecodeBuilder":
        return self.emit(Op.JUMP, target)

    def jz(self, target: Label) -> "BytecodeBuilder":
        return self.emit(Op.JZ, target)

    def jnz(self, target: Label) -> "BytecodeBuilder":
        return self.emit(Op.JNZ, target)

    def call(self, function_name: str) -> "BytecodeBuilder":
        return self.emit(Op.CALL, function_name)

    def ret(self) -> "BytecodeBuilder":
        return self.emit(Op.RETURN)

    def ret_const(self, value: int = 0) -> "BytecodeBuilder":
        return self.push(value).ret()

    def new(self, class_name: str) -> "BytecodeBuilder":
        return self.emit(Op.NEW, class_name)

    def getfield(self, class_name: str, field: str) -> "BytecodeBuilder":
        return self.emit(Op.GETFIELD, (class_name, field))

    def putfield(self, class_name: str, field: str) -> "BytecodeBuilder":
        return self.emit(Op.PUTFIELD, (class_name, field))

    def loadfn(self, loadable_name: str) -> "BytecodeBuilder":
        """Load a registered loadable; pushes 1 if newly loaded, else 0."""
        return self.emit(Op.LOADFN, loadable_name)

    def replacefn(self, target: str, template: str) -> "BytecodeBuilder":
        """Replace *target*'s body with loadable *template*; pushes 1 if
        the swap happened, 0 if *template* was already installed."""
        return self.emit(Op.REPLACEFN, (target, template))

    def osrpoint(self, osr_id: int) -> "BytecodeBuilder":
        """An on-stack-replacement landing point (stack must be empty)."""
        return self.emit(Op.OSRPOINT, osr_id)

    def try_(self, handler: Label) -> "BytecodeBuilder":
        return self.emit(Op.TRY, handler)

    def endtry(self) -> "BytecodeBuilder":
        return self.emit(Op.ENDTRY)

    def throw(self) -> "BytecodeBuilder":
        return self.emit(Op.THROW)

    # -- finalization -------------------------------------------------------

    def current_pc(self) -> int:
        return len(self._code)

    def build(self) -> Function:
        """Resolve labels and return the finished function.

        Raises BytecodeError for unbound labels or a label bound past the
        last instruction (a branch to nowhere).
        """
        if self._pending_labels:
            raise BytecodeError(
                f"{self.name}: labels bound after the last instruction: "
                f"{[lab.name for lab in self._pending_labels]}"
            )
        code: List[Instruction] = []
        for ins in self._code:
            if ins.is_branch():
                target = ins.arg
                if not isinstance(target, Label):
                    raise BytecodeError(
                        f"{self.name}: branch arg must be a Label, got "
                        f"{target!r}"
                    )
                if target not in self._positions:
                    raise BytecodeError(
                        f"{self.name}: branch to unbound label {target.name}"
                    )
                code.append(Instruction(ins.op, self._positions[target]))
            else:
                code.append(ins.copy())
        return Function(self.name, self.num_params, self._num_locals, code)
