"""Whole-program container: functions, classes, and the entry point."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bytecode.function import Function
from repro.bytecode.klass import Klass
from repro.errors import BytecodeError


class Program:
    """A set of functions and classes with a designated entry.

    Programs are the unit handed to the verifier, the sampling framework
    (which maps instrumented functions to transformed replacements) and
    the VM. Transforms produce a *new* Program and never mutate their
    input, so a harness can run baseline and transformed variants of the
    same workload side by side.

    The function table is *closed* for classic workloads, but programs
    may also carry **loadables**: verified function templates that are
    not yet part of the table. ``LOADFN``/``REPLACEFN`` materialize a
    loadable at runtime via :meth:`define_at_runtime`; when a
    :attr:`loader` is attached (by the sampling framework or exhaustive
    instrumentation), the materialized body is instrumented at load
    time so dynamically-arriving code is covered by the same transform
    as the statically-known functions.
    """

    def __init__(
        self,
        functions: Optional[Iterable[Function]] = None,
        classes: Optional[Iterable[Klass]] = None,
        entry: str = "main",
        loadables: Optional[Iterable[Function]] = None,
    ):
        self.functions: Dict[str, Function] = {}
        self.classes: Dict[str, Klass] = {}
        self.entry = entry
        #: Function templates loadable at runtime, keyed by template name.
        self.loadables: Dict[str, Function] = {}
        #: Instrument-at-load hook: ``loader.load(template, name, program)``
        #: returns the (transformed) function to install. None means
        #: templates are installed as verified verbatim copies.
        self.loader: Optional[object] = None
        #: Which template is currently installed under each dynamic name
        #: (makes LOADFN/REPLACEFN idempotent per template).
        self._installed_template: Dict[str, str] = {}
        for fn in functions or ():
            self.add_function(fn)
        for kl in classes or ():
            self.add_class(kl)
        for fn in loadables or ():
            self.define_loadable(fn)

    # -- construction ------------------------------------------------------

    def add_function(self, fn: Function) -> None:
        if fn.name in self.functions:
            raise BytecodeError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn

    def add_class(self, kl: Klass) -> None:
        if kl.name in self.classes:
            raise BytecodeError(f"duplicate class {kl.name!r}")
        self.classes[kl.name] = kl

    def define_loadable(self, fn: Function) -> None:
        """Register a template that LOADFN/REPLACEFN can materialize."""
        if fn.name in self.loadables:
            raise BytecodeError(f"duplicate loadable {fn.name!r}")
        self.loadables[fn.name] = fn

    def replace_function(self, fn: Function) -> None:
        """Swap in a transformed body for an existing function name."""
        if fn.name not in self.functions:
            raise BytecodeError(f"no function {fn.name!r} to replace")
        self.functions[fn.name] = fn

    # -- dynamic code ------------------------------------------------------

    def resolve_callable(self, name: str) -> Optional[Function]:
        """The function *name* resolves to for arity purposes: installed
        functions first, then not-yet-loaded templates."""
        fn = self.functions.get(name)
        if fn is not None:
            return fn
        return self.loadables.get(name)

    def is_dynamic(self) -> bool:
        """True when the function table can change at runtime (any
        loadables registered, or any dynamic-code opcode present)."""
        if self.loadables:
            return True
        from repro.bytecode.opcodes import DYNAMIC_CODE_OPS

        return any(
            ins.op in DYNAMIC_CODE_OPS
            for fn in self.functions.values()
            for ins in fn.code
        )

    def define_at_runtime(
        self, template_name: str, target: Optional[str] = None
    ) -> Tuple[Function, bool]:
        """Materialize loadable *template_name*, optionally replacing
        *target*'s body, and return ``(installed_fn, changed)``.

        * LOADFN path (``target is None``): installs the template under
          its own name; a second load of the same template is a no-op.
        * REPLACEFN path: swaps *target*'s body for the template
          (arities must match); replacing with the already-installed
          template is a no-op. The old :class:`Function` object is left
          untouched — live frames keep executing it until they reach an
          OSR point, and engine-side compiled code dies with it.

        When a :attr:`loader` is attached the installed body is produced
        by ``loader.load`` (instrument-at-load); otherwise the template
        is copied and verified against this program.
        """
        template = self.loadables.get(template_name)
        if template is None:
            raise BytecodeError(f"no loadable template {template_name!r}")
        name = target if target is not None else template_name
        if target is None:
            if name in self.functions:
                return self.functions[name], False
        else:
            current = self.functions.get(target)
            if current is None:
                raise BytecodeError(
                    f"REPLACEFN target {target!r} is not loaded"
                )
            if current.num_params != template.num_params:
                raise BytecodeError(
                    f"cannot replace {target!r} "
                    f"({current.num_params} params) with template "
                    f"{template_name!r} ({template.num_params} params)"
                )
            if self._installed_template.get(target) == template_name:
                return current, False
        if self.loader is not None:
            fn = self.loader.load(template, name, self)
        else:
            from repro.bytecode.verifier import verify_function

            fn = template.copy(name=name)
            verify_function(fn, self)
        if target is None:
            self.add_function(fn)
        else:
            self.replace_function(fn)
        self._installed_template[name] = template_name
        return fn, True

    def installed_template(self, name: str) -> Optional[str]:
        """The template currently installed under *name* (None if the
        function was never dynamically defined)."""
        return self._installed_template.get(name)

    # -- lookup --------------------------------------------------------------

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise BytecodeError(f"unknown function {name!r}") from None

    def klass(self, name: str) -> Klass:
        try:
            return self.classes[name]
        except KeyError:
            raise BytecodeError(f"unknown class {name!r}") from None

    def entry_function(self) -> Function:
        return self.function(self.entry)

    def function_names(self) -> List[str]:
        return sorted(self.functions)

    # -- whole-program views ---------------------------------------------------

    def copy(self) -> "Program":
        """Deep-copy functions and loadables (classes are immutable and
        shared; the loader, which is stateless, is shared too)."""
        prog = Program(entry=self.entry)
        for fn in self.functions.values():
            prog.add_function(fn.copy())
        for kl in self.classes.values():
            prog.add_class(kl)
        for fn in self.loadables.values():
            prog.define_loadable(fn.copy())
        prog.loader = self.loader
        prog._installed_template = dict(self._installed_template)
        return prog

    def total_instructions(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions.values())

    def total_code_size_bytes(self) -> int:
        return sum(fn.code_size_bytes() for fn in self.functions.values())

    def validate_references(self) -> None:
        """Check that every CALL/SPAWN/NEW/field reference resolves.

        This is the cheap, whole-program half of verification; per-function
        stack-shape checking lives in :mod:`repro.bytecode.verifier`.
        """
        from repro.bytecode.opcodes import FIELD_REF_OPS, FUNCTION_REF_OPS, Op

        if self.entry not in self.functions:
            raise BytecodeError(f"entry function {self.entry!r} missing")
        checked = list(self.functions.values()) + list(self.loadables.values())
        for fn in checked:
            for pc, ins in enumerate(fn.code):
                if ins.op in FUNCTION_REF_OPS and (
                    ins.arg not in self.functions
                    and ins.arg not in self.loadables
                ):
                    raise BytecodeError(
                        f"{fn.name}@{pc}: call to unknown function {ins.arg!r}"
                    )
                if ins.op == Op.LOADFN and ins.arg not in self.loadables:
                    raise BytecodeError(
                        f"{fn.name}@{pc}: LOADFN of unknown loadable "
                        f"{ins.arg!r}"
                    )
                if ins.op == Op.REPLACEFN:
                    target, template_name = ins.arg
                    if (
                        target not in self.functions
                        and target not in self.loadables
                    ):
                        raise BytecodeError(
                            f"{fn.name}@{pc}: REPLACEFN of unknown function "
                            f"{target!r}"
                        )
                    template = self.loadables.get(template_name)
                    if template is None:
                        raise BytecodeError(
                            f"{fn.name}@{pc}: REPLACEFN with unknown "
                            f"template {template_name!r}"
                        )
                    replaced = self.resolve_callable(target)
                    if replaced.num_params != template.num_params:
                        raise BytecodeError(
                            f"{fn.name}@{pc}: REPLACEFN arity mismatch: "
                            f"{target!r} has {replaced.num_params} params, "
                            f"template {template_name!r} has "
                            f"{template.num_params}"
                        )
                if ins.op == Op.NEW and ins.arg not in self.classes:
                    raise BytecodeError(
                        f"{fn.name}@{pc}: NEW of unknown class {ins.arg!r}"
                    )
                if ins.op in FIELD_REF_OPS:
                    cls_name, field = ins.arg
                    kl = self.classes.get(cls_name)
                    if kl is None:
                        raise BytecodeError(
                            f"{fn.name}@{pc}: field access on unknown class "
                            f"{cls_name!r}"
                        )
                    if not kl.has_field(field):
                        raise BytecodeError(
                            f"{fn.name}@{pc}: class {cls_name} has no field "
                            f"{field!r}"
                        )

    def __repr__(self) -> str:
        return (
            f"<Program entry={self.entry!r} functions={len(self.functions)} "
            f"classes={len(self.classes)}>"
        )
