"""Whole-program container: functions, classes, and the entry point."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bytecode.function import Function
from repro.bytecode.klass import Klass
from repro.errors import BytecodeError


class Program:
    """A closed set of functions and classes with a designated entry.

    Programs are the unit handed to the verifier, the sampling framework
    (which maps instrumented functions to transformed replacements) and
    the VM. Transforms produce a *new* Program and never mutate their
    input, so a harness can run baseline and transformed variants of the
    same workload side by side.
    """

    def __init__(
        self,
        functions: Optional[Iterable[Function]] = None,
        classes: Optional[Iterable[Klass]] = None,
        entry: str = "main",
    ):
        self.functions: Dict[str, Function] = {}
        self.classes: Dict[str, Klass] = {}
        self.entry = entry
        for fn in functions or ():
            self.add_function(fn)
        for kl in classes or ():
            self.add_class(kl)

    # -- construction ------------------------------------------------------

    def add_function(self, fn: Function) -> None:
        if fn.name in self.functions:
            raise BytecodeError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn

    def add_class(self, kl: Klass) -> None:
        if kl.name in self.classes:
            raise BytecodeError(f"duplicate class {kl.name!r}")
        self.classes[kl.name] = kl

    def replace_function(self, fn: Function) -> None:
        """Swap in a transformed body for an existing function name."""
        if fn.name not in self.functions:
            raise BytecodeError(f"no function {fn.name!r} to replace")
        self.functions[fn.name] = fn

    # -- lookup --------------------------------------------------------------

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise BytecodeError(f"unknown function {name!r}") from None

    def klass(self, name: str) -> Klass:
        try:
            return self.classes[name]
        except KeyError:
            raise BytecodeError(f"unknown class {name!r}") from None

    def entry_function(self) -> Function:
        return self.function(self.entry)

    def function_names(self) -> List[str]:
        return sorted(self.functions)

    # -- whole-program views ---------------------------------------------------

    def copy(self) -> "Program":
        """Deep-copy functions (classes are immutable and shared)."""
        prog = Program(entry=self.entry)
        for fn in self.functions.values():
            prog.add_function(fn.copy())
        for kl in self.classes.values():
            prog.add_class(kl)
        return prog

    def total_instructions(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions.values())

    def total_code_size_bytes(self) -> int:
        return sum(fn.code_size_bytes() for fn in self.functions.values())

    def validate_references(self) -> None:
        """Check that every CALL/SPAWN/NEW/field reference resolves.

        This is the cheap, whole-program half of verification; per-function
        stack-shape checking lives in :mod:`repro.bytecode.verifier`.
        """
        from repro.bytecode.opcodes import FIELD_REF_OPS, FUNCTION_REF_OPS, Op

        if self.entry not in self.functions:
            raise BytecodeError(f"entry function {self.entry!r} missing")
        for fn in self.functions.values():
            for pc, ins in enumerate(fn.code):
                if ins.op in FUNCTION_REF_OPS and ins.arg not in self.functions:
                    raise BytecodeError(
                        f"{fn.name}@{pc}: call to unknown function {ins.arg!r}"
                    )
                if ins.op == Op.NEW and ins.arg not in self.classes:
                    raise BytecodeError(
                        f"{fn.name}@{pc}: NEW of unknown class {ins.arg!r}"
                    )
                if ins.op in FIELD_REF_OPS:
                    cls_name, field = ins.arg
                    kl = self.classes.get(cls_name)
                    if kl is None:
                        raise BytecodeError(
                            f"{fn.name}@{pc}: field access on unknown class "
                            f"{cls_name!r}"
                        )
                    if not kl.has_field(field):
                        raise BytecodeError(
                            f"{fn.name}@{pc}: class {cls_name} has no field "
                            f"{field!r}"
                        )

    def __repr__(self) -> str:
        return (
            f"<Program entry={self.entry!r} functions={len(self.functions)} "
            f"classes={len(self.classes)}>"
        )
