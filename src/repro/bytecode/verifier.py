"""Bytecode verifier: static well-formedness checks before execution.

Performs an abstract interpretation of operand-stack *depth* over each
function (values are untyped at this level; the VM traps on misuse of
references vs ints at runtime). Guarantees established here let the
interpreter skip bounds checks on its hot path:

* every branch target is a valid pc;
* stack depth at each pc is consistent across all incoming paths,
  never negative, and sufficient for each opcode's pops;
* LOAD/STORE slots are within ``num_locals``;
* execution cannot fall off the end of the code;
* CALL/SPAWN arities match the callee (via the containing Program).

Transforms call :func:`verify_program` after rewriting to catch bugs in
the rewrite itself — the paper's framework must preserve program
semantics exactly, and this is the first line of defence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.function import Function
from repro.bytecode.opcodes import (
    CONDITIONAL_BRANCH_OPS,
    Op,
    UNCONDITIONAL_EXITS,
    stack_effect,
)
from repro.bytecode.program import Program
from repro.errors import VerificationError


def _fail(fn: Function, pc: int, message: str) -> None:
    raise VerificationError(f"{fn.name}@{pc}: {message}")


def _effect(
    fn: Function, pc: int, op: Op, arg, program: Optional[Program]
) -> Tuple[int, int]:
    """(pops, pushes) for this instruction, resolving call arities."""
    if op in (Op.CALL, Op.SPAWN):
        if program is not None:
            # Resolve against installed functions *or* loadable
            # templates: verification is re-entrant, so a function
            # registered (or loaded) after program construction can be
            # verified against callees that are themselves not yet
            # materialized.
            callee = program.resolve_callable(arg)
            if callee is None:
                _fail(fn, pc, f"call to unknown function {arg!r}")
            return (callee.num_params, 1)
        # Without a program we cannot know arity; assume a legal call.
        return (0, 1)
    if op == Op.LOADFN:
        if program is not None and arg not in program.loadables:
            _fail(fn, pc, f"LOADFN of unknown loadable {arg!r}")
        return (0, 1)
    if op == Op.REPLACEFN:
        if program is not None:
            target, template = arg
            if program.loadables.get(template) is None:
                _fail(fn, pc, f"REPLACEFN with unknown template {template!r}")
            if program.resolve_callable(target) is None:
                _fail(fn, pc, f"REPLACEFN of unknown function {target!r}")
        return (0, 1)
    if op == Op.RETURN:
        return (1, 0)
    if op == Op.HALT:
        return (0, 0)
    try:
        return stack_effect(op)
    except KeyError:
        _fail(fn, pc, f"opcode {op.name} has no defined stack effect")
        raise AssertionError("unreachable")


def verify_function(fn: Function, program: Optional[Program] = None) -> Dict[int, int]:
    """Verify one function; returns the stack depth at each reachable pc.

    ``program`` enables call-arity and reference checks; pass None to
    verify a function in isolation (call effects assumed legal).
    """
    code = fn.code
    if not code:
        raise VerificationError(f"{fn.name}: empty code")
    n = len(code)
    depth_at: Dict[int, int] = {}
    worklist: List[Tuple[int, int]] = [(0, 0)]
    while worklist:
        pc, depth = worklist.pop()
        while True:
            if pc >= n:
                _fail(fn, pc, "execution falls off the end of the code")
            known = depth_at.get(pc)
            if known is not None:
                if known != depth:
                    _fail(
                        fn, pc,
                        f"inconsistent stack depth ({known} vs {depth})",
                    )
                break
            depth_at[pc] = depth
            ins = code[pc]
            op = ins.op
            if op in (Op.LOAD, Op.STORE):
                if not isinstance(ins.arg, int) or not (
                    0 <= ins.arg < fn.num_locals
                ):
                    _fail(fn, pc, f"local slot {ins.arg!r} out of range")
            if op == Op.OSRPOINT and depth != 0:
                _fail(
                    fn, pc,
                    f"OSRPOINT requires an empty operand stack, depth "
                    f"{depth}",
                )
            pops, pushes = _effect(fn, pc, op, ins.arg, program)
            if depth < pops:
                _fail(
                    fn, pc,
                    f"stack underflow: {op.name} pops {pops}, depth {depth}",
                )
            depth = depth - pops + pushes
            if op == Op.TRY:
                # The handler entry observes the depth recorded at TRY
                # time plus the thrown value: unwinding truncates the
                # operand stack back to that depth before the push.
                target = ins.arg
                if not isinstance(target, int) or not (0 <= target < n):
                    _fail(fn, pc, f"bad handler target {target!r}")
                worklist.append((target, depth + 1))
            if op in UNCONDITIONAL_EXITS or op == Op.HALT:
                if op == Op.JUMP:
                    target = ins.arg
                    if not isinstance(target, int) or not (0 <= target < n):
                        _fail(fn, pc, f"bad branch target {target!r}")
                    pc = target
                    continue
                break  # RETURN / HALT end this path
            if op in CONDITIONAL_BRANCH_OPS:
                target = ins.arg
                if not isinstance(target, int) or not (0 <= target < n):
                    _fail(fn, pc, f"bad branch target {target!r}")
                worklist.append((target, depth))
            pc += 1
    return depth_at


def verify_program(program: Program) -> None:
    """Verify references plus every function of *program*."""
    program.validate_references()
    entry = program.entry_function()
    if entry.num_params != 0:
        raise VerificationError(
            f"entry function {entry.name!r} must take 0 parameters"
        )
    for fn in program.functions.values():
        verify_function(fn, program)
    # Loadable templates are verified up front too, against the open
    # table (their callees may themselves be unmaterialized loadables),
    # so a LOADFN at runtime can never install unverifiable code.
    for fn in program.loadables.values():
        verify_function(fn, program)
