"""The repro stack-machine instruction set.

The ISA is a small JVM-flavoured stack machine: operands live on a
per-frame operand stack, locals in numbered slots, objects on a heap keyed
by class, arrays as first-class references. Four *pseudo-ops* (``CHECK``,
``GUARDED_INSTR``, ``INSTR``, ``YIELDPOINT``) exist only so the sampling
framework and thread scheduler have explicit, costed instructions to
insert; a source compiler never emits ``CHECK``/``INSTR`` directly.

Opcodes are plain ``IntEnum`` members so the interpreter can dispatch on
small integers.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple


class Op(enum.IntEnum):
    """Every opcode understood by the verifier, linearizer and VM."""

    # -- constants / stack shuffling ------------------------------------
    PUSH = enum.auto()      # arg: int constant         [] -> [v]
    POP = enum.auto()       #                           [v] -> []
    DUP = enum.auto()       #                           [v] -> [v, v]
    SWAP = enum.auto()      #                           [a, b] -> [b, a]

    # -- locals ----------------------------------------------------------
    LOAD = enum.auto()      # arg: slot                 [] -> [v]
    STORE = enum.auto()     # arg: slot                 [v] -> []

    # -- integer arithmetic (two operands popped, result pushed) ---------
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()       # traps on divide-by-zero
    MOD = enum.auto()       # traps on divide-by-zero
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()

    # -- unary -----------------------------------------------------------
    NEG = enum.auto()       #                           [v] -> [-v]
    NOT = enum.auto()       # logical not               [v] -> [v == 0]

    # -- comparisons (push 1 or 0) ----------------------------------------
    LT = enum.auto()
    LE = enum.auto()
    GT = enum.auto()
    GE = enum.auto()
    EQ = enum.auto()
    NE = enum.auto()

    # -- control flow ------------------------------------------------------
    JUMP = enum.auto()      # arg: target pc / Label
    JZ = enum.auto()        # arg: target; pops v, jumps if v == 0
    JNZ = enum.auto()       # arg: target; pops v, jumps if v != 0
    CALL = enum.auto()      # arg: function name; pops argc args, pushes result
    RETURN = enum.auto()    # pops return value, leaves frame
    HALT = enum.auto()      # stops the current thread

    # -- objects -----------------------------------------------------------
    NEW = enum.auto()       # arg: class name           [] -> [ref]
    GETFIELD = enum.auto()  # arg: (class, field)       [ref] -> [v]
    PUTFIELD = enum.auto()  # arg: (class, field)       [ref, v] -> []

    # -- arrays --------------------------------------------------------------
    NEWARRAY = enum.auto()  #                           [len] -> [ref]
    ALOAD = enum.auto()     #                           [ref, idx] -> [v]
    ASTORE = enum.auto()    #                           [ref, idx, v] -> []
    ALEN = enum.auto()      #                           [ref] -> [len]

    # -- environment -----------------------------------------------------------
    PRINT = enum.auto()     # pops v, appends to the VM output log
    IO = enum.auto()        # arg: latency class; pushes a pseudo-input int
    SPAWN = enum.auto()     # arg: function name; pops argc args, starts thread
    NOP = enum.auto()

    # -- framework pseudo-ops ----------------------------------------------
    YIELDPOINT = enum.auto()      # thread-scheduler poll point
    CHECK = enum.auto()           # arg: target; maybe-jump on sample trigger
    INSTR = enum.auto()           # arg: InstrumentationAction; always runs it
    GUARDED_INSTR = enum.auto()   # arg: action; runs it only on sample trigger

    # -- dynamic code / exceptions (appended: opcode numbers are stable) ----
    LOADFN = enum.auto()     # arg: loadable name        [] -> [loaded?]
    REPLACEFN = enum.auto()  # arg: (target, template)   [] -> [replaced?]
    OSRPOINT = enum.auto()   # arg: osr id; frame remap point    [] -> []
    TRY = enum.auto()        # arg: handler target; pushes a handler record
    ENDTRY = enum.auto()     # pops the innermost handler record
    THROW = enum.auto()      # pops v, unwinds to the innermost handler


#: Opcodes whose ``arg`` is a branch target (a ``Label`` before
#: linearization, an absolute pc afterwards). TRY's target is its
#: handler entry: never *jumped* to directly, but resolved, retargeted
#: and relocated exactly like a branch target.
BRANCH_OPS: FrozenSet[Op] = frozenset(
    {Op.JUMP, Op.JZ, Op.JNZ, Op.CHECK, Op.TRY}
)

#: Branches that fall through when not taken (everything but JUMP).
CONDITIONAL_BRANCH_OPS: FrozenSet[Op] = frozenset({Op.JZ, Op.JNZ, Op.CHECK})

#: Opcodes that terminate a basic block.
BLOCK_TERMINATORS: FrozenSet[Op] = frozenset(
    {Op.JUMP, Op.JZ, Op.JNZ, Op.RETURN, Op.HALT, Op.CHECK, Op.TRY, Op.THROW}
)

#: Opcodes that never fall through to the next instruction.
UNCONDITIONAL_EXITS: FrozenSet[Op] = frozenset(
    {Op.JUMP, Op.RETURN, Op.HALT, Op.THROW}
)

#: Opcodes that reference a function by name in ``arg``.
FUNCTION_REF_OPS: FrozenSet[Op] = frozenset({Op.CALL, Op.SPAWN})

#: Opcodes that load or replace guest code at runtime. A program
#: containing any of these has an *open* function table: engines must
#: resolve callees by name and compile lazily (see docs/VM_PERF.md).
DYNAMIC_CODE_OPS: FrozenSet[Op] = frozenset(
    {Op.LOADFN, Op.REPLACEFN, Op.OSRPOINT}
)

#: Guest exception-handling opcodes.
EXCEPTION_OPS: FrozenSet[Op] = frozenset({Op.TRY, Op.ENDTRY, Op.THROW})

#: Opcodes that reference ``(class, field)`` in ``arg``.
FIELD_REF_OPS: FrozenSet[Op] = frozenset({Op.GETFIELD, Op.PUTFIELD})

#: Framework pseudo-ops (inserted by transforms, not by source compilers).
PSEUDO_OPS: FrozenSet[Op] = frozenset(
    {Op.YIELDPOINT, Op.CHECK, Op.INSTR, Op.GUARDED_INSTR}
)

_BINARY_OPS: FrozenSet[Op] = frozenset(
    {
        Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
        Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
        Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ, Op.NE,
    }
)

#: ``(pops, pushes)`` for every opcode with a fixed stack effect.
#: CALL/SPAWN/RETURN are data-dependent and handled specially by the
#: verifier (their pop count depends on the callee's arity).
STACK_EFFECTS: Dict[Op, Tuple[int, int]] = {
    Op.PUSH: (0, 1),
    Op.POP: (1, 0),
    Op.DUP: (1, 2),
    Op.SWAP: (2, 2),
    Op.LOAD: (0, 1),
    Op.STORE: (1, 0),
    Op.NEG: (1, 1),
    Op.NOT: (1, 1),
    Op.JUMP: (0, 0),
    Op.JZ: (1, 0),
    Op.JNZ: (1, 0),
    Op.HALT: (0, 0),
    Op.NEW: (0, 1),
    Op.GETFIELD: (1, 1),
    Op.PUTFIELD: (2, 0),
    Op.NEWARRAY: (1, 1),
    Op.ALOAD: (2, 1),
    Op.ASTORE: (3, 0),
    Op.ALEN: (1, 1),
    Op.PRINT: (1, 0),
    Op.IO: (0, 1),
    Op.NOP: (0, 0),
    Op.YIELDPOINT: (0, 0),
    Op.CHECK: (0, 0),
    Op.INSTR: (0, 0),
    Op.GUARDED_INSTR: (0, 0),
    Op.LOADFN: (0, 1),
    Op.REPLACEFN: (0, 1),
    Op.OSRPOINT: (0, 0),
    Op.TRY: (0, 0),
    Op.ENDTRY: (0, 0),
    Op.THROW: (1, 0),
}
STACK_EFFECTS.update({op: (2, 1) for op in _BINARY_OPS})


def stack_effect(op: Op) -> Tuple[int, int]:
    """Return ``(pops, pushes)`` for *op*.

    Raises ``KeyError`` for CALL/SPAWN/RETURN, whose effect depends on the
    callee; the verifier computes those from the program.
    """
    return STACK_EFFECTS[op]


def is_binary(op: Op) -> bool:
    """True if *op* pops two integers and pushes one."""
    return op in _BINARY_OPS


#: Lower-case mnemonic -> opcode, used by the assembler.
MNEMONICS: Dict[str, Op] = {op.name.lower(): op for op in Op}
#: ``ret`` is accepted as a synonym for ``return`` (which is a Python keyword
#: and awkward in hand-written assembly).
MNEMONICS["ret"] = Op.RETURN
