"""Instruction and label objects.

An :class:`Instruction` is deliberately tiny — the interpreter touches
millions of them per experiment. ``arg`` is polymorphic by opcode:

========================  =========================================
opcode group              ``arg`` type
========================  =========================================
PUSH / LOAD / STORE        int
branches                   :class:`Label` before linearization,
                           absolute ``int`` pc afterwards
CALL / SPAWN / NEW         str (function or class name)
GETFIELD / PUTFIELD        ``(class_name, field_name)`` tuple
IO                         int latency class (>= 1)
INSTR / GUARDED_INSTR      an instrumentation action object (anything
                           with ``execute(vm, frame)`` and ``cost``)
others                     None
========================  =========================================
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.bytecode.opcodes import BRANCH_OPS, Op

_label_ids = itertools.count()


class Label:
    """A symbolic branch target resolved to a pc at linearization time.

    Labels are compared by identity: two labels with the same name are
    distinct targets. The name exists only for readable disassembly.
    """

    __slots__ = ("name", "uid")

    def __init__(self, name: str = ""):
        self.uid = next(_label_ids)
        self.name = name or f"L{self.uid}"

    def __repr__(self) -> str:
        return f"<Label {self.name}>"


class Instruction:
    """One executable instruction: an opcode plus its operand.

    Instances are mutable (the linearizer patches branch args in place)
    but the interpreter treats them as read-only.

    ``meta`` carries a transform-stable identity (e.g. a call-site id
    assigned once after compilation). Copies share it, so a profile key
    minted from ``meta`` matches across baseline, exhaustive, and
    sampled variants of the same program — which is what makes overlap
    comparisons meaningful.
    """

    __slots__ = ("op", "arg", "meta")

    def __init__(self, op: Op, arg: Any = None, meta: Any = None):
        self.op = op
        self.arg = arg
        self.meta = meta

    def copy(self) -> "Instruction":
        """Shallow copy; branch args (labels) and meta are shared."""
        return Instruction(self.op, self.arg, self.meta)

    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def __repr__(self) -> str:
        if self.arg is None:
            return f"{self.op.name}"
        if isinstance(self.arg, Label):
            return f"{self.op.name} {self.arg.name}"
        return f"{self.op.name} {self.arg!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Instruction)
            and self.op == other.op
            and self.arg == other.arg
        )

    def __hash__(self) -> int:
        arg = self.arg
        if not isinstance(arg, (int, str, tuple, type(None))):
            arg = id(arg)
        return hash((self.op, arg))


def instr(op: Op, arg: Any = None) -> Instruction:
    """Convenience constructor used heavily in tests and transforms."""
    return Instruction(op, arg)


def format_arg(instruction: Instruction) -> Optional[str]:
    """Render an instruction's operand for disassembly (None if no arg)."""
    arg = instruction.arg
    if arg is None:
        return None
    if isinstance(arg, Label):
        return arg.name
    if isinstance(arg, tuple):
        return ".".join(str(part) for part in arg)
    if hasattr(arg, "describe"):
        return arg.describe()
    return str(arg)
