"""Function objects: the unit of compilation, transformation and execution.

A function's ``code`` is a flat list of :class:`Instruction` whose branch
args are absolute pcs (ints). Transforms that need structure build a CFG
from the code (:mod:`repro.cfg.graph`), rewrite it, and re-linearize
(:mod:`repro.cfg.linearize`) rather than patching pcs by hand.

Calling convention: the caller pushes arguments left-to-right; ``CALL``
pops them into local slots ``0 .. num_params-1`` of the new frame. Every
function returns exactly one value via ``RETURN`` (MiniJ ``void``
functions return 0).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError


class Function:
    """A named bytecode function.

    Attributes:
        name: globally unique function name.
        num_params: number of parameters (occupying local slots 0..n-1).
        num_locals: total local slots, >= num_params.
        code: linearized instruction list (branch args are absolute pcs).
        notes: free-form metadata used by transforms and the harness
            (e.g. ``{"sampling": "full-duplication"}``).
    """

    __slots__ = ("name", "num_params", "num_locals", "code", "notes")

    def __init__(
        self,
        name: str,
        num_params: int,
        num_locals: int,
        code: Optional[List[Instruction]] = None,
        notes: Optional[Dict[str, Any]] = None,
    ):
        if num_params < 0:
            raise BytecodeError(f"{name}: negative num_params")
        if num_locals < num_params:
            raise BytecodeError(
                f"{name}: num_locals ({num_locals}) < num_params ({num_params})"
            )
        self.name = name
        self.num_params = num_params
        self.num_locals = num_locals
        self.code: List[Instruction] = code if code is not None else []
        self.notes: Dict[str, Any] = notes if notes is not None else {}

    # -- derived views -----------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Function":
        """Deep-copy instructions (sharing action payloads and labels)."""
        return Function(
            name or self.name,
            self.num_params,
            self.num_locals,
            [ins.copy() for ins in self.code],
            dict(self.notes),
        )

    def instruction_count(self) -> int:
        return len(self.code)

    def code_size_bytes(self) -> int:
        """A simple size proxy: 4 bytes per instruction (arg folded in).

        Used by the harness for the paper's "Maximum Space Increase"
        column; only ratios matter, so the constant is arbitrary.
        """
        return 4 * len(self.code)

    def opcodes(self) -> Iterable[Op]:
        for ins in self.code:
            yield ins.op

    def count_op(self, op: Op) -> int:
        return sum(1 for ins in self.code if ins.op == op)

    def called_functions(self) -> List[str]:
        """Names of functions referenced by CALL/SPAWN, in code order."""
        return [
            ins.arg
            for ins in self.code
            if ins.op in (Op.CALL, Op.SPAWN)
        ]

    def __repr__(self) -> str:
        return (
            f"<Function {self.name}({self.num_params}) "
            f"locals={self.num_locals} len={len(self.code)}>"
        )
