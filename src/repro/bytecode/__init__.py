"""Stack-machine bytecode: ISA, containers, builder, (dis)assembler, verifier."""

from repro.bytecode.assembler import assemble
from repro.bytecode.builder import BytecodeBuilder
from repro.bytecode.disassembler import disassemble_function, disassemble_program
from repro.bytecode.function import Function
from repro.bytecode.instructions import Instruction, Label, instr
from repro.bytecode.klass import Klass
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_function, verify_program

__all__ = [
    "Op",
    "Instruction",
    "Label",
    "instr",
    "Function",
    "Klass",
    "Program",
    "BytecodeBuilder",
    "assemble",
    "disassemble_function",
    "disassemble_program",
    "verify_function",
    "verify_program",
]
