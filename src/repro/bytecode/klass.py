"""Class (record type) declarations.

A :class:`Klass` is a named tuple of integer-valued fields — the heap
object model is deliberately simple (no inheritance, no methods; MiniJ
functions are free functions). Field order defines heap slot layout.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import BytecodeError


class Klass:
    """A record type with named integer/reference fields."""

    __slots__ = ("name", "fields", "_slots")

    def __init__(self, name: str, fields: Sequence[str]):
        if len(set(fields)) != len(fields):
            raise BytecodeError(f"class {name}: duplicate field names")
        self.name = name
        self.fields: Tuple[str, ...] = tuple(fields)
        self._slots: Dict[str, int] = {f: i for i, f in enumerate(self.fields)}

    def slot_of(self, field: str) -> int:
        """Heap slot index of *field*; raises BytecodeError if absent."""
        try:
            return self._slots[field]
        except KeyError:
            raise BytecodeError(
                f"class {self.name} has no field {field!r}"
            ) from None

    def has_field(self, field: str) -> bool:
        return field in self._slots

    def field_names(self) -> List[str]:
        return list(self.fields)

    def num_fields(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:
        return f"<Klass {self.name} {{{', '.join(self.fields)}}}>"
