"""Profile-directed recompilation: sampled profile -> better code.

Implements the feedback-directed optimization the paper motivates
(§1's "profiling information is used to decide not only what to
optimize, but how"): hot call sites identified by *sampled* call-edge
profiles are inlined, then the cleanup pipeline re-optimizes and the
VM conventions (yieldpoints, call-site ids) are reapplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program
from repro.adaptive.hotness import HotCallSite
from repro.instrument.call_edge import assign_call_site_ids
from repro.opt.inline import inline_call_site
from repro.opt.pipeline import cleanup_program
from repro.sampling.yieldpoints import insert_yieldpoints


@dataclass
class RecompileReport:
    """What profile-directed recompilation actually did."""

    inlined: List[Tuple[str, int, str]] = field(default_factory=list)
    skipped: List[Tuple[str, int, str, str]] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"inlined {len(self.inlined)} hot call site(s)"]
        for caller, site, callee in self.inlined:
            lines.append(f"  {caller}@{site} -> {callee}")
        for caller, site, callee, reason in self.skipped:
            lines.append(f"  skipped {caller}@{site} -> {callee}: {reason}")
        return "\n".join(lines)


def _find_call_pc(program: Program, caller: str, site: int) -> Optional[int]:
    """Locate the CALL whose stamped site id is ``(caller, site)``."""
    fn = program.functions.get(caller)
    if fn is None:
        return None
    for pc, ins in enumerate(fn.code):
        if ins.op == Op.CALL and ins.meta == (caller, site):
            return pc
    return None


def profile_directed_inline(
    program: Program,
    sites: List[HotCallSite],
    max_callee_size: int = 200,
    max_caller_growth: int = 4000,
) -> Tuple[Program, RecompileReport]:
    """Inline the given hot sites into a copy of *program*.

    Sites are addressed by their stable call-site ids (Instruction
    ``meta``), so profiles collected on any transformed variant apply
    directly to the baseline code being recompiled. Returns the new
    program (cleaned up, yieldpoints and site ids refreshed) and a
    report of decisions.
    """
    result = program.copy()
    report = RecompileReport()
    for site in sites:
        pc = _find_call_pc(result, site.caller, site.site)
        if pc is None:
            report.skipped.append(
                (site.caller, site.site, site.callee, "site not found")
            )
            continue
        callee = result.functions.get(site.callee)
        if callee is None or site.callee == site.caller:
            report.skipped.append(
                (site.caller, site.site, site.callee, "recursive or missing")
            )
            continue
        if len(callee.code) > max_callee_size:
            report.skipped.append(
                (site.caller, site.site, site.callee, "callee too large")
            )
            continue
        caller_fn = result.functions[site.caller]
        if len(caller_fn.code) + len(callee.code) > max_caller_growth:
            report.skipped.append(
                (site.caller, site.site, site.callee, "caller growth cap")
            )
            continue
        result.replace_function(inline_call_site(caller_fn, pc, callee))
        report.inlined.append((site.caller, site.site, site.callee))

    # Re-optimize and reapply VM conventions: strip stale yieldpoints
    # (inlined bodies carried their entry yieldpoints along), clean up,
    # and re-insert a fresh, consistent set. Stripping goes through the
    # CFG so branch targets stay valid.
    from repro.cfg.graph import CFG
    from repro.cfg.linearize import linearize
    from repro.sampling.duplication import strip_ops

    for name in result.function_names():
        cfg = CFG.from_function(result.functions[name])
        strip_ops(cfg, list(cfg.blocks), [Op.YIELDPOINT])
        result.replace_function(linearize(cfg))
    result = cleanup_program(result)
    result = insert_yieldpoints(result)
    assign_call_site_ids(result)
    verify_program(result)
    return result, report
