"""Value-based method specialization from sampled parameter profiles.

Paper §4.3: "There are also other types of profile information
available at method entry, such as parameter values that can be used to
guide specialization." This module closes that loop:

1. :class:`ParameterValueInstrumentation` (sampled by the framework)
   observes argument values at method entries;
2. :func:`specialization_candidates` picks (function, parameter, value)
   triples where one value dominates the samples;
3. :func:`specialize_function` clones the function with that parameter
   pinned to the hot constant, lets constant folding collapse the
   now-decidable branches, and installs a dispatching stub:

       func f(a, b):
           if (b == HOT) return f__spec_b_HOT(a, b)
           return f__orig(a, b)

Specialization is sound for any argument (the guard falls back), and
profitable when the pinned value folds work away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bytecode.builder import BytecodeBuilder
from repro.bytecode.function import Function
from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program
from repro.cfg.graph import CFG
from repro.cfg.linearize import linearize
from repro.errors import TransformError
from repro.opt.pipeline import cleanup_function_cfg
from repro.profiles.profile import Profile


@dataclass(frozen=True)
class SpecializationCandidate:
    """A (function, parameter, value) worth specializing on."""

    function: str
    param_index: int
    value: int
    share: float
    samples: int


def specialization_candidates(
    param_profile: Profile,
    min_share: float = 0.8,
    min_samples: int = 10,
) -> List[SpecializationCandidate]:
    """Dominant parameter values from a (sampled) parameter profile.

    The profile's keys are ``(function, param_index, value)`` as
    produced by :class:`ParameterValueInstrumentation`. A candidate is
    emitted when one value holds at least ``min_share`` of that
    parameter's observations (clamp buckets are skipped — a clamped
    bucket is a range, not a value).
    """
    from repro.instrument.value_profile import VALUE_CLAMP

    by_param: Dict[Tuple[str, int], Dict[int, int]] = {}
    for (function, index, value), count in param_profile.counts.items():
        by_param.setdefault((function, index), {})[value] = (
            by_param.get((function, index), {}).get(value, 0) + count
        )
    candidates: List[SpecializationCandidate] = []
    for (function, index), values in sorted(by_param.items()):
        total = sum(values.values())
        if total < min_samples:
            continue
        value, count = max(values.items(), key=lambda kv: (kv[1], -kv[0]))
        if abs(value) > VALUE_CLAMP:
            continue
        share = count / total
        if share >= min_share:
            candidates.append(
                SpecializationCandidate(function, index, value, share, count)
            )
    candidates.sort(key=lambda c: (-c.share * c.samples, c.function))
    return candidates


def _param_is_reassigned(fn: Function, slot: int) -> bool:
    return any(
        ins.op is Op.STORE and ins.arg == slot for ins in fn.code
    )


def _pinned_clone(fn: Function, name: str, slot: int, value: int) -> Function:
    """Copy of *fn* with ``LOAD slot`` replaced by ``PUSH value``, then
    cleaned up (folding collapses branches the pin decides)."""
    clone = fn.copy(name)
    clone.code = [
        Instruction(Op.PUSH, value)
        if ins.op is Op.LOAD and ins.arg == slot
        else ins.copy()
        for ins in fn.code
    ]
    cfg = CFG.from_function(clone)
    cleanup_function_cfg(cfg)
    return linearize(cfg, notes=dict(fn.notes, specialized_on=(slot, value)))


def specialize_function(
    program: Program,
    candidate: SpecializationCandidate,
    verify: bool = True,
    inline_stub: bool = True,
) -> Tuple[Program, str]:
    """Install a specialization in a copy of *program*.

    Returns ``(new_program, specialized_name)``. Raises TransformError
    when the parameter is reassigned in the body (the pin would be
    unsound) or the function doesn't exist.

    ``inline_stub`` (default) inlines the dispatching stub into every
    call site, so the guard costs a compare-and-branch instead of an
    extra call — what a JIT's specialized-entry rewrite achieves.
    """
    fn = program.functions.get(candidate.function)
    if fn is None:
        raise TransformError(f"no function {candidate.function!r}")
    if not 0 <= candidate.param_index < fn.num_params:
        raise TransformError(
            f"{candidate.function} has no parameter {candidate.param_index}"
        )
    if _param_is_reassigned(fn, candidate.param_index):
        raise TransformError(
            f"{candidate.function}: parameter {candidate.param_index} is "
            f"reassigned; pinning it would be unsound"
        )

    result = program.copy()
    original_name = f"{candidate.function}__orig"
    spec_name = (
        f"{candidate.function}__spec_p{candidate.param_index}_"
        f"{candidate.value}".replace("-", "m")
    )
    if original_name in result.functions or spec_name in result.functions:
        raise TransformError(
            f"{candidate.function}: already specialized"
        )

    original = result.functions.pop(candidate.function)
    result.add_function(original.copy(original_name))
    result.add_function(
        _pinned_clone(original, spec_name, candidate.param_index,
                      candidate.value)
    )

    # Dispatching stub under the original name: call sites are untouched.
    stub = BytecodeBuilder(candidate.function, num_params=fn.num_params)
    slow = stub.new_label("slow")
    stub.load(candidate.param_index).push(candidate.value).emit(Op.EQ)
    stub.jz(slow)
    for slot in range(fn.num_params):
        stub.load(slot)
    stub.call(spec_name).ret()
    stub.label(slow)
    for slot in range(fn.num_params):
        stub.load(slot)
    stub.call(original_name).ret()
    result.add_function(stub.build())

    if inline_stub:
        from repro.opt.inline import inline_program

        result = inline_program(
            result,
            should_inline=lambda caller, callee: (
                callee.name == candidate.function
            ),
        )

    if verify:
        verify_program(result)
    return result, spec_name


def specialize_from_profile(
    program: Program,
    param_profile: Profile,
    min_share: float = 0.8,
    min_samples: int = 10,
    limit: int = 4,
) -> Tuple[Program, List[SpecializationCandidate]]:
    """Apply up to *limit* profitable-looking specializations.

    Unsound or colliding candidates are skipped silently; the applied
    list is returned alongside the new program.
    """
    applied: List[SpecializationCandidate] = []
    current = program
    for candidate in specialization_candidates(
        param_profile, min_share, min_samples
    ):
        if len(applied) >= limit:
            break
        try:
            current, _name = specialize_function(current, candidate)
        except TransformError:
            continue
        applied.append(candidate)
    return current, applied
