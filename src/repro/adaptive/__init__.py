"""Adaptive optimization: the sampled-profile-driven client system."""

from repro.adaptive.controller import AdaptiveController, AdaptiveOutcome
from repro.adaptive.hotness import (
    HotCallSite,
    HotContext,
    context_method_hotness,
    hot_call_sites,
    hot_contexts,
    hot_methods,
    method_hotness,
)
from repro.adaptive.recompile import (
    RecompileReport,
    profile_directed_inline,
)
from repro.adaptive.specialize import (
    SpecializationCandidate,
    specialization_candidates,
    specialize_from_profile,
    specialize_function,
)
from repro.adaptive.system import (
    AdaptiveVMSimulation,
    EpochReport,
    MethodState,
    SimulationResult,
)

__all__ = [
    "AdaptiveController",
    "AdaptiveOutcome",
    "HotCallSite",
    "HotContext",
    "method_hotness",
    "context_method_hotness",
    "hot_methods",
    "hot_call_sites",
    "hot_contexts",
    "profile_directed_inline",
    "RecompileReport",
    "AdaptiveVMSimulation",
    "SimulationResult",
    "EpochReport",
    "MethodState",
    "SpecializationCandidate",
    "specialization_candidates",
    "specialize_function",
    "specialize_from_profile",
]
