"""Hotness estimation from sampled profiles.

The paper's framework exists to feed an adaptive optimization system
(§1: Jalapeño's controller). This module turns sampled profiles into
the two decisions such a controller makes: *which methods are hot* and
*which call sites are worth inlining*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.profiles.profile import Profile


@dataclass(frozen=True)
class HotCallSite:
    """One call edge with its observed sample share."""

    caller: str
    site: int
    callee: str
    samples: int
    share: float  # fraction of all call-edge samples

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.caller, self.site, self.callee)


def method_hotness(call_edge_profile: Profile) -> Dict[str, float]:
    """Per-callee share of call-edge samples (a method-entry hotness
    estimate, like Self-93's invocation counters but sampled)."""
    total = call_edge_profile.total()
    if total == 0:
        return {}
    hotness: Dict[str, float] = {}
    for key, count in call_edge_profile.counts.items():
        _caller, _site, callee = key
        hotness[callee] = hotness.get(callee, 0.0) + count / total
    return hotness


def hot_methods(
    call_edge_profile: Profile, threshold: float = 0.05
) -> List[str]:
    """Callees receiving at least *threshold* of call-edge samples,
    hottest first (deterministic tie-break by name)."""
    hotness = method_hotness(call_edge_profile)
    selected = [
        (share, name) for name, share in hotness.items() if share >= threshold
    ]
    selected.sort(key=lambda item: (-item[0], item[1]))
    return [name for _share, name in selected]


def hot_call_sites(
    call_edge_profile: Profile,
    threshold: float = 0.02,
    limit: int = 16,
) -> List[HotCallSite]:
    """Call sites worth inlining: at least *threshold* of samples, at
    most *limit* sites, hottest first."""
    total = call_edge_profile.total()
    if total == 0:
        return []
    sites: List[HotCallSite] = []
    for key, count in call_edge_profile.counts.items():
        caller, site, callee = key
        share = count / total
        if share >= threshold and caller != "<root>":
            sites.append(HotCallSite(caller, site, callee, count, share))
    sites.sort(key=lambda s: (-s.samples, s.caller, s.site, s.callee))
    return sites[:limit]
