"""Hotness estimation from sampled profiles.

The paper's framework exists to feed an adaptive optimization system
(§1: Jalapeño's controller). This module turns sampled profiles into
the two decisions such a controller makes: *which methods are hot* and
*which call sites are worth inlining*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.profiles.profile import Profile


@dataclass(frozen=True)
class HotCallSite:
    """One call edge with its observed sample share."""

    caller: str
    site: int
    callee: str
    samples: int
    share: float  # fraction of all call-edge samples

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.caller, self.site, self.callee)


def method_hotness(call_edge_profile: Profile) -> Dict[str, float]:
    """Per-callee share of call-edge samples (a method-entry hotness
    estimate, like Self-93's invocation counters but sampled)."""
    total = call_edge_profile.total()
    if total == 0:
        return {}
    hotness: Dict[str, float] = {}
    for key, count in call_edge_profile.counts.items():
        _caller, _site, callee = key
        hotness[callee] = hotness.get(callee, 0.0) + count / total
    return hotness


def hot_methods(
    call_edge_profile: Profile, threshold: float = 0.05
) -> List[str]:
    """Callees receiving at least *threshold* of call-edge samples,
    hottest first (deterministic tie-break by name)."""
    hotness = method_hotness(call_edge_profile)
    selected = [
        (share, name) for name, share in hotness.items() if share >= threshold
    ]
    selected.sort(key=lambda item: (-item[0], item[1]))
    return [name for _share, name in selected]


def hot_call_sites(
    call_edge_profile: Profile,
    threshold: float = 0.02,
    limit: int = 16,
) -> List[HotCallSite]:
    """Call sites worth inlining: at least *threshold* of samples, at
    most *limit* sites, hottest first."""
    total = call_edge_profile.total()
    if total == 0:
        return []
    sites: List[HotCallSite] = []
    for key, count in call_edge_profile.counts.items():
        caller, site, callee = key
        share = count / total
        if share >= threshold and caller != "<root>":
            sites.append(HotCallSite(caller, site, callee, count, share))
    sites.sort(key=lambda s: (-s.samples, s.caller, s.site, s.callee))
    return sites[:limit]


# ---------------------------------------------------------------------------
# live calling-context hotness (streamed CCT epochs)


@dataclass(frozen=True)
class HotContext:
    """One calling context with its observed sample share."""

    path: Tuple[str, ...]
    samples: float
    wall: float
    share: float  # fraction of all CCT samples

    @property
    def leaf(self) -> str:
        return self.path[-1] if self.path else ""


def hot_contexts(
    cct: Mapping[str, Mapping[str, Sequence[float]]],
    threshold: float = 0.0,
    limit: int = 16,
) -> List[HotContext]:
    """The hottest calling contexts in a CCT snapshot table (a
    profiler snapshot's ``"cct"`` subdict, or
    ``SpoolReader.cct_table()`` for a live spool), hottest first.

    This is the online half of the hotness signal: a mid-run
    re-planner can read a live spool's latest CCT epoch and decide per
    *context*, not just per function, where instrumentation is worth
    its cost.
    """
    from repro.profiling.cct import split_path, top_contexts

    total = 0.0
    for cell in cct.values():
        for slot in cell.values():
            total += slot[0]
    if total <= 0:
        return []
    out: List[HotContext] = []
    for key, samples, wall in top_contexts(cct, limit=limit):
        share = samples / total
        if share >= threshold:
            out.append(HotContext(split_path(key), samples, wall, share))
    return out


def context_method_hotness(
    cct: Mapping[str, Mapping[str, Sequence[float]]],
) -> Dict[str, float]:
    """Per-leaf-function share of CCT samples — the context-resolved
    analogue of :func:`method_hotness`, so existing per-method policies
    can consume live CCT epochs unchanged."""
    from repro.profiling.cct import split_path

    totals: Dict[str, float] = {}
    grand = 0.0
    for key, cell in cct.items():
        n = 0.0
        for slot in cell.values():
            n += slot[0]
        path = split_path(key)
        leaf = path[-1] if path else ""
        totals[leaf] = totals.get(leaf, 0.0) + n
        grand += n
    if grand <= 0:
        return {}
    return {name: n / grand for name, n in totals.items() if n > 0}
