"""A selective-optimization VM controller (the paper's §1 context).

The paper positions the sampling framework inside an *adaptive* JVM:
methods start at a cheap compilation level, a controller watches cheap
profiles, hot methods get recompiled at a higher level, and — the
paper's contribution — detailed instrumentation can now run online to
guide *how* to optimize, not just *what*.

:class:`AdaptiveVMSimulation` models that lifecycle over epochs:

1. every function is compiled at O0 (cheap compile, slow code);
2. each epoch runs the current program image under Full-Duplication
   call-edge sampling (a few percent overhead) and charges both the run
   and any compilation work to a cumulative cycle budget;
3. between epochs the controller promotes hot methods to O2 and inlines
   hot call sites (feedback-directed optimization), paying a modelled
   compile cost proportional to code size and level;
4. the simulation converges when an epoch makes no new decisions.

The deliverable is the per-epoch cycle trajectory: an initial slow
epoch, compile-cost humps, and a faster steady state — the selective
optimization curve of the paper's [5, 7] citations, with the framework
supplying the profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.adaptive.hotness import HotCallSite, hot_call_sites, method_hotness
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program
from repro.cfg.graph import CFG
from repro.cfg.linearize import linearize
from repro.frontend.compiler import CompileOptions, compile_source
from repro.instrument.call_edge import (
    CallEdgeInstrumentation,
    assign_call_site_ids,
)
from repro.opt.inline import inline_function_calls
from repro.opt.pipeline import cleanup_function_cfg
from repro.sampling.duplication import strip_ops
from repro.sampling.framework import SamplingFramework, Strategy
from repro.sampling.triggers import CounterTrigger
from repro.sampling.yieldpoints import insert_yieldpoints_cfg
from repro.vm.cost_model import CostModel
from repro.vm.interpreter import VM
from repro.bytecode.opcodes import Op

#: Modelled compile cost, cycles per emitted instruction, by level.
COMPILE_COST_PER_INSTRUCTION = {0: 15, 2: 120}


@dataclass
class MethodState:
    """Per-method compilation record."""

    name: str
    level: int = 0
    recompiles: int = 0
    compile_cycles: int = 0


@dataclass
class EpochReport:
    """What one epoch ran and decided."""

    index: int
    run_cycles: int = 0
    compile_cycles: int = 0
    samples: int = 0
    promoted: List[str] = field(default_factory=list)
    inlined: List[str] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.run_cycles + self.compile_cycles


@dataclass
class SimulationResult:
    """The full trajectory plus the final program image."""

    epochs: List[EpochReport]
    methods: Dict[str, MethodState]
    final_program: Optional[Program] = None
    baseline_epoch_cycles: int = 0

    @property
    def steady_state_cycles(self) -> int:
        return self.epochs[-1].run_cycles if self.epochs else 0

    @property
    def speedup_pct(self) -> float:
        if not self.baseline_epoch_cycles:
            return 0.0
        return 100.0 * (
            1.0 - self.steady_state_cycles / self.baseline_epoch_cycles
        )

    def summary(self) -> str:
        lines = [
            f"epoch  run-cycles  compile  samples  decisions",
        ]
        for epoch in self.epochs:
            decisions = len(epoch.promoted) + len(epoch.inlined)
            lines.append(
                f"{epoch.index:5d}  {epoch.run_cycles:10d}  "
                f"{epoch.compile_cycles:7d}  {epoch.samples:7d}  "
                f"{decisions}"
            )
        lines.append(
            f"steady state {self.speedup_pct:+.1f}% vs first epoch; "
            f"{sum(m.recompiles for m in self.methods.values())} "
            f"recompilation(s)"
        )
        return lines and "\n".join(lines) or ""


class AdaptiveVMSimulation:
    """Epoch-driven selective optimization over one MiniJ program.

    Args:
        source: MiniJ program text (its ``main`` is one epoch's work).
        interval: sample interval for the profiling runs.
        hot_method_threshold: share of call-edge samples for promotion.
        hot_site_threshold: share for profile-directed inlining.
        max_epochs: stop even if decisions keep appearing.
        cost_model: VM cycle model.
        plan: optional :class:`~repro.analysis.planner.StrategyPlan`
            (or a ``{function: strategy}`` mapping) feeding the static
            planner's per-function strategy choices forward into the
            online system: each epoch's profiling image is built with
            :func:`~repro.sampling.framework.transform_planned` instead
            of uniform Full-Duplication, so cold/unreachable methods
            skip the duplication cost from epoch 0 onward.
    """

    def __init__(
        self,
        source: str,
        interval: int = 101,
        hot_method_threshold: float = 0.10,
        hot_site_threshold: float = 0.05,
        max_epochs: int = 6,
        cost_model: Optional[CostModel] = None,
        plan: Optional[object] = None,
    ):
        self.source = source
        self.interval = interval
        self.hot_method_threshold = hot_method_threshold
        self.hot_site_threshold = hot_site_threshold
        self.max_epochs = max_epochs
        self.cost_model = cost_model or CostModel()
        self.plan_assignments = _plan_assignments(plan)

    # -- compilation model ---------------------------------------------------

    def _initial_program(self) -> Program:
        """O0 image with VM conventions; every method at level 0."""
        program = compile_source(self.source, CompileOptions(opt_level=0))
        program = _with_conventions(program)
        return program

    def _compile_cost(self, program: Program, name: str, level: int) -> int:
        size = program.functions[name].instruction_count()
        return size * COMPILE_COST_PER_INSTRUCTION[level]

    def _promote(
        self,
        program: Program,
        name: str,
        hot_sites: List[HotCallSite],
        methods: Dict[str, MethodState],
        epoch: EpochReport,
    ) -> None:
        """Recompile *name* at O2, inlining its hot call sites."""
        fn = program.functions[name]
        site_keys: Set = {
            (site.caller, site.site) for site in hot_sites
            if site.caller == name
        }

        def heuristic(caller, callee):
            for pc, ins in enumerate(caller.code):
                if (
                    ins.op is Op.CALL
                    and ins.arg == callee.name
                    and ins.meta in site_keys
                ):
                    return True
            return len(callee.code) <= 12

        improved = inline_function_calls(
            fn, program, heuristic, max_result_size=3000
        )
        cfg = CFG.from_function(improved)
        strip_ops(cfg, list(cfg.blocks), [Op.YIELDPOINT])
        cleanup_function_cfg(cfg)
        insert_yieldpoints_cfg(cfg)
        program.replace_function(linearize(cfg))

        state = methods[name]
        state.level = 2
        state.recompiles += 1
        cost = self._compile_cost(program, name, 2)
        state.compile_cycles += cost
        epoch.compile_cycles += cost
        epoch.promoted.append(name)

    def _profiling_image(self, program: Program, instr) -> Program:
        """Transform *program* for one profiling epoch.

        With a feed-forward plan, functions the static planner marked
        cheap (cold, unreachable, loop-light) get their planned
        strategy; methods the plan never saw — e.g. created by later
        recompilation — fall back to Full-Duplication.
        """
        if self.plan_assignments:
            from repro.sampling.framework import transform_planned

            return transform_planned(
                program,
                instr,
                self.plan_assignments,
                default=Strategy.FULL_DUPLICATION,
            )
        framework = SamplingFramework(Strategy.FULL_DUPLICATION)
        return framework.transform(program, instr)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        program = self._initial_program()
        methods = {
            name: MethodState(name) for name in program.function_names()
        }
        epochs: List[EpochReport] = []
        # charge the initial O0 compiles
        initial_compile = sum(
            self._compile_cost(program, name, 0)
            for name in program.function_names()
        )

        expected_value = None
        for index in range(self.max_epochs):
            epoch = EpochReport(index)
            if index == 0:
                epoch.compile_cycles += initial_compile

            instr = CallEdgeInstrumentation()
            profiled = self._profiling_image(program, instr)
            run = VM(
                profiled,
                cost_model=self.cost_model,
                trigger=CounterTrigger(self.interval),
            ).run()
            if expected_value is None:
                expected_value = run.value
            elif run.value != expected_value:
                raise AssertionError(
                    "adaptive recompilation changed program semantics"
                )
            epoch.run_cycles = run.stats.cycles
            epoch.samples = run.stats.samples_taken

            hotness = method_hotness(instr.profile)
            sites = hot_call_sites(
                instr.profile, self.hot_site_threshold
            )
            promoted_any = False
            # Promote the hot callees themselves...
            for name, share in sorted(
                hotness.items(), key=lambda item: (-item[1], item[0])
            ):
                if share < self.hot_method_threshold:
                    continue
                state = methods.get(name)
                if state is None or state.level >= 2:
                    continue
                self._promote(program, name, sites, methods, epoch)
                promoted_any = True
            # ...and the *callers* of hot sites, whose recompilation is
            # where the feedback-directed inlining actually lands.
            for caller in sorted({site.caller for site in sites}):
                state = methods.get(caller)
                if state is None or state.level >= 2:
                    continue
                self._promote(program, caller, sites, methods, epoch)
                epoch.inlined.extend(
                    f"{s.caller}@{s.site}->{s.callee}"
                    for s in sites
                    if s.caller == caller
                )
                promoted_any = True
            if promoted_any:
                assign_call_site_ids(program)
                verify_program(program)

            epochs.append(epoch)
            if not promoted_any and index > 0:
                break

        return SimulationResult(
            epochs=epochs,
            methods=methods,
            final_program=program,
            baseline_epoch_cycles=epochs[0].run_cycles if epochs else 0,
        )


def _plan_assignments(plan) -> Dict[str, str]:
    """Normalize a feed-forward plan to ``{function: strategy-value}``."""
    if plan is None:
        return {}
    assignments = getattr(plan, "assignments", None)
    if callable(assignments):
        return dict(assignments())
    return {str(name): str(value) for name, value in dict(plan).items()}


def _with_conventions(program: Program) -> Program:
    """Yieldpoints + call-site ids on a fresh image."""
    from repro.sampling.yieldpoints import insert_yieldpoints

    program = insert_yieldpoints(program)
    assign_call_site_ids(program)
    return program
