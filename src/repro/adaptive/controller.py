"""An adaptive optimization controller driven by sampled profiles.

This is the end-to-end story the paper is written for: an online system
that (1) runs instrumented code cheaply thanks to the sampling
framework, (2) derives optimization decisions from the sampled profile,
and (3) recompiles and keeps running. The controller simulates that
lifecycle over our VM:

1. **profile phase** — transform the program with Full-Duplication +
   call-edge instrumentation and run it with a counter trigger;
2. **decide** — extract hot call sites from the *sampled* profile;
3. **recompile** — profile-directed inlining on the baseline code;
4. **steady state** — run the optimized program and compare cycles.

Because the profiling phase uses the framework, its overhead is a few
percent (Table 4) instead of the ~90% exhaustive call-edge
instrumentation would cost — which is precisely the paper's pitch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bytecode.program import Program
from repro.adaptive.hotness import HotCallSite, hot_call_sites
from repro.adaptive.recompile import RecompileReport, profile_directed_inline
from repro.instrument.call_edge import CallEdgeInstrumentation
from repro.sampling.framework import SamplingFramework, Strategy
from repro.sampling.triggers import CounterTrigger
from repro.telemetry.recorder import recompile_decision
from repro.vm.cost_model import CostModel
from repro.vm.interpreter import VM


@dataclass
class AdaptiveOutcome:
    """Everything observed across the adaptive lifecycle."""

    baseline_cycles: int = 0
    profiling_cycles: int = 0
    optimized_cycles: int = 0
    samples_taken: int = 0
    hot_sites: List[HotCallSite] = field(default_factory=list)
    recompile_report: Optional[RecompileReport] = None
    optimized_program: Optional[Program] = None

    @property
    def profiling_overhead_pct(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * (self.profiling_cycles / self.baseline_cycles - 1.0)

    @property
    def speedup_pct(self) -> float:
        """Cycles saved by the recompiled code vs the baseline."""
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * (1.0 - self.optimized_cycles / self.baseline_cycles)

    def summary(self) -> str:
        lines = [
            f"baseline:  {self.baseline_cycles} cycles",
            f"profiling: {self.profiling_cycles} cycles "
            f"({self.profiling_overhead_pct:+.1f}%), "
            f"{self.samples_taken} samples",
            f"optimized: {self.optimized_cycles} cycles "
            f"({self.speedup_pct:+.1f}% faster than baseline)",
        ]
        if self.recompile_report is not None:
            lines.append(self.recompile_report.summary())
        return "\n".join(lines)


class AdaptiveController:
    """Profile -> decide -> recompile -> rerun.

    Args:
        interval: sample interval for the profiling phase.
        site_threshold: minimum sample share for a call site to be
            considered hot.
        max_inline_sites: cap on inlining decisions per recompile.
        cost_model: shared cycle model.
        recorder: telemetry recorder (see :mod:`repro.telemetry`). The
            profiling-phase VM runs with it attached, and the
            controller emits one ``adaptive.recompile`` event per
            lifecycle documenting the decisions taken.
    """

    def __init__(
        self,
        interval: int = 101,
        site_threshold: float = 0.02,
        max_inline_sites: int = 12,
        cost_model: Optional[CostModel] = None,
        recorder=None,
    ):
        self.interval = interval
        self.site_threshold = site_threshold
        self.max_inline_sites = max_inline_sites
        self.cost_model = cost_model or CostModel()
        self.recorder = recorder

    def optimize(self, baseline: Program) -> AdaptiveOutcome:
        """Run the full adaptive lifecycle on *baseline*.

        *baseline* must be an experiment-ready program (yieldpoints +
        call-site ids), e.g. from ``compile_baseline`` or
        ``Workload.compile``.
        """
        outcome = AdaptiveOutcome()

        base_run = VM(baseline, cost_model=self.cost_model).run()
        outcome.baseline_cycles = base_run.stats.cycles

        instr = CallEdgeInstrumentation()
        framework = SamplingFramework(Strategy.FULL_DUPLICATION)
        profiled_program = framework.transform(baseline, instr)
        profile_run = VM(
            profiled_program,
            cost_model=self.cost_model,
            trigger=CounterTrigger(self.interval),
            recorder=self.recorder,
        ).run()
        outcome.profiling_cycles = profile_run.stats.cycles
        outcome.samples_taken = profile_run.stats.samples_taken
        if profile_run.value != base_run.value:
            raise AssertionError(
                "profiling run diverged from baseline — transform bug"
            )

        outcome.hot_sites = hot_call_sites(
            instr.profile, self.site_threshold, self.max_inline_sites
        )
        optimized, report = profile_directed_inline(
            baseline, outcome.hot_sites
        )
        outcome.recompile_report = report
        outcome.optimized_program = optimized
        if self.recorder is not None:
            recompile_decision(
                self.recorder,
                cycles=profile_run.stats.cycles,
                samples=outcome.samples_taken,
                interval=self.interval,
                hot_sites=len(outcome.hot_sites),
                inlined=len(report.inlined),
            )

        opt_run = VM(optimized, cost_model=self.cost_model).run()
        if opt_run.value != base_run.value:
            raise AssertionError(
                "optimized run diverged from baseline — recompile bug"
            )
        outcome.optimized_cycles = opt_run.stats.cycles
        return outcome
