"""Live streaming export: flush telemetry to an append-only spool.

Every observability surface in the repo used to be exported only after
a run completed; this module makes the export *epoch-based and live*.
A :class:`StreamingRecorder` is a :class:`CompactingRecorder` that, at
every epoch boundary (a fixed number of emitted events), appends one
JSON line to a **spool** — a directory of rolling JSONL segments plus a
small ``MANIFEST.json`` index — containing:

* the compacted event records completed since the previous epoch
  (captured *before* ring admission, so the spool never loses events to
  ring eviction — suppression windows stay open across epochs, keeping
  the record stream identical to a non-streaming compacting recorder);
* a delta-encoded metrics snapshot (keyframe + deltas, composing
  through ``MetricsRegistry.merge_snapshot``);
* a delta-encoded profiler snapshot when a profiler is attached
  (composing through :func:`repro.profiling.merge_snapshots`);
* newly interned calling-context table entries, when the recorder
  tracks contexts.

Memory is bounded: each epoch's buffers are drained on flush, and the
open file handle is the only per-spool state that grows with nothing.

**Bit-equal reconstruction.** Delta chains over floats can drift by an
ulp (``base + (cur - base) != cur``), so the writer *verifies* every
delta record against a maintained replay before committing it, and
falls back to a keyframe on any mismatch ("verify-or-keyframe"). The
result is a hard guarantee: :meth:`SpoolReader.final_metrics` and
:meth:`SpoolReader.final_profile` reconstruct the end-of-run snapshots
exactly, not approximately (tests/test_streaming.py pins this for the
full workload × strategy matrix).

**Crash tolerance.** Each epoch is one line, flushed on write. A
process killed mid-write leaves at most one truncated trailing line,
which :class:`SpoolReader` tolerates (``reader.truncated`` is True and
the parsed prefix is served); anything else unparsable is corruption
and raises. ``MANIFEST.json`` is rewritten atomically (temp + rename)
so readers never observe a half-written index.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.profiling.cct import cct_from_events
from repro.profiling.profiler import merge_snapshots
from repro.telemetry.compaction import (
    CompactingRecorder,
    DeltaSnapshotStream,
    Record,
    diff_profile_snapshot,
    inflate,
    record_as_dict,
    record_from_dict,
)
from repro.telemetry.events import Event
from repro.telemetry.metrics import MetricsRegistry

#: Spool format version (bump on incompatible layout changes).
SPOOL_VERSION = 1

#: Manifest file name inside a spool directory.
MANIFEST_NAME = "MANIFEST.json"

#: Default emitted events per epoch flush.
DEFAULT_EPOCH_EVENTS = 4096

#: Default segment roll size (bytes of JSONL per segment file).
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Profile keyframe cadence (epochs between full profile snapshots).
PROFILE_KEYFRAME_EVERY = 16


def _segment_name(index: int) -> str:
    return f"segment-{index:06d}.jsonl"


class SpoolWriter:
    """Low-level append side of a spool directory.

    One JSON-able payload per :meth:`append` becomes one line in the
    current segment; segments roll at ``segment_max_bytes``. The
    manifest index is rewritten (atomically) after every append, so a
    live reader always has a consistent view of the closed prefix.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        label: str = "",
        meta: Optional[Dict[str, Any]] = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        stale = sorted(self.path.glob("segment-*.jsonl"))
        if stale:
            raise ReproError(
                f"spool directory {self.path} already holds "
                f"{len(stale)} segment(s); refusing to append to an "
                "existing spool"
            )
        self.label = label
        self.meta = dict(meta or {})
        self.segment_max_bytes = segment_max_bytes
        self.closed = False
        self._segments: List[Dict[str, Any]] = []
        self._handle = None
        self._epochs = 0
        self._roll()
        self._write_manifest("live")

    # -- internals -----------------------------------------------------------

    def _roll(self) -> None:
        if self._handle is not None:
            self._handle.close()
        name = _segment_name(len(self._segments))
        self._segments.append({"name": name, "epochs": 0, "bytes": 0})
        self._handle = open(self.path / name, "w", encoding="utf-8")

    def _write_manifest(
        self, status: str, final: Optional[Dict[str, Any]] = None
    ) -> None:
        payload: Dict[str, Any] = {
            "version": SPOOL_VERSION,
            "status": status,
            "label": self.label,
            "meta": self.meta,
            "epochs": self._epochs,
            "segment_max_bytes": self.segment_max_bytes,
            "segments": self._segments,
        }
        if final is not None:
            payload["final"] = final
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(
            json.dumps(payload, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path / MANIFEST_NAME)

    # -- append side ---------------------------------------------------------

    def append(self, payload: Dict[str, Any]) -> None:
        if self.closed:
            raise ReproError(f"spool {self.path} is closed")
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        segment = self._segments[-1]
        if segment["bytes"] and (
            segment["bytes"] + len(line) > self.segment_max_bytes
        ):
            self._roll()
            segment = self._segments[-1]
        self._handle.write(line)
        self._handle.flush()
        segment["bytes"] += len(line)
        segment["epochs"] += 1
        self._epochs += 1
        self._write_manifest("live")

    def close(self, final: Optional[Dict[str, Any]] = None) -> None:
        if self.closed:
            return
        self.closed = True
        self._handle.close()
        self._handle = None
        self._write_manifest("closed", final=final)


class StreamingRecorder(CompactingRecorder):
    """A compacting recorder that exports epochs to a spool mid-run.

    Args:
        path: spool directory to create (must not already be a spool).
        capacity / metrics / suppress / context: as
            :class:`CompactingRecorder`; ``context=True`` by default so
            the spool carries calling-context ids and the suppression
            windows key on them (`repro watch` renders hot contexts
            from either the profiler CCT or these event tags).
        epoch_events: emitted events per epoch flush — the bounded
            memory knob: completed records buffer at most one epoch.
        segment_max_bytes: spool segment roll size.
        profiler: optional :class:`OverheadProfiler` whose snapshots are
            delta-streamed alongside the metrics.
        label / meta: provenance recorded in the spool manifest.

    The record stream is identical to a non-streaming
    ``CompactingRecorder(suppress=..., context=...)`` run: spooled
    records are captured at completion time (before ring admission, so
    eviction never loses them) and suppression windows survive epoch
    boundaries un-flushed. :meth:`close` flushes the compactor, writes
    the final epoch (end-of-run metrics/profile snapshots), and marks
    the manifest ``closed``.
    """

    __slots__ = (
        "writer", "epoch_events", "profiler", "epochs_flushed",
        "_epoch_records", "_events_since_flush", "_ctx_mark",
        "_metrics_stream", "_metrics_replay", "_profile_last",
        "_profile_replay", "_profile_epoch",
    )

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        capacity: int = 65536,
        metrics: Optional[MetricsRegistry] = None,
        suppress: bool = True,
        context: bool = True,
        epoch_events: int = DEFAULT_EPOCH_EVENTS,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        profiler=None,
        label: str = "",
        meta: Optional[Dict[str, Any]] = None,
    ):
        if epoch_events < 1:
            raise ReproError(
                f"epoch_events must be >= 1, got {epoch_events}"
            )
        super().__init__(
            capacity=capacity, metrics=metrics, suppress=suppress,
            context=context,
        )
        self.writer = SpoolWriter(
            path, label=label, meta=meta,
            segment_max_bytes=segment_max_bytes,
        )
        self.epoch_events = epoch_events
        self.profiler = profiler
        self.epochs_flushed = 0
        self._epoch_records: List[Record] = []
        self._events_since_flush = 0
        self._ctx_mark = 0
        self._metrics_stream = DeltaSnapshotStream()
        self._metrics_replay: Optional[MetricsRegistry] = None
        self._profile_last: Optional[Dict[str, Any]] = None
        self._profile_replay: Optional[Dict[str, Any]] = None
        self._profile_epoch = 0

    # -- hot path ------------------------------------------------------------

    def _store(self, record: Record) -> None:
        # Completed records are spool-bound *before* ring admission:
        # the ring may evict, the spool never does.
        self._epoch_records.append(record)
        super()._store(record)

    def _emit(self, kind, cycles, tid, function, pc, data) -> None:
        super()._emit(kind, cycles, tid, function, pc, data)
        self._events_since_flush += 1
        if self._events_since_flush >= self.epoch_events:
            self.flush_epoch()

    # -- epoch flushing ------------------------------------------------------

    def _metrics_record(self) -> Dict[str, Any]:
        """Verify-or-keyframe: the delta must replay to the exact
        current snapshot, else it is replaced by a keyframe."""
        snapshot = self.metrics.snapshot()
        record = self._metrics_stream.push(snapshot)
        if record["kind"] == "keyframe":
            self._metrics_replay = MetricsRegistry()
            self._metrics_replay.merge_snapshot(record["snapshot"])
        else:
            self._metrics_replay.merge_snapshot(record["changed"])
            if self._metrics_replay.snapshot() != snapshot:
                record = {
                    "kind": "keyframe",
                    "seq": record["seq"],
                    "snapshot": snapshot,
                }
                self._metrics_replay = MetricsRegistry()
                self._metrics_replay.merge_snapshot(snapshot)
        return record

    def _profile_record(self) -> Optional[Dict[str, Any]]:
        if self.profiler is None:
            return None
        snapshot = json.loads(json.dumps(self.profiler.snapshot()))
        index = self._profile_epoch
        self._profile_epoch = index + 1
        keyframe = (
            self._profile_last is None
            or index % PROFILE_KEYFRAME_EVERY == 0
        )
        if not keyframe:
            delta = diff_profile_snapshot(self._profile_last, snapshot)
            replay = merge_snapshots([self._profile_replay, delta])
            if replay == snapshot:
                self._profile_last = snapshot
                self._profile_replay = replay
                return {"kind": "delta", "seq": index, "changed": delta}
        self._profile_last = snapshot
        self._profile_replay = json.loads(json.dumps(snapshot))
        return {"kind": "keyframe", "seq": index, "snapshot": snapshot}

    def flush_epoch(self, force: bool = False) -> bool:
        """Write one epoch line: buffered records + metric/profile
        deltas + new contexts. Skipped when nothing happened since the
        last flush (unless *force*, used by the final epoch so every
        spool ends with the end-of-run snapshots)."""
        records = self._epoch_records
        if not records and not self._events_since_flush and not force:
            return False
        self._epoch_records = []
        self._events_since_flush = 0
        payload: Dict[str, Any] = {
            "epoch": self.epochs_flushed,
            "stamp": {
                "wall": time.time(),
                "seq": self._seq,
                "dropped_events": self.dropped_events,
            },
            "events": [record_as_dict(r) for r in records],
            "metrics": self._metrics_record(),
        }
        profile = self._profile_record()
        if profile is not None:
            payload["profile"] = profile
        if self.wants_context and self.contexts is not None:
            fresh = self.contexts.entries_since(self._ctx_mark)
            if fresh:
                payload["contexts"] = fresh
                self._ctx_mark = len(self.contexts)
        self.writer.append(payload)
        self.epochs_flushed += 1
        return True

    def close(self) -> None:
        """Flush open suppression windows, write the final epoch, and
        mark the spool closed. Call after ``sync_metrics()`` so the
        final reconstructed snapshot equals the manifest's."""
        if self.writer.closed:
            return
        if self.compactor is not None:
            self.compactor.flush()
        self.flush_epoch(force=True)
        self.writer.close(final=self.summary())

    def summary(self) -> Dict[str, Any]:
        payload = super().summary()
        payload["stream"] = {
            "path": str(self.writer.path),
            "epochs": self.epochs_flushed,
            "epoch_events": self.epoch_events,
            "closed": self.writer.closed,
        }
        return payload


# ---------------------------------------------------------------------------
# read side


class SpoolReader:
    """Truncation-tolerant read-back of a (live or finished) spool.

    Parses every epoch line across the segment files in index order. A
    trailing line that fails to parse — the signature of a crash or
    kill mid-write — sets :attr:`truncated` and serves the parsed
    prefix; a malformed line anywhere else raises
    :class:`~repro.errors.ReproError`.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ReproError(f"{self.path} is not a spool (no {MANIFEST_NAME})")
        self.manifest: Dict[str, Any] = json.loads(
            manifest_path.read_text(encoding="utf-8")
        )
        self.truncated = False
        self.epochs: List[Dict[str, Any]] = []
        # The directory scan, not the manifest index, is authoritative:
        # a crash can leave a segment the manifest never recorded.
        segments = sorted(self.path.glob("segment-*.jsonl"))
        for i, segment in enumerate(segments):
            last_segment = i == len(segments) - 1
            raw = segment.read_bytes()
            lines = raw.split(b"\n")
            # A file ending without a newline means the writer died
            # mid-line; keep the fragment and let the JSON parse below
            # decide whether it happens to be complete.
            body = lines[:-1] if raw.endswith(b"\n") else lines
            for j, line in enumerate(body):
                if not line.strip():
                    continue
                last_line = last_segment and j == len(body) - 1
                try:
                    self.epochs.append(json.loads(line.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    if last_line:
                        self.truncated = True
                        break
                    raise ReproError(
                        f"spool {segment.name}: corrupt epoch line {j}"
                    )

    # -- stream views --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.manifest.get("status") == "closed"

    @property
    def label(self) -> str:
        return str(self.manifest.get("label", ""))

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self.manifest.get("meta", {}))

    def records(self) -> List[Record]:
        """Every spooled record, in completion order (the eviction-free
        union of all epochs)."""
        out: List[Record] = []
        for epoch in self.epochs:
            out.extend(record_from_dict(d) for d in epoch.get("events", ()))
        return out

    def events(self) -> List[Event]:
        """The inflated event stream."""
        return inflate(self.records())

    def contexts(self) -> Dict[str, str]:
        """Accumulated context-id → path table."""
        table: Dict[str, str] = {}
        for epoch in self.epochs:
            for ctx, joined in epoch.get("contexts", ()):
                table[str(ctx)] = joined
        return table

    # -- snapshot reconstruction ---------------------------------------------

    def metrics_snapshots(self) -> List[Dict[str, Dict[str, Any]]]:
        """Replay the per-epoch metric records into full snapshots."""
        out: List[Dict[str, Dict[str, Any]]] = []
        registry: Optional[MetricsRegistry] = None
        for epoch in self.epochs:
            record = epoch.get("metrics")
            if record is None:
                continue
            if record["kind"] == "keyframe":
                registry = MetricsRegistry()
                registry.merge_snapshot(record["snapshot"])
            else:
                if registry is None:
                    raise ReproError("spool: delta before any keyframe")
                registry.merge_snapshot(record["changed"])
            out.append(registry.snapshot())
        return out

    def final_metrics(self) -> Dict[str, Dict[str, Any]]:
        snapshots = self.metrics_snapshots()
        return snapshots[-1] if snapshots else {}

    def profile_snapshots(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        state: Optional[Dict[str, Any]] = None
        for epoch in self.epochs:
            record = epoch.get("profile")
            if record is None:
                continue
            if record["kind"] == "keyframe":
                state = record["snapshot"]
            else:
                if state is None:
                    raise ReproError("spool: profile delta before keyframe")
                state = merge_snapshots([state, record["changed"]])
            out.append(state)
        return out

    def final_profile(self) -> Optional[Dict[str, Any]]:
        snapshots = self.profile_snapshots()
        return snapshots[-1] if snapshots else None

    # -- derived views -------------------------------------------------------

    def cct_table(self) -> Dict[str, Dict[str, List[float]]]:
        """The hottest available calling-context table: the profiler
        CCT when the spool carries profile snapshots with one, else a
        pseudo-CCT recovered from ctx-tagged events."""
        profile = self.final_profile()
        if profile is not None:
            cct = profile.get("cct")
            if cct:
                return cct
        return cct_from_events(self.events(), self.contexts())

    def epoch_stamps(self) -> List[Dict[str, Any]]:
        return [dict(e.get("stamp", {})) for e in self.epochs]

    def summary(self) -> Dict[str, Any]:
        """Spool-level accounting for rendering and tests."""
        records = 0
        for epoch in self.epochs:
            records += len(epoch.get("events", ()))
        stamps = self.epoch_stamps()
        return {
            "path": str(self.path),
            "status": self.manifest.get("status"),
            "label": self.label,
            "truncated": self.truncated,
            "epochs": len(self.epochs),
            "records": records,
            "events": stamps[-1]["seq"] if stamps else 0,
            "dropped_events": (
                stamps[-1].get("dropped_events", 0) if stamps else 0
            ),
            "contexts": len(self.contexts()),
        }


def tail_epochs(
    path: Union[str, pathlib.Path],
    poll_seconds: float = 0.5,
    timeout: Optional[float] = None,
) -> Iterator[Tuple["SpoolReader", List[Dict[str, Any]]]]:
    """Follow a live spool: yield ``(reader, new_epochs)`` as epochs
    land, until the spool closes (or *timeout* seconds pass with the
    spool still live). The final yield always reflects the closed (or
    timed-out) state, so consumers can render a last frame.
    """
    seen = 0
    waited = 0.0
    while True:
        reader = SpoolReader(path)
        fresh = reader.epochs[seen:]
        if fresh or reader.closed or reader.truncated:
            yield reader, fresh
            seen = len(reader.epochs)
            waited = 0.0
        if reader.closed or reader.truncated:
            return
        time.sleep(poll_seconds)
        waited += poll_seconds
        if timeout is not None and waited >= timeout:
            yield SpoolReader(path), []
            return
