"""Trace-aware redundancy suppression for telemetry streams.

At production sampling intervals the flight recorder is dominated by
*runs*: per-(kind, thread, site) sequences whose successive events
differ only by constant strides — the sequence number advances by the
same step, the cycle stamp by the same period, integer payload fields
(tick indices, dup-enter stamps) by the same delta. A deterministic
cycle-accurate simulator produces such runs by construction whenever
the guest sits in a loop, so collapsing them is *lossless*: a
:class:`SuppressedRun` stores the first event plus the strides and the
repeat count, and :func:`inflate` regenerates the original events
bit-for-bit (pinned across all three engines by
tests/test_compaction.py).

The module has three layers:

* **suppression windows** — :class:`StreamCompactor` keeps one open
  window per (kind, tid, function, pc) key and folds each pushed event
  into its window when the strides match, else flushes a record. The
  :class:`CompactingRecorder` subclass routes the standard
  ``TelemetryRecorder`` hook surface through a compactor, so both
  engines compact transparently; with ``suppress=False`` it *is* the
  plain recorder (the same compile-time no-op contract as
  ``NullRecorder`` — engines only ever branch on ``recorder is None``).
* **delta-encoded snapshots** — :func:`diff_metrics_snapshot` renders
  the change between two ``MetricsRegistry`` snapshots *as another
  valid snapshot* (counter increments, histogram bucket deltas, changed
  gauges), so keyframe + deltas reconstruct exactly through the
  existing associative ``merge_snapshot`` — the same merge pool
  workers already use. :class:`DeltaSnapshotStream` adds the keyframe
  cadence; :func:`diff_profile_snapshot` does the same for
  ``OverheadProfiler`` snapshots via ``merge_snapshots``.
* **records on the wire** — :func:`records_to_jsonl` /
  :func:`records_from_jsonl` serialize mixed Event/SuppressedRun
  streams; ``repro.telemetry.exporters`` re-inflates them for the
  Chrome exporter so existing consumers never see a compacted record.

Accuracy is quantified with the paper's own §4.4 metric:
:func:`sample_site_profile` projects a (possibly suppressed) stream
onto a (function, pc) sample profile, and the harness compares it
against a perfect interval-1 profile with ``overlap_percentage``
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import pathlib
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.profiles.profile import Profile
from repro.telemetry.events import SAMPLE_FIRED, Event, event_from_dict
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import TelemetryRecorder

#: Emit a full snapshot every N records by default; between keyframes
#: only changed keys travel. Small enough that a reader seeking into a
#: stream replays at most 15 deltas, large enough to amortize keyframe
#: cost over steady-state runs.
DEFAULT_KEYFRAME_EVERY = 16


class SuppressedRun(NamedTuple):
    """``count`` events collapsed into one record.

    The i-th original event (0-based) is::

        Event(first.seq + i * seq_stride,
              first.kind,
              first.cycles + i * cycles_stride,
              first.tid, first.function, first.pc,
              data with each strideable field advanced by i * stride)

    ``data_strides`` aligns with ``first.data``; a stride of 0 means the
    field is constant across the run (which also covers non-integer
    payload values — only exact-int fields ever get a nonzero stride).
    """

    first: Event
    count: int
    seq_stride: int
    cycles_stride: int
    data_strides: Tuple[int, ...]

    @property
    def span_cycles(self) -> int:
        """Time span covered by the run (first to last event)."""
        return (self.count - 1) * self.cycles_stride

    def events(self) -> Iterator[Event]:
        """Regenerate the collapsed events, in order."""
        first = self.first
        yield first
        data = first.data
        strides = self.data_strides
        for i in range(1, self.count):
            if strides and any(strides):
                row = tuple(
                    (k, v if s == 0 else v + i * s)
                    for (k, v), s in zip(data, strides)
                )
            else:
                row = data
            yield Event(
                first.seq + i * self.seq_stride,
                first.kind,
                first.cycles + i * self.cycles_stride,
                first.tid,
                first.function,
                first.pc,
                row,
            )


#: A compacted stream element: a plain event or a collapsed run.
Record = Union[Event, SuppressedRun]


def record_weight(record: Record) -> int:
    """How many original events a record stands for."""
    return record.count if isinstance(record, SuppressedRun) else 1


def total_event_weight(records: Iterable[Record]) -> int:
    return sum(record_weight(r) for r in records)


def inflate(records: Iterable[Record]) -> List[Event]:
    """Re-inflate a compacted stream to the original events.

    Events come back in global ``seq`` order regardless of how runs
    interleaved, so ``inflate(compact(stream)) == stream`` exactly.
    """
    out: List[Event] = []
    for record in records:
        if isinstance(record, SuppressedRun):
            out.extend(record.events())
        else:
            out.append(record)
    out.sort(key=lambda e: e.seq)
    return out


def _strideable(value: Any) -> bool:
    # bool is an int subclass but True+1 would silently become 2.
    return type(value) is int


class _Window:
    """One open suppression window: a pending first event, then (once a
    second compatible event arrives) locked strides and a count."""

    __slots__ = ("first", "count", "seq_stride", "cycles_stride",
                 "data_strides")

    def __init__(self, first: Event):
        self.first = first
        self.count = 1
        self.seq_stride = 0
        self.cycles_stride = 0
        self.data_strides: Tuple[int, ...] = ()

    def derive(self, event: Event) -> bool:
        """Try to lock strides from the pending first event to *event*."""
        first = self.first
        if len(event.data) != len(first.data):
            return False
        strides: List[int] = []
        for (k0, v0), (k1, v1) in zip(first.data, event.data):
            if k0 != k1:
                return False
            if _strideable(v0) and _strideable(v1):
                strides.append(v1 - v0)
            elif v0 == v1 and type(v0) is type(v1):
                strides.append(0)
            else:
                return False
        self.seq_stride = event.seq - first.seq
        self.cycles_stride = event.cycles - first.cycles
        self.data_strides = tuple(strides)
        self.count = 2
        return True

    def extends(self, event: Event) -> bool:
        """Does *event* continue the locked arithmetic progression?"""
        first = self.first
        i = self.count
        if event.seq != first.seq + i * self.seq_stride:
            return False
        if event.cycles != first.cycles + i * self.cycles_stride:
            return False
        if len(event.data) != len(first.data):
            return False
        for (k0, v0), s, (k1, v1) in zip(
            first.data, self.data_strides, event.data
        ):
            if k0 != k1:
                return False
            if s == 0:
                if v0 != v1 or type(v0) is not type(v1):
                    return False
            elif v1 != v0 + i * s:
                return False
        return True

    def record(self) -> Record:
        if self.count == 1:
            return self.first
        return SuppressedRun(
            self.first, self.count, self.seq_stride, self.cycles_stride,
            self.data_strides,
        )


class StreamCompactor:
    """Per-key suppression windows over an event stream.

    Pushed events are grouped by (kind, tid, function, pc) — the
    site-and-context key — and each group's consecutive events collapse
    while they advance by constant strides. Completed records go to
    ``sink`` in completion order; :meth:`flush` closes every open
    window (end of run), :meth:`pending_records` peeks without closing
    (live snapshot reads).

    With ``context_key=True``, events carrying a trailing ``("ctx",
    id)`` data field (a recorder built with ``context=True``) group by
    ``(kind, tid, ctx, pc)`` instead — the full calling context
    replaces the bare function name, so the same pc reached through
    different call chains gets separate windows. Events without a ctx
    field (timer ticks, thread switches, annotations) keep the
    site key. The grouping is still loss-free: a context id pins the
    leaf function, so every window remains homogeneous in
    (kind, tid, function, pc) and :func:`inflate` is unchanged.
    """

    __slots__ = ("sink", "events_in", "records_out", "suppressed",
                 "max_run", "context_key", "_windows")

    def __init__(
        self,
        sink: Callable[[Record], None],
        context_key: bool = False,
    ):
        self.sink = sink
        self.events_in = 0
        self.records_out = 0
        self.suppressed = 0
        self.max_run = 1
        self.context_key = bool(context_key)
        self._windows: Dict[Tuple, _Window] = {}

    def push(self, event: Event) -> None:
        self.events_in += 1
        if self.context_key:
            data = event.data
            if data and data[-1][0] == "ctx":
                # int ctx ids cannot collide with str function names,
                # so both key shapes share one window table.
                key = (event.kind, event.tid, data[-1][1], event.pc)
            else:
                key = (event.kind, event.tid, event.function, event.pc)
        else:
            key = (event.kind, event.tid, event.function, event.pc)
        window = self._windows.get(key)
        if window is None:
            self._windows[key] = _Window(event)
            return
        if window.count == 1:
            if window.derive(event):
                self.suppressed += 1
                return
            self._emit(window.first)
            self._windows[key] = _Window(event)
            return
        if window.extends(event):
            window.count += 1
            self.suppressed += 1
            return
        self._close(window)
        self._windows[key] = _Window(event)

    def _emit(self, record: Record) -> None:
        self.records_out += 1
        self.sink(record)

    def _close(self, window: _Window) -> None:
        if window.count > self.max_run:
            self.max_run = window.count
        self._emit(window.record())

    def flush(self) -> None:
        """Close every open window (stream order by first seq)."""
        windows = sorted(
            self._windows.values(), key=lambda w: w.first.seq
        )
        self._windows.clear()
        for window in windows:
            self._close(window)

    def pending_records(self) -> List[Record]:
        """Records still held in open windows, without closing them."""
        return [
            w.record()
            for w in sorted(self._windows.values(), key=lambda w: w.first.seq)
        ]

    def ratio(self) -> float:
        """Events per emitted-or-pending record (>= 1.0)."""
        out = self.records_out + len(self._windows)
        return self.events_in / out if out else 1.0


# -- the compacting recorder -------------------------------------------------


class CompactingRecorder(TelemetryRecorder):
    """A :class:`TelemetryRecorder` whose ring holds compacted records.

    Every hook funnels through ``_emit``, so both engines (and the
    harness annotate path) compact identically with zero engine-side
    changes. With ``suppress=False`` the compactor is absent and this
    class *is* the plain recorder — the disabled path adds no work,
    mirroring the NullRecorder contract.

    ``dropped_events`` weighs ring evictions in original events (an
    evicted run of 500 loses 500 events), which is what the stream
    reconciler needs to bound how many samples a suffix may be missing.
    """

    __slots__ = ("compactor", "dropped_events")

    def __init__(
        self,
        capacity: int = 65536,
        metrics: Optional[MetricsRegistry] = None,
        suppress: bool = True,
        context: bool = False,
    ):
        # ``context`` both tags events with calling-context ids (the
        # inherited recorder option) and switches the suppression
        # windows to the context key — one flag, because context-keyed
        # windows without ctx-tagged events would silently degrade to
        # the site key.
        super().__init__(capacity=capacity, metrics=metrics, context=context)
        self.dropped_events = 0
        self.compactor = (
            StreamCompactor(self._store, context_key=context)
            if suppress
            else None
        )

    @property
    def suppressing(self) -> bool:
        return self.compactor is not None

    def _store(self, record: Record) -> None:
        evicted = self.ring.append(record)
        if evicted is not None:
            self.dropped_events += record_weight(evicted)

    def _emit(self, kind, cycles, tid, function, pc, data) -> None:
        compactor = self.compactor
        if compactor is None:
            seq = self._seq
            self._seq = seq + 1
            evicted = self.ring.append(
                Event(seq, kind, cycles, tid, function, pc, data)
            )
            if evicted is not None:
                self.dropped_events += 1
            return
        seq = self._seq
        self._seq = seq + 1
        compactor.push(Event(seq, kind, cycles, tid, function, pc, data))

    # -- read side ---------------------------------------------------------

    def records(self) -> Tuple[Record, ...]:
        """The retained compacted stream, including still-open windows."""
        out = list(self.ring)
        if self.compactor is not None:
            out.extend(self.compactor.pending_records())
        return tuple(out)

    def events(self) -> Tuple[Event, ...]:
        """Inflated view — bit-equal to a plain recorder's stream (ring
        evictions aside)."""
        return tuple(inflate(self.records()))

    def summary(self) -> Dict[str, Any]:
        records = self.records()
        payload = {
            "active": True,
            "events": total_event_weight(records),
            "records": len(records),
            "dropped": self.ring.dropped,
            "dropped_events": self.dropped_events,
            "capacity": self.ring.capacity,
        }
        compactor = self.compactor
        payload["compaction"] = {
            "enabled": compactor is not None,
            "events_in": compactor.events_in if compactor else 0,
            "suppressed": compactor.suppressed if compactor else 0,
            "max_run": compactor.max_run if compactor else 1,
            "ratio": round(compactor.ratio(), 3) if compactor else 1.0,
        }
        return payload

    def sync_metrics(self) -> None:
        """Publish ring + compaction state as ``vm.telemetry.*`` metrics
        (idempotent: counters advance by deltas since the last sync)."""
        super().sync_metrics()
        compactor = self.compactor
        metrics = self.metrics
        if compactor is not None:
            self._bump("vm.telemetry.compaction.events_in",
                       compactor.events_in)
            self._bump("vm.telemetry.compaction.suppressed",
                       compactor.suppressed)
            self._bump("vm.telemetry.compaction.records",
                       compactor.records_out + len(compactor._windows))
            metrics.gauge("vm.telemetry.compaction.ratio").set(
                round(compactor.ratio(), 4)
            )
            metrics.gauge("vm.telemetry.compaction.max_run").set(
                compactor.max_run
            )
        self._bump("vm.telemetry.compaction.dropped_events",
                   self.dropped_events)


# -- record (de)serialization ------------------------------------------------


def record_as_dict(record: Record) -> Dict[str, Any]:
    """JSON-ready rendering; plain events render exactly as in the
    uncompacted JSONL format, runs nest under a ``"run"`` key."""
    if isinstance(record, SuppressedRun):
        payload: Dict[str, Any] = {
            "run": {
                "count": record.count,
                "seq_stride": record.seq_stride,
                "cycles_stride": record.cycles_stride,
                "first": record.first.as_dict(),
            }
        }
        if any(record.data_strides):
            payload["run"]["data_strides"] = list(record.data_strides)
        return payload
    return record.as_dict()


def record_from_dict(payload: Dict[str, Any]) -> Record:
    """Inverse of :func:`record_as_dict`."""
    run = payload.get("run")
    if run is None:
        return event_from_dict(payload)
    first = event_from_dict(run["first"])
    strides = run.get("data_strides")
    if strides is None:
        strides = [0] * len(first.data)
    if len(strides) != len(first.data):
        raise ReproError(
            "suppressed run: data_strides length "
            f"{len(strides)} != data length {len(first.data)}"
        )
    return SuppressedRun(
        first,
        int(run["count"]),
        int(run["seq_stride"]),
        int(run["cycles_stride"]),
        tuple(int(s) for s in strides),
    )


def records_to_jsonl(records: Iterable[Record]) -> str:
    """One record per line — the *compact* JSONL format. A stream with
    no runs is byte-identical to the plain exporter's output."""
    return "".join(
        json.dumps(record_as_dict(r), separators=(",", ":")) + "\n"
        for r in records
    )


def records_from_jsonl(text: str) -> List[Record]:
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(record_from_dict(json.loads(line)))
    return records


def write_records_jsonl(
    records: Iterable[Record], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(records_to_jsonl(records), encoding="utf-8")
    return path


def read_records_jsonl(path: Union[str, pathlib.Path]) -> List[Record]:
    return records_from_jsonl(
        pathlib.Path(path).read_text(encoding="utf-8")
    )


# -- stream -> profile projection --------------------------------------------


def sample_site_profile(
    records: Iterable[Record], name: str = "sample-sites"
) -> Profile:
    """Project a (raw or compacted) stream onto a (function, pc) sample
    profile — the object the §4.4 overlap metric compares. Runs count
    with their full weight, so suppression never biases the profile."""
    profile = Profile(name)
    record = profile.record
    for item in records:
        if isinstance(item, SuppressedRun):
            first = item.first
            if first.kind == SAMPLE_FIRED:
                record((first.function, first.pc), item.count)
        elif item.kind == SAMPLE_FIRED:
            record((item.function, item.pc))
    return profile


# -- delta-encoded metrics snapshots -----------------------------------------


def diff_metrics_snapshot(
    base: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """The change from *base* to *current*, as a valid snapshot.

    Counters carry increments, histograms carry bucket/count/sum deltas
    (min/max carry the current value — they only ever tighten, so the
    merge's min/max pick reconstructs them), gauges appear only when
    changed. Because the delta is itself a snapshot,
    ``MetricsRegistry.merge_snapshot`` composes keyframe + deltas back
    into the exact current state, and worker deltas merge associatively
    exactly like full snapshots.

    Requires metrics to have evolved monotonically from *base* (true
    for counters/histograms by construction); raises otherwise.
    """
    delta: Dict[str, Dict[str, Any]] = {}
    for key, cur in current.items():
        prev = base.get(key)
        if prev == cur:
            continue
        mtype = cur.get("type")
        if prev is None or prev.get("type") != mtype:
            delta[key] = json.loads(json.dumps(cur))
            continue
        if mtype == "counter":
            step = int(cur["value"]) - int(prev["value"])
            if step < 0:
                raise ReproError(
                    f"metric {key!r}: counter went backwards "
                    f"({prev['value']} -> {cur['value']})"
                )
            delta[key] = {"type": "counter", "value": step}
        elif mtype == "gauge":
            delta[key] = {"type": "gauge", "value": cur["value"]}
        elif mtype == "histogram":
            if list(prev["bounds"]) != list(cur["bounds"]):
                delta[key] = json.loads(json.dumps(cur))
                continue
            delta[key] = {
                "type": "histogram",
                "count": int(cur["count"]) - int(prev["count"]),
                "sum": cur["sum"] - prev["sum"],
                "min": cur["min"],
                "max": cur["max"],
                "bounds": list(cur["bounds"]),
                "buckets": [
                    int(c) - int(p)
                    for c, p in zip(cur["buckets"], prev["buckets"])
                ],
            }
        else:
            delta[key] = json.loads(json.dumps(cur))
    return delta


def apply_metrics_delta(
    base: Dict[str, Dict[str, Any]],
    delta: Dict[str, Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """base ∘ delta, via the registry's own associative merge."""
    registry = MetricsRegistry()
    registry.merge_snapshot(base)
    registry.merge_snapshot(delta)
    return registry.snapshot()


class DeltaSnapshotStream:
    """Keyframe + delta encoding for a sequence of metrics snapshots.

    ``push(snapshot)`` returns one JSON-able record: a ``keyframe``
    (full snapshot) every *keyframe_every* pushes, else a ``delta``
    holding only changed keys. :func:`reconstruct_metrics_snapshots`
    replays records back into the exact original snapshot sequence.
    """

    def __init__(self, keyframe_every: int = DEFAULT_KEYFRAME_EVERY):
        if keyframe_every < 1:
            raise ReproError(
                f"keyframe_every must be >= 1, got {keyframe_every}"
            )
        self.keyframe_every = keyframe_every
        self.keyframes = 0
        self.deltas = 0
        self._index = 0
        self._last: Optional[Dict[str, Dict[str, Any]]] = None

    def push(self, snapshot: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
        index = self._index
        self._index = index + 1
        snapshot = json.loads(json.dumps(snapshot))  # detach from caller
        if self._last is None or index % self.keyframe_every == 0:
            self.keyframes += 1
            record = {"kind": "keyframe", "seq": index, "snapshot": snapshot}
        else:
            self.deltas += 1
            record = {
                "kind": "delta",
                "seq": index,
                "changed": diff_metrics_snapshot(self._last, snapshot),
            }
        self._last = snapshot
        return record


def reconstruct_metrics_snapshots(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Replay :class:`DeltaSnapshotStream` records into full snapshots."""
    out: List[Dict[str, Dict[str, Any]]] = []
    registry: Optional[MetricsRegistry] = None
    for record in records:
        kind = record.get("kind")
        if kind == "keyframe":
            registry = MetricsRegistry()
            registry.merge_snapshot(record["snapshot"])
        elif kind == "delta":
            if registry is None:
                raise ReproError("delta record before any keyframe")
            registry.merge_snapshot(record["changed"])
        else:
            raise ReproError(f"unknown snapshot record kind {kind!r}")
        out.append(registry.snapshot())
    return out


# -- delta-encoded profiler snapshots ----------------------------------------

#: Scalar fields of a profiler snapshot that diff additively.
_PROFILE_SCALARS = ("runs", "boundaries", "samples", "elapsed_seconds")


def diff_profile_snapshot(
    base: Dict[str, Any], current: Dict[str, Any]
) -> Dict[str, Any]:
    """The change between two ``OverheadProfiler`` snapshots, as a valid
    snapshot: ``merge_snapshots([base, delta]) == current`` (module
    :mod:`repro.profiling.profiler` owns the merge). Only changed
    heat/op_heat/stack keys are carried."""
    delta: Dict[str, Any] = {
        "version": current.get("version"),
        "interval": current.get("interval"),
    }
    for field in _PROFILE_SCALARS:
        delta[field] = current.get(field, 0) - base.get(field, 0)
    for table in ("wall_seconds", "sample_counts"):
        cur = current.get(table, {})
        prev = base.get(table, {})
        delta[table] = {
            comp: value - prev.get(comp, 0)
            for comp, value in cur.items()
            if value != prev.get(comp, 0)
        }
    for table in ("heat", "op_heat"):
        cur = current.get(table, {})
        prev = base.get(table, {})
        delta[table] = {
            key: n - prev.get(key, 0)
            for key, n in cur.items()
            if n != prev.get(key, 0)
        }
    cur_stacks = current.get("stacks", {})
    prev_stacks = base.get("stacks", {})
    delta["stacks"] = {
        key: [n - prior[0], wall - prior[1]]
        for key, (n, wall) in cur_stacks.items()
        for prior in (prev_stacks.get(key, (0, 0.0)),)
        if [n, wall] != list(prior)
    }
    suppression = current.get("suppression")
    if suppression is not None:
        prev_sup = base.get("suppression", {})
        delta["suppression"] = {
            # max_run merges by max, so the delta carries the current
            # value; the additive stats carry increments.
            k: v if k == "max_run" else v - prev_sup.get(k, 0)
            for k, v in suppression.items()
        }
    cct = current.get("cct")
    if cct is not None:
        from repro.profiling.cct import diff_cct_table

        delta["cct"] = diff_cct_table(base.get("cct", {}), cct)
    return delta
