"""Structured telemetry: event tracing, metrics, and run manifests.

The observability subsystem for the reproduction (docs/OBSERVABILITY.md):

* :mod:`repro.telemetry.events` — typed event vocabulary;
* :mod:`repro.telemetry.ring` — bounded flight-recorder buffer;
* :mod:`repro.telemetry.recorder` — the hook surface the VM engines
  call (:class:`TelemetryRecorder`, and :class:`NullRecorder` for
  overhead gating);
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms;
* :mod:`repro.telemetry.manifest` — per-run provenance JSON;
* :mod:`repro.telemetry.exporters` — JSONL and Chrome trace_event.
"""

from repro.telemetry.events import (
    CHECK_TAKEN,
    DUP_ENTER,
    DUP_EXIT,
    EVENT_KINDS,
    GC_PAUSE,
    RECOMPILE,
    SAMPLE_FIRED,
    THREAD_SWITCH,
    TIMER_TICK,
    Event,
    event_from_dict,
)
from repro.telemetry.exporters import (
    HARNESS_TID,
    events_to_chrome_trace,
    events_to_jsonl,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.manifest import (
    RunManifest,
    aggregate_manifests,
    load_manifest,
    spec_as_dict,
    write_aggregate,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    quantile_from_buckets,
)
from repro.telemetry.recorder import (
    NullRecorder,
    TelemetryRecorder,
    recompile_decision,
)
from repro.telemetry.ring import EventRing

__all__ = [
    "CHECK_TAKEN",
    "DUP_ENTER",
    "DUP_EXIT",
    "EVENT_KINDS",
    "GC_PAUSE",
    "HARNESS_TID",
    "RECOMPILE",
    "SAMPLE_FIRED",
    "THREAD_SWITCH",
    "TIMER_TICK",
    "DEFAULT_BUCKETS",
    "Counter",
    "Event",
    "EventRing",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "RunManifest",
    "TelemetryRecorder",
    "aggregate_manifests",
    "event_from_dict",
    "events_to_chrome_trace",
    "events_to_jsonl",
    "load_manifest",
    "metric_key",
    "quantile_from_buckets",
    "read_jsonl",
    "recompile_decision",
    "spec_as_dict",
    "write_aggregate",
    "write_chrome_trace",
    "write_jsonl",
]
