"""Structured telemetry: event tracing, metrics, and run manifests.

The observability subsystem for the reproduction (docs/OBSERVABILITY.md):

* :mod:`repro.telemetry.events` — typed event vocabulary;
* :mod:`repro.telemetry.ring` — bounded flight-recorder buffer;
* :mod:`repro.telemetry.recorder` — the hook surface the VM engines
  call (:class:`TelemetryRecorder`, and :class:`NullRecorder` for
  overhead gating);
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms;
* :mod:`repro.telemetry.manifest` — per-run provenance JSON;
* :mod:`repro.telemetry.exporters` — JSONL, compact JSONL, and Chrome
  trace_event;
* :mod:`repro.telemetry.compaction` — trace-aware redundancy
  suppression: suppression windows, delta-encoded snapshots, and the
  compacting recorder;
* :mod:`repro.telemetry.streaming` — epoch-based live export: the
  streaming recorder, the append-only spool (writer/reader), and
  ``tail_epochs`` for following a live run.
"""

from repro.telemetry.compaction import (
    CompactingRecorder,
    DeltaSnapshotStream,
    StreamCompactor,
    SuppressedRun,
    diff_metrics_snapshot,
    diff_profile_snapshot,
    inflate,
    read_records_jsonl,
    reconstruct_metrics_snapshots,
    record_weight,
    records_from_jsonl,
    records_to_jsonl,
    sample_site_profile,
    total_event_weight,
    write_records_jsonl,
)
from repro.telemetry.events import (
    CHECK_TAKEN,
    DUP_ENTER,
    DUP_EXIT,
    EVENT_KINDS,
    GC_PAUSE,
    RECOMPILE,
    SAMPLE_FIRED,
    THREAD_SWITCH,
    TIMER_TICK,
    Event,
    event_from_dict,
)
from repro.telemetry.exporters import (
    HARNESS_TID,
    compact_jsonl_to_records,
    events_to_chrome_trace,
    events_to_jsonl,
    read_compact_jsonl,
    read_jsonl,
    records_to_chrome_trace,
    records_to_compact_jsonl,
    write_chrome_trace,
    write_chrome_trace_from_records,
    write_compact_jsonl,
    write_jsonl,
)
from repro.telemetry.manifest import (
    RunManifest,
    aggregate_manifests,
    load_manifest,
    spec_as_dict,
    write_aggregate,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    quantile_from_buckets,
)
from repro.telemetry.recorder import (
    NullRecorder,
    TelemetryRecorder,
    recompile_decision,
)
from repro.telemetry.ring import EventRing
from repro.telemetry.streaming import (
    SpoolReader,
    SpoolWriter,
    StreamingRecorder,
    tail_epochs,
)

__all__ = [
    "CHECK_TAKEN",
    "DUP_ENTER",
    "DUP_EXIT",
    "EVENT_KINDS",
    "GC_PAUSE",
    "HARNESS_TID",
    "RECOMPILE",
    "SAMPLE_FIRED",
    "THREAD_SWITCH",
    "TIMER_TICK",
    "DEFAULT_BUCKETS",
    "CompactingRecorder",
    "Counter",
    "DeltaSnapshotStream",
    "Event",
    "EventRing",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "RunManifest",
    "SpoolReader",
    "SpoolWriter",
    "StreamCompactor",
    "StreamingRecorder",
    "SuppressedRun",
    "TelemetryRecorder",
    "aggregate_manifests",
    "compact_jsonl_to_records",
    "diff_metrics_snapshot",
    "diff_profile_snapshot",
    "event_from_dict",
    "events_to_chrome_trace",
    "events_to_jsonl",
    "inflate",
    "load_manifest",
    "metric_key",
    "quantile_from_buckets",
    "read_compact_jsonl",
    "read_jsonl",
    "read_records_jsonl",
    "recompile_decision",
    "reconstruct_metrics_snapshots",
    "record_weight",
    "records_from_jsonl",
    "records_to_chrome_trace",
    "records_to_compact_jsonl",
    "records_to_jsonl",
    "sample_site_profile",
    "spec_as_dict",
    "tail_epochs",
    "write_aggregate",
    "write_chrome_trace",
    "write_chrome_trace_from_records",
    "write_compact_jsonl",
    "write_jsonl",
    "write_records_jsonl",
]
