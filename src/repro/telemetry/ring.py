"""Bounded flight-recorder ring buffer for telemetry events.

The recorder must be safe to leave enabled on long runs: memory is
bounded by ``capacity`` and appends stay O(1). When the buffer is full
the *oldest* event is overwritten — the flight-recorder policy: the
most recent history is what post-mortem questions ("why did the last
samples cluster there?") need. ``dropped`` counts evictions so readers
know when a stream is a suffix rather than the whole run.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.telemetry.events import Event


class EventRing:
    """Fixed-capacity ring of :class:`Event` with oldest-first reads."""

    __slots__ = ("capacity", "dropped", "_buf", "_head")

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._buf: List[Event] = []
        self._head = 0  # index of the oldest event once the ring is full

    def append(self, event: Event):
        """Append, returning the evicted oldest entry (or None).

        The return value lets callers weigh what a full ring is losing —
        a compacted record can stand for hundreds of original events, so
        ``dropped`` (entries evicted) and events lost are not the same
        number.
        """
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
            return None
        head = self._head
        evicted = buf[head]
        buf[head] = event
        self._head = (head + 1) % self.capacity
        self.dropped += 1
        return evicted

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Event]:
        buf = self._buf
        head = self._head
        for i in range(len(buf)):
            yield buf[(head + i) % len(buf)]

    def snapshot(self) -> List[Event]:
        """Events oldest-to-newest (a copy; safe to keep)."""
        return list(self)

    def clear(self) -> None:
        self._buf.clear()
        self._head = 0
        self.dropped = 0

    def __repr__(self) -> str:
        return (
            f"<EventRing {len(self._buf)}/{self.capacity} "
            f"dropped={self.dropped}>"
        )
