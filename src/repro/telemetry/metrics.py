"""Metrics registry: counters, gauges, and histograms.

A deliberately small, dependency-free metrics surface modelled on the
Prometheus data model: named instruments, optional label sets, cheap
hot-path updates, and a :meth:`MetricsRegistry.snapshot` that renders
everything into plain JSON-able dicts for manifests and exporters.

Everything here is deterministic-friendly: instruments hold exact
integer/float aggregates (no reservoir sampling, no wall-clock decay),
so two runs of the same deterministic simulation produce equal
snapshots, and snapshots from parallel workers merge associatively via
:meth:`MetricsRegistry.merge_snapshot`.

Naming convention: dotted component paths (``vm.samples``,
``harness.baseline_cache.hits``); labels render Prometheus-style:
``vm.samples.by_function{function=main}``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError

#: Default histogram bucket upper bounds: powers of four give useful
#: resolution from single-cycle latencies up into the billions without
#: per-metric tuning. Values above the last bound land in +Inf.
DEFAULT_BUCKETS: Tuple[int, ...] = tuple(4 ** k for k in range(1, 16))

Labels = Tuple[Tuple[str, str], ...]


def _normalize_labels(labels: Union[Dict[str, str], Labels, None]) -> Labels:
    if not labels:
        return ()
    items = labels.items() if isinstance(labels, dict) else labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


def metric_key(name: str, labels: Union[Dict[str, str], Labels, None] = None) -> str:
    """Render ``name`` + labels into the snapshot key."""
    norm = _normalize_labels(labels)
    if not norm:
        return name
    inner = ",".join(f"{k}={v}" for k, v in norm)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ReproError("counters only go up; use a gauge")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Bucketed distribution with exact count/sum/min/max.

    ``bounds`` are inclusive upper bounds in increasing order; one
    implicit +Inf bucket catches the overflow.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: Optional[Sequence[int]] = None):
        bounds = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(set(bounds)):
            raise ReproError(
                f"histogram bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # Linear scan: bounds lists are short and hot paths observe
        # mostly-small values that exit in the first few probes.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantiles(
        self, qs: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> Dict[float, Optional[float]]:
        """Estimate quantiles from the bucket counts.

        Estimates interpolate within the containing bucket (Prometheus
        ``histogram_quantile`` style), clamped to the observed
        ``min``/``max`` so single-bucket distributions do not smear
        across the whole bucket span. Values landing in the +Inf
        overflow bucket report the observed ``max`` — the only finite
        statement the histogram can make about them. An empty histogram
        maps every quantile to None.
        """
        out: Dict[float, Optional[float]] = {}
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ReproError(f"quantile must be in [0, 1], got {q}")
            out[q] = quantile_from_buckets(
                self.bounds, self.bucket_counts, self.count, q,
                observed_min=self.min, observed_max=self.max,
            )
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }


def quantile_from_buckets(
    bounds: Sequence[Union[int, float]],
    bucket_counts: Sequence[int],
    count: int,
    q: float,
    observed_min: Optional[Union[int, float]] = None,
    observed_max: Optional[Union[int, float]] = None,
) -> Optional[float]:
    """The *q*-quantile implied by histogram buckets (None when empty).

    Works on snapshot dicts as well as live instruments: pass the
    ``bounds``/``buckets``/``count`` fields of a histogram's
    ``as_dict()`` form. Linear interpolation inside the containing
    bucket; the +Inf overflow bucket collapses to ``observed_max``
    (else the last finite bound) since its upper edge is unbounded.
    """
    if count <= 0:
        return None
    rank = q * count
    cumulative = 0
    for i, n in enumerate(bucket_counts):
        if n <= 0:
            continue
        if cumulative + n < rank:
            cumulative += n
            continue
        if i >= len(bounds):  # overflow bucket
            if observed_max is not None:
                return float(observed_max)
            return float(bounds[-1]) if bounds else None
        lower = float(bounds[i - 1]) if i > 0 else 0.0
        upper = float(bounds[i])
        if observed_min is not None:
            lower = max(lower, float(observed_min))
        if observed_max is not None:
            upper = min(upper, float(observed_max))
        if upper <= lower:
            return float(upper)
        fraction = (rank - cumulative) / n
        return lower + fraction * (upper - lower)
    # rank beyond the recorded mass (q == 1.0 with rounding): the max.
    if observed_max is not None:
        return float(observed_max)
    return float(bounds[-1]) if bounds else None


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    ``counter``/``gauge``/``histogram`` return the live instrument, so
    hot paths fetch once and update locally::

        samples = registry.counter("vm.samples")
        ...
        samples.inc()
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(
        self, name: str, labels: Union[Dict[str, str], Labels, None] = None
    ) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(
        self, name: str, labels: Union[Dict[str, str], Labels, None] = None
    ) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Union[Dict[str, str], Labels, None] = None,
        bounds: Optional[Sequence[int]] = None,
    ) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(bounds)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise ReproError(
                f"metric {key!r} is a {instrument.kind}, not a histogram"
            )
        return instrument

    def _get(self, name, labels, cls):
        key = metric_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ReproError(
                f"metric {key!r} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    # -- read side ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def get(self, key: str) -> Optional[Instrument]:
        """The live instrument under a rendered snapshot key, if any."""
        return self._instruments.get(key)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Sorted, JSON-able rendering of every instrument."""
        return {
            key: instrument.as_dict()
            for key, instrument in sorted(self._instruments.items())
        }

    # -- aggregation -------------------------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker's manifest)
        into this registry: counters add, gauges last-write-win,
        histograms merge bucket-for-bucket (bounds must agree)."""
        for key, payload in snapshot.items():
            mtype = payload.get("type")
            if mtype == "counter":
                self._get(key, None, Counter).value += int(payload["value"])
            elif mtype == "gauge":
                self._get(key, None, Gauge).value = payload["value"]
            elif mtype == "histogram":
                hist = self.histogram(key, bounds=payload["bounds"])
                if list(hist.bounds) != list(payload["bounds"]):
                    raise ReproError(
                        f"histogram {key!r}: bucket bounds disagree"
                    )
                hist.count += int(payload.get("count", 0))
                hist.sum += payload.get("sum", 0)
                for i, n in enumerate(payload.get("buckets", ())):
                    hist.bucket_counts[i] += int(n)
                # Tolerate payloads without min/max (empty or compacted
                # delta snapshots): absent observations tighten nothing.
                for attr, pick in (("min", min), ("max", max)):
                    theirs = payload.get(attr)
                    if theirs is None:
                        continue
                    ours = getattr(hist, attr)
                    setattr(
                        hist, attr,
                        theirs if ours is None else pick(ours, theirs),
                    )
            else:
                raise ReproError(
                    f"metric {key!r}: unknown snapshot type {mtype!r}"
                )

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())
