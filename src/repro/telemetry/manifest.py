"""Per-run manifests: the provenance record of an experiment cell.

A :class:`RunManifest` is a small JSON document answering "what exactly
produced this number?": the full :class:`~repro.harness.experiment.RunSpec`,
the engine, the resolved trigger configuration (including the derived
per-cell seed for randomized triggers), simulated-cycle and wall-clock
timings, the final :class:`~repro.vm.tracing.ExecStats`, and a metrics
snapshot. ``ExperimentRunner`` emits one per computed cell and
aggregates them — including manifests pickled back from pool workers —
into a sweep-level summary (:func:`aggregate_manifests`).

Manifests round-trip exactly: ``load_manifest(path) ==`` the manifest
that was written (tests/test_telemetry.py pins write → load → equal).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

MANIFEST_VERSION = 1


def spec_as_dict(spec) -> Dict[str, Any]:
    """JSON-able rendering of a :class:`RunSpec` (enums → values)."""
    payload = dataclasses.asdict(spec)
    payload["strategy"] = spec.strategy.value
    payload["instrumentation"] = list(spec.instrumentation)
    return payload


@dataclass
class RunManifest:
    """Provenance + measurements for one experiment cell."""

    spec: Dict[str, Any]
    engine: str
    trigger: Dict[str, Any]
    seed: Optional[int]
    cycles: int
    value: int
    wall_seconds: float
    stats: Dict[str, Any]
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: static-analysis section: audit verdict, cost certificate, and the
    #: static↔dynamic reconciliation result (empty when the producing
    #: runner had auditing disabled; see :mod:`repro.analysis`)
    analysis: Dict[str, Any] = field(default_factory=dict)
    #: self-profiling section: the overhead profiler's snapshot, its
    #: decomposition report, and the sample-bound verdict (empty when
    #: the producing runner had profiling disabled; docs/PROFILING.md)
    profiling: Dict[str, Any] = field(default_factory=dict)
    #: strategy-plan section for planned (mixed-strategy) cells: the
    #: default strategy, the per-function assignments the run actually
    #: applied, and per-strategy counts (empty for unplanned cells;
    #: see :mod:`repro.analysis.planner`)
    plan: Dict[str, Any] = field(default_factory=dict)
    source: str = "serial"
    version: int = MANIFEST_VERSION

    @property
    def label(self) -> str:
        spec = self.spec
        interval = spec.get("interval")
        suffix = f"@{interval}" if interval is not None else ""
        return (
            f"{spec.get('workload')}/{spec.get('strategy')}"
            f"/{spec.get('trigger')}{suffix}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def load_manifest(path: Union[str, pathlib.Path]) -> RunManifest:
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return RunManifest.from_dict(payload)


def aggregate_manifests(manifests: List[RunManifest]) -> Dict[str, Any]:
    """Sweep-level summary across cells (serial and pool alike).

    Counters that are meaningful as totals are summed; per-cell detail
    stays available through the individual manifests. Deterministic:
    output depends only on the manifest contents, not worker order,
    because cells are keyed and sorted by label.
    """
    from repro.telemetry.metrics import MetricsRegistry

    merged = MetricsRegistry()
    cells = []
    total_cycles = 0
    total_wall = 0.0
    by_source: Dict[str, int] = {}
    for m in sorted(manifests, key=lambda m: m.label):
        merged.merge_snapshot(m.metrics)
        total_cycles += m.cycles
        total_wall += m.wall_seconds
        by_source[m.source] = by_source.get(m.source, 0) + 1
        cells.append(
            {
                "label": m.label,
                "engine": m.engine,
                "seed": m.seed,
                "cycles": m.cycles,
                "wall_seconds": m.wall_seconds,
                "source": m.source,
            }
        )
    return {
        "version": MANIFEST_VERSION,
        "cells": cells,
        "cell_count": len(cells),
        "total_cycles": total_cycles,
        "total_wall_seconds": total_wall,
        "sources": dict(sorted(by_source.items())),
        "metrics": merged.snapshot(),
    }


def write_aggregate(
    manifests: List[RunManifest], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(aggregate_manifests(manifests), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path
