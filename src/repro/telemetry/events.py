"""Typed telemetry events: the vocabulary of the flight recorder.

Every event the VM, harness, or adaptive controller can emit is one of
the kinds below. An event is a flat, immutable :class:`Event` tuple so
streams from different engines (or different processes) compare with
``==`` — the determinism contract in docs/OBSERVABILITY.md is stated
directly over these tuples.

Event timestamps are **simulated cycles**, never wall clock: the cycle
counter is deterministic and bit-identical across both execution
engines at every observer boundary (see docs/VM_PERF.md), so traces are
reproducible artifacts, not measurements of the host machine.

Field conventions:

* ``cycles`` — cumulative simulated cycles *after* the emitting
  operation's full charge (including sample-transfer penalties and GC
  pauses). For ``timer.tick`` it is the tick's scheduled boundary
  (``k * timer_period``), not the detection point — the two engines
  detect ticks at different instruction granularities, but the boundary
  is engine-independent.
* ``tid`` — green-thread id of the emitting thread; -1 for events with
  no thread context (scheduler/harness events).
* ``function`` / ``pc`` — original function name and program counter,
  or None where no bytecode location applies.
* ``data`` — a tuple of ``(key, value)`` pairs (kept as a tuple, not a
  dict, so events stay hashable and order-stable).
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional, Tuple

# -- event kinds -------------------------------------------------------------

#: A trigger poll returned True at a CHECK or GUARDED_INSTR
#: (``data: mechanism=check|guarded``).
SAMPLE_FIRED = "sample.fired"

#: A fired CHECK transferred control into duplicated code
#: (``data: target`` — the duplicated-code pc).
CHECK_TAKEN = "check.taken"

#: Execution entered duplicated code (paired 1:1 with ``check.taken``).
DUP_ENTER = "dup.enter"

#: First check boundary observed after a ``dup.enter`` — execution is
#: back in checking code (``data: enter_cycles, residency``). Observer-
#: boundary granularity: the exact cold-to-hot jump is not an observer
#: op, so residency is measured sample-transfer → next-check.
DUP_EXIT = "dup.exit"

#: The allocation clock triggered a GC pause
#: (``data: pause_cycles, alloc_count``).
GC_PAUSE = "gc.pause"

#: The scheduler switched away from a thread at a yieldpoint
#: (``data: from_tid``; ``tid`` is the outgoing thread).
THREAD_SWITCH = "thread.switch"

#: The virtual timer crossed a period boundary (``data: tick`` — the
#: 1-based tick index; ``cycles`` is the boundary, see module docs).
TIMER_TICK = "timer.tick"

#: The adaptive controller committed a recompilation decision
#: (``data: hot_sites, inlined, ...`` — see adaptive/controller.py).
RECOMPILE = "adaptive.recompile"

#: Every kind above, in a stable documentation order.
EVENT_KINDS = (
    SAMPLE_FIRED,
    CHECK_TAKEN,
    DUP_ENTER,
    DUP_EXIT,
    GC_PAUSE,
    THREAD_SWITCH,
    TIMER_TICK,
    RECOMPILE,
)


class Event(NamedTuple):
    """One recorded occurrence. Plain tuple semantics by design:
    equality, ordering, hashing, and pickling all behave."""

    seq: int
    kind: str
    cycles: int
    tid: int
    function: Optional[str]
    pc: Optional[int]
    data: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by the JSONL exporter)."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "cycles": self.cycles,
            "tid": self.tid,
        }
        if self.function is not None:
            payload["function"] = self.function
        if self.pc is not None:
            payload["pc"] = self.pc
        if self.data:
            payload["data"] = dict(self.data)
        return payload


def event_from_dict(payload: Dict[str, Any]) -> Event:
    """Inverse of :meth:`Event.as_dict` (used by manifest/JSONL tests)."""
    return Event(
        seq=payload["seq"],
        kind=payload["kind"],
        cycles=payload["cycles"],
        tid=payload["tid"],
        function=payload.get("function"),
        pc=payload.get("pc"),
        data=tuple(payload.get("data", {}).items()),
    )
