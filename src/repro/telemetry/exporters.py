"""Trace exporters: JSONL, compact JSONL, and Chrome ``trace_event``.

JSONL is the machine-diffable format — one :meth:`Event.as_dict` per
line, loadable with any log tooling and round-trippable through
:func:`~repro.telemetry.events.event_from_dict`.

The *compact* JSONL format (:func:`write_compact_jsonl`) is the
compacting-exporter half of ``repro.telemetry.compaction``: it consumes
suppressed record streams and packs them with a template dictionary +
integer delta encoding (see the format notes on
:class:`_CompactEncoder`), re-inflating bit-equivalently through
:func:`read_compact_jsonl`. On steady-state sampling streams it is an
order of magnitude smaller than plain JSONL (the CI compaction gate
pins >= 10x on javac/osr).

The Chrome format targets ``chrome://tracing`` / Perfetto: a JSON
object with a ``traceEvents`` array. Simulated cycles map onto the
viewer's microsecond timeline (1 cycle = 1 µs), threads map onto
viewer threads, and duplicated-code residency renders as complete
("X") duration slices so sample clustering is visible at a glance.
See https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
for the format reference.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Union

from repro.telemetry.events import (
    DUP_ENTER,
    DUP_EXIT,
    GC_PAUSE,
    THREAD_SWITCH,
    TIMER_TICK,
    Event,
    event_from_dict,
)

# -- JSONL -------------------------------------------------------------------


def events_to_jsonl(events: Iterable[Event]) -> str:
    """One compact JSON object per line, in stream order."""
    return "".join(
        json.dumps(e.as_dict(), separators=(",", ":")) + "\n" for e in events
    )


def write_jsonl(
    events: Iterable[Event], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(events_to_jsonl(events), encoding="utf-8")
    return path


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Event]:
    """Inverse of :func:`write_jsonl`."""
    events = []
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# -- Chrome trace_event ------------------------------------------------------

#: Instant/duration phases used below: "i" instant, "X" complete slice,
#: "C" counter, "M" metadata.

#: Viewer thread id for events without a green thread (``Event.tid``
#: -1: harness annotations, VM-level timer machinery). A dedicated
#: track keeps them from masquerading as green-thread 0 activity.
HARNESS_TID = 9999


def _viewer_tid(tid: int) -> int:
    return tid if tid >= 0 else HARNESS_TID


def _thread_label(tid: int) -> str:
    if tid == HARNESS_TID:
        return "vm/harness"
    if tid == 0:
        return "main (tid 0)"
    return f"green-thread {tid}"


def _instant(event: Event, name: str) -> Dict[str, object]:
    args = dict(event.data)
    if event.function is not None:
        args["function"] = event.function
    if event.pc is not None:
        args["pc"] = event.pc
    return {
        "name": name,
        "ph": "i",
        "ts": event.cycles,
        "pid": 1,
        "tid": _viewer_tid(event.tid),
        "s": "t",  # thread-scoped instant
        "cat": event.kind,
        "args": args,
    }


def events_to_chrome_trace(
    events: Iterable[Event], label: str = "repro"
) -> Dict[str, object]:
    """Render an event stream as a Chrome ``trace_event`` document.

    Every event becomes a thread-scoped instant except duplicated-code
    residency, which is folded into ``X`` (complete) slices spanning
    dup.enter → dup.exit, and sample counts, which also feed a running
    "samples" counter track.
    """
    trace: List[Dict[str, object]] = []
    tids = set()
    samples_by_tid: Dict[int, int] = {}
    # tid -> pending dup.enter event, for pairing into an X slice
    open_dup: Dict[int, Event] = {}

    for event in events:
        tid = _viewer_tid(event.tid)
        tids.add(tid)
        kind = event.kind
        if kind == DUP_ENTER:
            open_dup[event.tid] = event
            continue
        if kind == DUP_EXIT:
            enter = open_dup.pop(event.tid, None)
            start = (
                enter.cycles if enter is not None
                else dict(event.data).get("enter_cycles", event.cycles)
            )
            trace.append(
                {
                    "name": "duplicated-code",
                    "ph": "X",
                    "ts": start,
                    "dur": max(event.cycles - start, 0),
                    "pid": 1,
                    "tid": tid,
                    "cat": "dup",
                    "args": dict(event.data),
                }
            )
            continue
        if kind == "sample.fired":
            samples_by_tid[tid] = samples_by_tid.get(tid, 0) + 1
            trace.append(
                {
                    "name": "samples",
                    "ph": "C",
                    "ts": event.cycles,
                    "pid": 1,
                    "tid": tid,
                    "args": {"samples": samples_by_tid[tid]},
                }
            )
        name = {
            TIMER_TICK: "timer tick",
            THREAD_SWITCH: "thread switch",
            GC_PAUSE: "gc pause",
        }.get(kind, kind)
        trace.append(_instant(event, name))

    # A dup region still open at end-of-stream: render as zero-length
    # marker rather than dropping it silently.
    for tid, enter in open_dup.items():
        trace.append(_instant(enter, "duplicated-code (unterminated)"))

    trace.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": label},
        }
    )
    # One thread_name + thread_sort_index metadata pair per viewer
    # thread: spawned green threads group under their own named tracks
    # in tid order, with the harness track pinned to the bottom.
    for tid in sorted(tids):
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": _thread_label(tid)},
            }
        )
        trace.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated cycles (1 cycle = 1us)"},
    }


def write_chrome_trace(
    events: Iterable[Event],
    path: Union[str, pathlib.Path],
    label: str = "repro",
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(events_to_chrome_trace(events, label=label), indent=1)
        + "\n",
        encoding="utf-8",
    )
    return path


# -- compact JSONL -----------------------------------------------------------
#
# A line-oriented lossless packing of (possibly suppressed) record
# streams. Two passes: a planning pass chooses per-field predictors,
# an encoding pass writes one JSON value per line:
#
# * JSON objects — a header ({"repro-compact": 2}), a suppressed run
#   ({"run": ...}, the compaction module's rendering, kept only for
#   runs long enough that one run line beats per-event delta lines),
#   or a *template line* ({"g": [event dicts...], "m": [modes...]})
#   introducing an event-group template. Consecutive events with the
#   same tid + cycle stamp and adjacent seqs form a *group* (a fired
#   check emits sample.fired + check.taken + dup.enter at one stamp; a
#   dup.exit landing on the same check boundary joins too), and the
#   group's per-member (kind, function, pc, data keys, which-fields-
#   are-ints) vector is the template. Template ids are assigned in
#   order of first appearance; the decoder mirrors the assignment, so
#   ids never travel on the wire.
# * JSON arrays — a delta line referencing a known template:
#
#     [id]                 everything advances by the deltas remembered
#                          from this template's previous delta line
#     [id, dc]             cycles gap is dc; seq gap + field residuals
#                          repeat the remembered values
#     [id, ds, dc]         seq and cycles gaps explicit, residuals
#                          remembered
#     [id, ds, dc, r1..rk] every int field's residual explicit
#
#   (Shapes are distinguished by length; k is the template's int-field
#   count, so the k=0 degenerate case makes the last two identical.)
#   ``ds`` is the seq gap to the previous group line's last event minus
#   one (0 when the stream is contiguous) and ``dc`` the cycle gap to
#   the previous group line — *global* baselines, so both stay small no
#   matter how sample sites rotate. Int-field residuals are taken
#   against a per-field predictor declared on the template line:
#   mode 0 predicts the field's previous value (counters, constants),
#   mode 1 predicts previous value + elapsed cycles (clock-tracking
#   fields like dup.exit's enter_cycles). Non-integer payload fields
#   (mechanism strings, bools) must match the template's remembered
#   values — when one changes, the encoder re-emits the template line
#   (same id), which also resets the stride memory.
#
# On steady sampling streams almost every line is `[id, dc]` — about a
# tenth the bytes of the three-to-four plain JSONL lines it stands for.

_COMPACT_HEADER_KEY = "repro-compact"
_COMPACT_VERSION = 2

#: Upper bound on events folded into one group; bursts at a single
#: check boundary are at most 4 events (dup.exit + sample.fired +
#: check.taken + dup.enter), the slack tolerates future kinds.
_MAX_GROUP = 8

#: Runs shorter than this re-inflate before packing: their events pack
#: tighter as delta lines (and re-join their same-stamp burst groups)
#: than as a standalone run object. Longer runs keep the one-line-per-
#: run rendering, which beats any per-event encoding.
_RUN_LINE_MIN = 64


def _is_int(value) -> bool:
    # bool is an int subclass; keep it on the non-arithmetic side.
    return type(value) is int


def _group_shape(tid: int, events: List[Event]):
    return (
        tid,
        tuple(
            (
                e.kind,
                e.function,
                e.pc,
                tuple(k for k, _ in e.data),
                tuple(_is_int(v) for _, v in e.data),
            )
            for e in events
        ),
    )


def _iter_groups(events: Iterable[Event]):
    """Split a seq-sorted event stream into same-stamp groups."""
    pending: List[Event] = []
    for event in events:
        if pending:
            last = pending[-1]
            if (
                len(pending) < _MAX_GROUP
                and event.tid == last.tid
                and event.cycles == last.cycles
                and event.seq == last.seq + 1
            ):
                pending.append(event)
                continue
            yield pending
            pending = []
        pending.append(event)
    if pending:
        yield pending


def _split_values(events: List[Event]):
    ints: List[int] = []
    nonints: List[object] = []
    for e in events:
        for _, v in e.data:
            (ints if _is_int(v) else nonints).append(v)
    return ints, nonints


def _int_field_keys(shape) -> List[str]:
    """Flattened data-key names of a shape's int fields, in field order
    (the per-field identity mode 2 predicts against)."""
    return [
        key
        for (_kind, _fn, _pc, keys, mask) in shape[1]
        for key, is_int in zip(keys, mask)
        if is_int
    ]


class _TemplateState:
    __slots__ = ("index", "shape", "modes", "int_keys", "cycles", "ints",
                 "nonints", "dseq", "dcycles", "dints")

    def __init__(self, index, shape, modes):
        self.index = index
        self.shape = shape
        self.modes = modes
        self.int_keys = _int_field_keys(shape)
        self.cycles = 0
        self.ints: List[int] = []
        self.nonints: List[object] = []
        self.dseq = None
        self.dcycles = None
        self.dints = None

    def remember(self, cycles, ints, nonints) -> None:
        self.cycles = cycles
        self.ints = ints
        self.nonints = nonints
        self.dseq = self.dcycles = self.dints = None

    def _predict(self, mode, prev, elapsed, key, global_last):
        if mode == 1:
            return prev + elapsed
        if mode == 2:
            return global_last[key]
        return prev

    def residuals(self, cycles, ints, global_last) -> List[int]:
        """Per-field residuals against the declared predictors. Updates
        *global_last* field-by-field, mirroring the decoder."""
        elapsed = cycles - self.cycles
        out = []
        for v, p, mode, key in zip(ints, self.ints, self.modes,
                                   self.int_keys):
            out.append(v - self._predict(mode, p, elapsed, key,
                                         global_last))
            global_last[key] = v
        return out

    def advance(self, cycles, residuals, global_last) -> List[int]:
        elapsed = cycles - self.cycles
        out = []
        for p, r, mode, key in zip(self.ints, residuals, self.modes,
                                   self.int_keys):
            v = r + self._predict(mode, p, elapsed, key, global_last)
            out.append(v)
            global_last[key] = v
        return out


#: Planning cost of a predictor with no baseline available yet.
_NO_BASELINE_COST = 24


def _plan_modes(groups):
    """Per-template, per-int-field predictor modes, chosen by replaying
    the stream and summing residual digit counts:

    * mode 0 — previous value of this template's field (constants,
      per-site counters);
    * mode 1 — previous value + elapsed cycles (clock-tracking fields
      like dup.exit's enter_cycles);
    * mode 2 — last value of the same data key *anywhere* (globally
      advancing counters like gc.pause's alloc_count, which otherwise
      shear across the many per-site templates they appear under).

    Declared on template lines, so the decoder never has to guess."""
    per_tmpl_prev: Dict[tuple, tuple] = {}
    costs: Dict[tuple, List[List[int]]] = {}
    keys_by_shape: Dict[tuple, List[str]] = {}
    global_last: Dict[str, int] = {}
    for group in groups:
        shape = _group_shape(group[0].tid, group)
        ints, _ = _split_values(group)
        keys = keys_by_shape.get(shape)
        if keys is None:
            keys = keys_by_shape[shape] = _int_field_keys(shape)
        cycles = group[0].cycles
        prev = per_tmpl_prev.get(shape)
        if prev is None:
            costs[shape] = [[0, 0, 0] for _ in ints]
        else:
            prev_cycles, prev_ints = prev
            elapsed = cycles - prev_cycles
            cost = costs[shape]
            for j, v in enumerate(ints):
                cost[j][0] += len(str(v - prev_ints[j]))
                cost[j][1] += len(str(v - prev_ints[j] - elapsed))
                baseline = global_last.get(keys[j])
                cost[j][2] += (
                    len(str(v - baseline)) if baseline is not None
                    else _NO_BASELINE_COST
                )
        per_tmpl_prev[shape] = (cycles, ints)
        for j, v in enumerate(ints):
            global_last[keys[j]] = v
    modes: Dict[tuple, List[int]] = {}
    for shape, cost in costs.items():
        modes[shape] = [
            min(range(3), key=lambda m: (field[m], m)) for field in cost
        ]
    return modes


def records_to_compact_jsonl(records) -> str:
    """Pack a record stream into the compact JSONL format."""
    from repro.telemetry.compaction import SuppressedRun, record_as_dict

    big_runs = []
    events: List[Event] = []
    for record in records:
        if isinstance(record, SuppressedRun):
            if record.count >= _RUN_LINE_MIN:
                big_runs.append(record)
            else:
                events.extend(record.events())
        else:
            events.append(record)
    events.sort(key=lambda e: e.seq)
    big_runs.sort(key=lambda r: r.first.seq, reverse=True)
    groups = list(_iter_groups(events))
    modes = _plan_modes(groups)

    dumps = json.dumps
    lines = [dumps({_COMPACT_HEADER_KEY: _COMPACT_VERSION},
                   separators=(",", ":"))]
    templates: Dict[tuple, _TemplateState] = {}
    global_last: Dict[str, int] = {}
    last_seq = -1
    last_cycles = 0
    for group in groups:
        # Keep the file roughly seq-ordered: flush any big run that
        # starts before this group.
        while big_runs and big_runs[-1].first.seq < group[0].seq:
            lines.append(dumps(record_as_dict(big_runs.pop()),
                               separators=(",", ":")))
        shape = _group_shape(group[0].tid, group)
        ints, nonints = _split_values(group)
        state = templates.get(shape)
        if state is None or nonints != state.nonints:
            if state is None:
                state = _TemplateState(len(templates), shape, modes[shape])
                templates[shape] = state
            payload: Dict[str, object] = {
                "g": [e.as_dict() for e in group]
            }
            if any(state.modes):
                payload["m"] = state.modes
            lines.append(dumps(payload, separators=(",", ":")))
            state.remember(group[0].cycles, ints, nonints)
            for key, value in zip(state.int_keys, ints):
                global_last[key] = value
        else:
            ds = group[0].seq - last_seq - 1
            dc = group[0].cycles - last_cycles
            dints = state.residuals(group[0].cycles, ints, global_last)
            if (dints == state.dints and ds == state.dseq
                    and dc == state.dcycles):
                line: List[int] = [state.index]
            elif dints == state.dints and ds == state.dseq:
                line = [state.index, dc]
            elif dints == state.dints:
                line = [state.index, ds, dc]
            else:
                line = [state.index, ds, dc, *dints]
            lines.append(dumps(line, separators=(",", ":")))
            state.cycles = group[0].cycles
            state.ints = ints
            state.dseq, state.dcycles, state.dints = ds, dc, dints
        last_seq = group[-1].seq
        last_cycles = group[0].cycles
    while big_runs:
        lines.append(dumps(record_as_dict(big_runs.pop()),
                           separators=(",", ":")))
    return "\n".join(lines) + "\n"


def _decode_group(state: _TemplateState, seq, cycles, ints) -> List[Event]:
    events = []
    cursor_int = 0
    cursor_non = 0
    tid, members = state.shape
    for offset, (kind, function, pc, keys, int_mask) in enumerate(members):
        data = []
        for key, is_int in zip(keys, int_mask):
            if is_int:
                data.append((key, ints[cursor_int]))
                cursor_int += 1
            else:
                data.append((key, state.nonints[cursor_non]))
                cursor_non += 1
        events.append(
            Event(seq + offset, kind, cycles, tid, function, pc, tuple(data))
        )
    return events


def compact_jsonl_to_records(text: str):
    """Inverse of :func:`records_to_compact_jsonl`. Also accepts the
    plain record-per-line format (no header), so readers can sniff."""
    from repro.telemetry.compaction import record_from_dict

    records = []
    templates: List[_TemplateState] = []
    global_last: Dict[str, int] = {}
    last_seq = -1
    last_cycles = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if isinstance(obj, list):
            state = templates[obj[0]]
            n = len(obj)
            if n == 1:
                ds, dc, dints = state.dseq, state.dcycles, state.dints
            elif n == 2:
                ds, dc, dints = state.dseq, obj[1], state.dints
            elif n == 3:
                ds, dc = obj[1], obj[2]
                dints = state.dints if state.ints else []
            else:
                ds, dc, dints = obj[1], obj[2], list(obj[3:])
            seq = last_seq + 1 + ds
            cycles = last_cycles + dc
            ints = state.advance(cycles, dints, global_last)
            group = _decode_group(state, seq, cycles, ints)
            records.extend(group)
            state.cycles = cycles
            state.ints = ints
            state.dseq, state.dcycles, state.dints = ds, dc, dints
            last_seq = group[-1].seq
            last_cycles = cycles
            continue
        if _COMPACT_HEADER_KEY in obj:
            continue
        if "g" in obj:
            group = [event_from_dict(d) for d in obj["g"]]
            shape = _group_shape(group[0].tid, group)
            ints, nonints = _split_values(group)
            # Match on shape alone: a re-emitted template line carries
            # this template's new non-int values (and resets strides),
            # it never mints a fresh id.
            for known in templates:
                if known.shape == shape:
                    state = known
                    break
            else:
                state = _TemplateState(
                    len(templates), shape,
                    list(obj.get("m") or [0] * len(ints)),
                )
                templates.append(state)
            state.remember(group[0].cycles, ints, nonints)
            for key, value in zip(state.int_keys, ints):
                global_last[key] = value
            records.extend(group)
            last_seq = group[-1].seq
            last_cycles = group[0].cycles
            continue
        records.append(record_from_dict(obj))
    return records


def write_compact_jsonl(records, path: Union[str, pathlib.Path],
                        ) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(records_to_compact_jsonl(records), encoding="utf-8")
    return path


def read_compact_jsonl(path: Union[str, pathlib.Path]):
    """Read a compact (or plain record-per-line) JSONL stream."""
    return compact_jsonl_to_records(
        pathlib.Path(path).read_text(encoding="utf-8")
    )


def records_to_chrome_trace(records, label: str = "repro"):
    """Chrome document for a compacted stream: re-inflates first, so
    the output is bit-identical to exporting the uncompacted events."""
    from repro.telemetry.compaction import inflate

    return events_to_chrome_trace(inflate(records), label=label)


def write_chrome_trace_from_records(
    records, path: Union[str, pathlib.Path], label: str = "repro"
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(records_to_chrome_trace(records, label=label), indent=1)
        + "\n",
        encoding="utf-8",
    )
    return path
