"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

JSONL is the machine-diffable format — one :meth:`Event.as_dict` per
line, loadable with any log tooling and round-trippable through
:func:`~repro.telemetry.events.event_from_dict`.

The Chrome format targets ``chrome://tracing`` / Perfetto: a JSON
object with a ``traceEvents`` array. Simulated cycles map onto the
viewer's microsecond timeline (1 cycle = 1 µs), threads map onto
viewer threads, and duplicated-code residency renders as complete
("X") duration slices so sample clustering is visible at a glance.
See https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
for the format reference.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Union

from repro.telemetry.events import (
    DUP_ENTER,
    DUP_EXIT,
    GC_PAUSE,
    THREAD_SWITCH,
    TIMER_TICK,
    Event,
    event_from_dict,
)

# -- JSONL -------------------------------------------------------------------


def events_to_jsonl(events: Iterable[Event]) -> str:
    """One compact JSON object per line, in stream order."""
    return "".join(
        json.dumps(e.as_dict(), separators=(",", ":")) + "\n" for e in events
    )


def write_jsonl(
    events: Iterable[Event], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(events_to_jsonl(events), encoding="utf-8")
    return path


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Event]:
    """Inverse of :func:`write_jsonl`."""
    events = []
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# -- Chrome trace_event ------------------------------------------------------

#: Instant/duration phases used below: "i" instant, "X" complete slice,
#: "C" counter, "M" metadata.

#: Viewer thread id for events without a green thread (``Event.tid``
#: -1: harness annotations, VM-level timer machinery). A dedicated
#: track keeps them from masquerading as green-thread 0 activity.
HARNESS_TID = 9999


def _viewer_tid(tid: int) -> int:
    return tid if tid >= 0 else HARNESS_TID


def _thread_label(tid: int) -> str:
    if tid == HARNESS_TID:
        return "vm/harness"
    if tid == 0:
        return "main (tid 0)"
    return f"green-thread {tid}"


def _instant(event: Event, name: str) -> Dict[str, object]:
    args = dict(event.data)
    if event.function is not None:
        args["function"] = event.function
    if event.pc is not None:
        args["pc"] = event.pc
    return {
        "name": name,
        "ph": "i",
        "ts": event.cycles,
        "pid": 1,
        "tid": _viewer_tid(event.tid),
        "s": "t",  # thread-scoped instant
        "cat": event.kind,
        "args": args,
    }


def events_to_chrome_trace(
    events: Iterable[Event], label: str = "repro"
) -> Dict[str, object]:
    """Render an event stream as a Chrome ``trace_event`` document.

    Every event becomes a thread-scoped instant except duplicated-code
    residency, which is folded into ``X`` (complete) slices spanning
    dup.enter → dup.exit, and sample counts, which also feed a running
    "samples" counter track.
    """
    trace: List[Dict[str, object]] = []
    tids = set()
    samples_by_tid: Dict[int, int] = {}
    # tid -> pending dup.enter event, for pairing into an X slice
    open_dup: Dict[int, Event] = {}

    for event in events:
        tid = _viewer_tid(event.tid)
        tids.add(tid)
        kind = event.kind
        if kind == DUP_ENTER:
            open_dup[event.tid] = event
            continue
        if kind == DUP_EXIT:
            enter = open_dup.pop(event.tid, None)
            start = (
                enter.cycles if enter is not None
                else dict(event.data).get("enter_cycles", event.cycles)
            )
            trace.append(
                {
                    "name": "duplicated-code",
                    "ph": "X",
                    "ts": start,
                    "dur": max(event.cycles - start, 0),
                    "pid": 1,
                    "tid": tid,
                    "cat": "dup",
                    "args": dict(event.data),
                }
            )
            continue
        if kind == "sample.fired":
            samples_by_tid[tid] = samples_by_tid.get(tid, 0) + 1
            trace.append(
                {
                    "name": "samples",
                    "ph": "C",
                    "ts": event.cycles,
                    "pid": 1,
                    "tid": tid,
                    "args": {"samples": samples_by_tid[tid]},
                }
            )
        name = {
            TIMER_TICK: "timer tick",
            THREAD_SWITCH: "thread switch",
            GC_PAUSE: "gc pause",
        }.get(kind, kind)
        trace.append(_instant(event, name))

    # A dup region still open at end-of-stream: render as zero-length
    # marker rather than dropping it silently.
    for tid, enter in open_dup.items():
        trace.append(_instant(enter, "duplicated-code (unterminated)"))

    trace.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": label},
        }
    )
    # One thread_name + thread_sort_index metadata pair per viewer
    # thread: spawned green threads group under their own named tracks
    # in tid order, with the harness track pinned to the bottom.
    for tid in sorted(tids):
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": _thread_label(tid)},
            }
        )
        trace.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated cycles (1 cycle = 1us)"},
    }


def write_chrome_trace(
    events: Iterable[Event],
    path: Union[str, pathlib.Path],
    label: str = "repro",
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(events_to_chrome_trace(events, label=label), indent=1)
        + "\n",
        encoding="utf-8",
    )
    return path
