"""Event recorders: the objects the VM's observer hooks talk to.

Two implementations share one surface:

* :class:`NullRecorder` — every hook is a no-op. Attaching one keeps
  the VM's telemetry branches alive but does no work; the CI throughput
  gate holds this within a few percent of running with no recorder at
  all (the *null-recorder fast path* contract in docs/OBSERVABILITY.md).
* :class:`TelemetryRecorder` — appends typed events to a bounded
  :class:`~repro.telemetry.ring.EventRing` and maintains derived
  metrics in a :class:`~repro.telemetry.metrics.MetricsRegistry`.

The hooks are **engine-agnostic**: both the reference interpreter and
the fast engine call them at the same observer boundaries with the same
arguments in the same order, so for any given program + trigger the
recorded event stream is bit-identical across engines
(tests/test_telemetry.py pins this).

Derived state kept by the recorder (never by the engines, so the two
engines cannot drift):

* per-thread duplicated-code occupancy — set on a taken check, cleared
  (with a ``dup.exit`` event and a residency observation) at the next
  check boundary on that thread;
* the last virtual-timer tick boundary — ``vm.check_to_sample_latency``
  measures cycles from that boundary to each fired sample, which is
  exactly the §2.1 attribution error the timer trigger suffers from.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.telemetry.events import (
    CHECK_TAKEN,
    DUP_ENTER,
    DUP_EXIT,
    GC_PAUSE,
    RECOMPILE,
    SAMPLE_FIRED,
    THREAD_SWITCH,
    TIMER_TICK,
    Event,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.ring import EventRing


class NullRecorder:
    """API-complete recorder that records nothing.

    Also the base class of the real recorder, so the VM can hold "any
    recorder" without isinstance checks on hot paths.
    """

    __slots__ = ()

    #: True when events/metrics are actually collected. The engines
    #: never consult this — they are compiled/dispatched on
    #: ``recorder is None`` only — but callers use it to decide whether
    #: exporting makes sense.
    active = False

    #: True when the recorder wants the live frame stack at event
    #: boundaries so it can attribute events to full calling contexts.
    #: The reference and fast engines pass ``frames`` unconditionally on
    #: their recorder-attached paths (ignored unless this is set); the
    #: compiled engine consults this flag at lowering time and only
    #: emits the extra argument when it is True, keeping the generated
    #: source byte-identical in the default configuration.
    wants_context = False

    def check(self, cycles, tid, function, pc, fired, target=None,
              frames=None) -> None:
        """Every executed CHECK; ``fired`` means the transfer was taken
        (``cycles`` then already includes the transfer penalty and
        ``target`` is the duplicated-code pc). ``frames`` is the live
        frame stack, consulted only under :attr:`wants_context`."""

    def guarded_fired(self, cycles, tid, function, pc, frames=None) -> None:
        """A GUARDED_INSTR whose trigger poll returned True."""

    def gc_pause(self, cycles, tid, function, pc, pause, allocs,
                 frames=None) -> None:
        """The allocation clock charged a GC pause of ``pause`` cycles."""

    def timer_tick(self, boundary, tick, tid) -> None:
        """Virtual timer crossed ``boundary`` (= tick * timer_period)."""

    def thread_switch(self, cycles, tid) -> None:
        """The scheduler charged a switch away from thread ``tid``."""

    def annotate(self, kind, cycles=0, tid=-1, function=None, pc=None,
                 **data) -> None:
        """Free-form event from outside the VM (harness, adaptive)."""

    def events(self) -> Tuple[Event, ...]:
        return ()

    def summary(self) -> Dict[str, Any]:
        return {
            "active": False,
            "events": 0,
            "dropped": 0,
            "dropped_events": 0,
            "capacity": 0,
        }

    def sync_metrics(self) -> None:
        """Publish recorder-internal state (ring occupancy, drops) to the
        metrics registry. No-op here: a null recorder has no registry."""


class TelemetryRecorder(NullRecorder):
    """Flight recorder + metrics for one (or more) VM runs.

    Args:
        capacity: ring-buffer size; the oldest events are evicted once
            exceeded (``ring.dropped`` counts how many).
        metrics: registry to update; a private one by default.
        context: attribute sample/check/dup/gc events to their full
            calling context — every such event gains a trailing
            ``("ctx", id)`` data field, with ids interned in
            first-observation order by a
            :class:`~repro.profiling.cct.ContextTracker` (so they are
            engine-identical whenever the event streams are). Off by
            default: the extra field changes the stream's bytes, and
            interning costs a tuple build per event.
    """

    __slots__ = ("ring", "metrics", "_seq", "_dup_enter", "_last_tick",
                 "_marks", "wants_context", "contexts")

    active = True

    def __init__(
        self,
        capacity: int = 65536,
        metrics: Optional[MetricsRegistry] = None,
        context: bool = False,
    ):
        self.ring = EventRing(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._seq = 0
        #: tid -> cycles at the last un-exited dup.enter
        self._dup_enter: Dict[int, int] = {}
        self._last_tick: Optional[int] = None
        #: counter name -> total already published by sync_metrics
        self._marks: Dict[str, int] = {}
        self.wants_context = bool(context)
        if self.wants_context:
            from repro.profiling.cct import ContextTracker

            self.contexts: Optional[ContextTracker] = ContextTracker()
        else:
            self.contexts = None

    # -- internals ---------------------------------------------------------

    def _emit(self, kind, cycles, tid, function, pc, data) -> None:
        seq = self._seq
        self._seq = seq + 1
        self.ring.append(Event(seq, kind, cycles, tid, function, pc, data))

    def _sample(self, mechanism, cycles, tid, function, pc, ctx=None) -> None:
        data = (("mechanism", mechanism),)
        if ctx is not None:
            data += (("ctx", ctx),)
        self._emit(SAMPLE_FIRED, cycles, tid, function, pc, data)
        metrics = self.metrics
        metrics.counter("vm.samples").inc()
        metrics.counter(
            "vm.samples.by_function", {"function": function}
        ).inc()
        if self._last_tick is not None:
            metrics.histogram("vm.check_to_sample_latency_cycles").observe(
                cycles - self._last_tick
            )

    # -- VM hooks ----------------------------------------------------------

    def check(self, cycles, tid, function, pc, fired, target=None,
              frames=None) -> None:
        # Per-function executed-check counts are what the plan
        # reconciler compares against each function's certified bound;
        # every engine reports every executed CHECK through this hook,
        # so the labelled counter is engine-identical by construction.
        self.metrics.counter(
            "vm.checks.by_function", {"function": function}
        ).inc()
        ctx = (
            self.contexts.intern_frames(frames)
            if self.wants_context and frames is not None
            else None
        )
        enter = self._dup_enter.pop(tid, None)
        if enter is not None:
            # First check boundary after a sample transfer: execution
            # is demonstrably back in checking code.
            residency = cycles - enter
            data = (("enter_cycles", enter), ("residency", residency))
            if ctx is not None:
                data += (("ctx", ctx),)
            self._emit(DUP_EXIT, cycles, tid, function, pc, data)
            self.metrics.histogram("vm.dup_residency_cycles").observe(
                residency
            )
        if fired:
            self._sample("check", cycles, tid, function, pc, ctx)
            data = (("target", target),)
            if ctx is not None:
                data += (("ctx", ctx),)
            self._emit(CHECK_TAKEN, cycles, tid, function, pc, data)
            self._emit(
                DUP_ENTER, cycles, tid, function, pc,
                () if ctx is None else (("ctx", ctx),),
            )
            self._dup_enter[tid] = cycles

    def guarded_fired(self, cycles, tid, function, pc, frames=None) -> None:
        ctx = (
            self.contexts.intern_frames(frames)
            if self.wants_context and frames is not None
            else None
        )
        self._sample("guarded", cycles, tid, function, pc, ctx)

    def gc_pause(self, cycles, tid, function, pc, pause, allocs,
                 frames=None) -> None:
        data = (("pause_cycles", pause), ("alloc_count", allocs))
        if self.wants_context and frames is not None:
            data += (("ctx", self.contexts.intern_frames(frames)),)
        self._emit(GC_PAUSE, cycles, tid, function, pc, data)
        self.metrics.counter("vm.gc_pauses").inc()

    def timer_tick(self, boundary, tick, tid) -> None:
        self._last_tick = boundary
        self._emit(TIMER_TICK, boundary, tid, None, None, (("tick", tick),))
        self.metrics.counter("vm.timer_ticks").inc()

    def thread_switch(self, cycles, tid) -> None:
        self._emit(
            THREAD_SWITCH, cycles, tid, None, None, (("from_tid", tid),)
        )
        self.metrics.counter("vm.thread_switches").inc()

    def annotate(self, kind, cycles=0, tid=-1, function=None, pc=None,
                 **data) -> None:
        self._emit(kind, cycles, tid, function, pc, tuple(data.items()))

    # -- read side ---------------------------------------------------------

    def events(self) -> Tuple[Event, ...]:
        """The retained stream, oldest first."""
        return tuple(self.ring)

    def summary(self) -> Dict[str, Any]:
        summary = {
            "active": True,
            "events": len(self.ring),
            "dropped": self.ring.dropped,
            # For a plain recorder every ring entry is one event, so
            # evicted entries == lost events. CompactingRecorder
            # overrides this with the inflated weight of evicted
            # windows. Exposed here (and as vm.telemetry.ring.* via
            # sync_metrics) so `repro metrics` and manifest readers can
            # detect loss without the trace verb.
            "dropped_events": self.ring.dropped,
            "capacity": self.ring.capacity,
        }
        if self.wants_context and self.contexts is not None:
            summary["contexts"] = len(self.contexts)
        return summary

    def _bump(self, name: str, total: int) -> None:
        """Advance counter *name* to cumulative *total* (sync pattern:
        safe to call repeatedly, never double-counts)."""
        mark = self._marks.get(name, 0)
        if total > mark:
            self.metrics.counter(name).inc(total - mark)
            self._marks[name] = total

    def sync_metrics(self) -> None:
        """Publish ring occupancy and eviction counts as first-class
        ``vm.telemetry.ring.*`` metrics (satellite of the compaction
        work: drops used to be visible only on the ring object)."""
        metrics = self.metrics
        metrics.gauge("vm.telemetry.ring.events").set(len(self.ring))
        metrics.gauge("vm.telemetry.ring.capacity").set(self.ring.capacity)
        self._bump("vm.telemetry.ring.dropped", self.ring.dropped)
        self._bump(
            "vm.telemetry.ring.dropped_events", self.summary()["dropped_events"]
        )


def recompile_decision(recorder, cycles, **data) -> None:
    """Convenience used by the adaptive controller: emit an
    ``adaptive.recompile`` event (no-op on a null recorder)."""
    recorder.annotate(RECOMPILE, cycles=cycles, **data)
