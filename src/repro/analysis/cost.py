"""Static cost-bound analysis: machine-checkable check-cost certificates.

For a transformed program the analysis derives, per function, how many
checks each Property-1 opportunity can charge, and emits a JSON
:class:`CostCertificate` the harness later validates against the run's
dynamic :class:`~repro.vm.tracing.ExecStats` (the static↔dynamic
reconciler, :mod:`repro.analysis.reconcile`).

The certified bound is::

    checks_executed <= cpe * (calls + threads_spawned + 1)
                     + cpb * (backward_jumps + checks_taken)

with per-program coefficients ``cpe``/``cpb`` ∈ {0, 1}:

* an *entry* check executes once per activation — every activation is a
  counted CALL or SPAWN, plus one for the program's initial ``main``
  activation (the ``+ 1``);
* a *backedge* check's not-taken continuation immediately takes a
  counted backward jump, and a taken check is itself counted in
  ``checks_taken`` (its jump into duplicated code bypasses the backward
  jump that would otherwise pay for it) — so each execution charges a
  distinct opportunity;
* Partial-Duplication's *residual* checks (re-entry points left by
  top-node removal) charge entries *and* backedges: §3.1 guarantees the
  removed→kept boundary is crossed at most once per activation or
  iteration, keeping the dynamic count ≤ Full-Duplication's. Residuals
  therefore force both coefficients to 1.

No-Duplication and exhaustive output contain no CHECKs: both
coefficients are 0 and the certificate asserts ``checks_executed == 0``
(GUARDED_INSTR polls are §3.2's separate mechanism, reported as
``guarded_sites``).

Each function additionally gets two per-iteration measures: the maximum
number of checks charged per iteration of any checking-code loop
(nesting-aware — inner-loop checks are not charged to the outer loop),
and the *duplicated-code residency* — the longest instruction path one
sample can execute before control must return to checking code (finite
precisely because the duplicated code is acyclic, rule AUD003).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.analysis.context import AuditContext, CheckKind
from repro.bytecode.opcodes import Op
from repro.errors import AnalysisError

CERTIFICATE_VERSION = 1


def _stat(stats: Union[Mapping[str, Any], Any], name: str) -> int:
    if isinstance(stats, Mapping):
        return int(stats.get(name, 0))
    return int(getattr(stats, name))


@dataclass(frozen=True)
class FunctionCostBound:
    """Static check-cost facts for one function."""

    function: str
    strategy: str
    static_checks: int
    entry_checks: int
    backedge_checks: int
    residual_checks: int
    guarded_sites: int
    instr_sites: int
    checking_blocks: int
    dup_blocks: int
    dup_instructions: int
    #: longest instruction path through duplicated code per sample;
    #: None when the duplicate is cyclic (counted backedges trade the
    #: acyclic pass for a burst-counter bound)
    dup_residency: Optional[int]
    loops: int
    max_checks_per_iteration: int

    # -- per-function coefficients (satellite of the plan reconciler) ----

    @property
    def checks_per_entry(self) -> int:
        """This function's own cpe coefficient: 1 iff it carries entry
        or residual checks. Its activations are a subset of the run's
        counted CALL/SPAWN opportunities, so charging the *global*
        entry total against a per-function coefficient stays an upper
        bound."""
        return 1 if self.entry_checks or self.residual_checks else 0

    @property
    def checks_per_backedge(self) -> int:
        return 1 if self.backedge_checks or self.residual_checks else 0

    @property
    def formula(self) -> str:
        return (
            f"checks_executed[{self.function}] <= "
            f"{self.checks_per_entry}*(calls + threads_spawned + 1) + "
            f"{self.checks_per_backedge}*(backward_jumps + checks_taken)"
        )

    def bound_against(self, stats: Union[Mapping[str, Any], Any]) -> int:
        """Evaluate this function's certified bound over one run's
        counters. With both coefficients zero (no-duplication,
        exhaustive, or a check-free body) the bound is exactly 0: the
        function must never execute a CHECK."""
        entries = (
            _stat(stats, "calls") + _stat(stats, "threads_spawned") + 1
        )
        backedges = (
            _stat(stats, "backward_jumps") + _stat(stats, "checks_taken")
        )
        return (
            self.checks_per_entry * entries
            + self.checks_per_backedge * backedges
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "strategy": self.strategy,
            "static_checks": self.static_checks,
            "entry_checks": self.entry_checks,
            "backedge_checks": self.backedge_checks,
            "residual_checks": self.residual_checks,
            "guarded_sites": self.guarded_sites,
            "instr_sites": self.instr_sites,
            "checking_blocks": self.checking_blocks,
            "dup_blocks": self.dup_blocks,
            "dup_instructions": self.dup_instructions,
            "dup_residency": self.dup_residency,
            "loops": self.loops,
            "max_checks_per_iteration": self.max_checks_per_iteration,
            # Derived coefficients ride along so archived manifests and
            # ``repro plan --diff`` can attribute a miss to a function
            # without re-deriving the transform.
            "checks_per_entry": self.checks_per_entry,
            "checks_per_backedge": self.checks_per_backedge,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FunctionCostBound":
        return cls(**{f: payload[f] for f in cls.__dataclass_fields__})


@dataclass(frozen=True)
class CostCertificate:
    """Program-level cost certificate (JSON-able, manifest-embeddable)."""

    label: str
    strategy: str
    checks_per_entry: int
    checks_per_backedge: int
    functions: List[FunctionCostBound] = field(default_factory=list)
    version: int = CERTIFICATE_VERSION

    # -- totals ----------------------------------------------------------

    def total(self, field_name: str) -> int:
        return sum(getattr(f, field_name) for f in self.functions)

    @property
    def static_checks(self) -> int:
        return self.total("static_checks")

    @property
    def guarded_sites(self) -> int:
        return self.total("guarded_sites")

    @property
    def max_checks_per_iteration(self) -> int:
        return max(
            (f.max_checks_per_iteration for f in self.functions), default=0
        )

    @property
    def max_dup_residency(self) -> Optional[int]:
        """Largest per-sample duplicated-code residency, or None when
        any function's duplicate is cyclic (no static bound)."""
        worst = 0
        for f in self.functions:
            if f.dup_blocks == 0:
                continue
            if f.dup_residency is None:
                return None
            worst = max(worst, f.dup_residency)
        return worst

    @property
    def formula(self) -> str:
        return (
            f"checks_executed <= {self.checks_per_entry}*(calls + "
            f"threads_spawned + 1) + {self.checks_per_backedge}*"
            f"(backward_jumps + checks_taken)"
        )

    def function_bound(self, name: str) -> Optional[FunctionCostBound]:
        for f in self.functions:
            if f.function == name:
                return f
        return None

    def function_bounds_against(
        self, stats: Union[Mapping[str, Any], Any]
    ) -> Dict[str, int]:
        """Per-function certified bounds over one run's counters —
        the reference the plan reconciler checks measured per-function
        check counts against."""
        return {
            f.function: f.bound_against(stats) for f in self.functions
        }

    # -- dynamic validation ----------------------------------------------

    def bound_against(self, stats: Union[Mapping[str, Any], Any]) -> int:
        """Evaluate the certified upper bound over one run's counters.

        *stats* may be an :class:`~repro.vm.tracing.ExecStats` or its
        ``as_dict()`` form (manifests store the latter).
        """
        entries = (
            _stat(stats, "calls") + _stat(stats, "threads_spawned") + 1
        )
        backedges = (
            _stat(stats, "backward_jumps") + _stat(stats, "checks_taken")
        )
        return (
            self.checks_per_entry * entries
            + self.checks_per_backedge * backedges
        )

    def violations(self, stats: Union[Mapping[str, Any], Any]) -> List[str]:
        """Every way *stats* contradicts this certificate (empty = ok)."""
        problems: List[str] = []
        observed = _stat(stats, "checks_executed")
        bound = self.bound_against(stats)
        if observed > bound:
            problems.append(
                f"checks_executed {observed} exceeds the static bound "
                f"{bound} ({self.formula})"
            )
        if self.guarded_sites == 0:
            guarded = _stat(stats, "guarded_checks_executed")
            if guarded > 0:
                problems.append(
                    f"guarded_checks_executed {guarded} but the "
                    "certificate records no GUARDED_INSTR sites"
                )
        return problems

    # -- serialization ---------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "label": self.label,
            "strategy": self.strategy,
            "checks_per_entry": self.checks_per_entry,
            "checks_per_backedge": self.checks_per_backedge,
            "formula": self.formula,
            "static_checks": self.static_checks,
            "guarded_sites": self.guarded_sites,
            "max_checks_per_iteration": self.max_checks_per_iteration,
            "max_dup_residency": self.max_dup_residency,
            "functions": [f.as_dict() for f in self.functions],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CostCertificate":
        try:
            return cls(
                label=payload["label"],
                strategy=payload["strategy"],
                checks_per_entry=payload["checks_per_entry"],
                checks_per_backedge=payload["checks_per_backedge"],
                functions=[
                    FunctionCostBound.from_dict(f)
                    for f in payload.get("functions", [])
                ],
                version=payload.get("version", CERTIFICATE_VERSION),
            )
        except (KeyError, TypeError) as exc:
            raise AnalysisError(
                f"malformed cost certificate: {exc}"
            ) from None


# ---------------------------------------------------------------------------
# derivation


def function_cost_bound(ctx: AuditContext) -> FunctionCostBound:
    """Derive the static cost facts for one audited function."""
    kinds = ctx.classification
    entry_checks = sum(
        1 for k in kinds.values() if k == CheckKind.ENTRY
    )
    backedge_checks = sum(
        1 for k in kinds.values() if k == CheckKind.BACKEDGE
    )
    residual_checks = sum(
        1 for k in kinds.values() if k == CheckKind.RESIDUAL
    )
    guarded = instr = 0
    for bid in ctx.reachable:
        for ins in ctx.cfg.block(bid).instructions:
            if ins.op == Op.GUARDED_INSTR:
                guarded += 1
            elif ins.op == Op.INSTR:
                instr += 1
    return FunctionCostBound(
        function=ctx.fn.name,
        strategy=ctx.strategy,
        static_checks=len(ctx.check_bids),
        entry_checks=entry_checks,
        backedge_checks=backedge_checks,
        residual_checks=residual_checks,
        guarded_sites=guarded,
        instr_sites=instr,
        checking_blocks=len(ctx.checking),
        dup_blocks=len(ctx.duplicated),
        dup_instructions=sum(
            len(ctx.cfg.block(bid).instructions) for bid in ctx.duplicated
        ),
        dup_residency=_dup_residency(ctx),
        loops=len(ctx.projection_loops),
        max_checks_per_iteration=_max_checks_per_iteration(ctx),
    )


def _dup_residency(ctx: AuditContext) -> Optional[int]:
    """Longest instruction-weighted path through the duplicated code.

    A block's weight is its body length plus one for the terminator
    (which the VM also executes). Returns None when the duplicated
    subgraph is cyclic — then no acyclic-pass bound exists and AUD003
    (or the counted-backedges exemption) governs instead.
    """
    dup = ctx.duplicated
    if not dup:
        return 0
    succs: Dict[int, List[int]] = {
        bid: [s for s in ctx.cfg.block(bid).successors() if s in dup]
        for bid in dup
    }
    indegree = {bid: 0 for bid in dup}
    for bid in dup:
        for succ in succs[bid]:
            indegree[succ] += 1
    order: List[int] = []
    ready = sorted(bid for bid, deg in indegree.items() if deg == 0)
    while ready:
        bid = ready.pop()
        order.append(bid)
        for succ in succs[bid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(dup):
        return None  # cyclic
    weight = {
        bid: len(ctx.cfg.block(bid).instructions) + 1 for bid in dup
    }
    longest: Dict[int, int] = {}
    for bid in reversed(order):
        tail = max((longest[s] for s in succs[bid]), default=0)
        longest[bid] = weight[bid] + tail
    return max(longest.values(), default=0)


def _max_checks_per_iteration(ctx: AuditContext) -> int:
    """Max checks charged per iteration of any checking-code loop.

    For each natural loop of the checking projection, count the check
    blocks in its body that are not inside a strictly nested inner
    loop (those charge the inner loop's iterations, not this one's).
    """
    loops = ctx.projection_loops
    if not loops:
        return 0
    check_set = set(ctx.checking_check_bids)
    worst = 0
    for loop in loops:
        inner: set = set()
        for other in loops:
            if other.header != loop.header and other.body <= loop.body:
                inner |= other.body
        count = sum(
            1 for bid in loop.body - inner if bid in check_set
        )
        worst = max(worst, count)
    return worst


def build_certificate(
    label: str, strategy: str, contexts: List[AuditContext]
) -> CostCertificate:
    """Assemble the program-level certificate from per-function facts."""
    functions = [function_cost_bound(ctx) for ctx in contexts]
    has_entry = any(
        f.entry_checks > 0 or f.residual_checks > 0 for f in functions
    )
    has_backedge = any(
        f.backedge_checks > 0 or f.residual_checks > 0 for f in functions
    )
    return CostCertificate(
        label=label,
        strategy=strategy,
        checks_per_entry=1 if has_entry else 0,
        checks_per_backedge=1 if has_backedge else 0,
        functions=functions,
    )
