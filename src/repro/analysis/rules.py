"""Rule registry and suppression handling for the static auditor.

Rules register themselves with the :func:`rule` decorator, declaring an
id (``AUDnnn`` for invariant certifiers, ``LNTnnn`` for general lints),
a default severity, and the set of strategies they apply to (None means
every strategy). The auditor runs every applicable rule over an
:class:`~repro.analysis.context.AuditContext` and collects
:class:`~repro.analysis.findings.Finding` objects.

Suppressions are strings of the form ``RULE`` (suppress everywhere) or
``RULE@function`` (suppress in one function), comma-separated on the
command line: ``repro lint --suppress LNT001,AUD007@main``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.context import AuditContext
from repro.analysis.findings import Finding, Severity
from repro.errors import AnalysisError

#: Checker signature: (rule, context) -> findings.
Checker = Callable[["Rule", AuditContext], List[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered auditor rule."""

    rule_id: str
    severity: Severity
    title: str
    strategies: Optional[FrozenSet[str]]
    checker: Checker

    def applies_to(self, strategy: str) -> bool:
        return self.strategies is None or strategy in self.strategies

    def finding(
        self, ctx: AuditContext, message: str, block: Optional[int] = None
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            function=ctx.fn.name,
            message=message,
            block=block,
        )


#: Program-level checker signature: (rule, program) -> findings. These
#: rules see the whole :class:`~repro.bytecode.program.Program` (call
#: graph facts, cross-function structure) rather than one function's
#: AuditContext.
ProgramChecker = Callable[["ProgramRule", Any], List[Finding]]


@dataclass(frozen=True)
class ProgramRule:
    """One registered whole-program auditor rule."""

    rule_id: str
    severity: Severity
    title: str
    checker: ProgramChecker

    def finding(
        self, function: str, message: str, block: Optional[int] = None
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            function=function,
            message=message,
            block=block,
        )


_REGISTRY: Dict[str, Rule] = {}
_PROGRAM_REGISTRY: Dict[str, ProgramRule] = {}


def rule(
    rule_id: str,
    severity: Severity,
    title: str,
    strategies: Optional[Iterable[str]] = None,
) -> Callable[[Checker], Checker]:
    """Register a checker function as an auditor rule."""

    def register(checker: Checker) -> Checker:
        if rule_id in _REGISTRY:
            raise AnalysisError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            severity=severity,
            title=title,
            strategies=frozenset(strategies) if strategies is not None else None,
            checker=checker,
        )
        return checker

    return register


def program_rule(
    rule_id: str,
    severity: Severity,
    title: str,
) -> Callable[[ProgramChecker], ProgramChecker]:
    """Register a checker that audits a whole program."""

    def register(checker: ProgramChecker) -> ProgramChecker:
        if rule_id in _REGISTRY or rule_id in _PROGRAM_REGISTRY:
            raise AnalysisError(f"duplicate rule id {rule_id!r}")
        _PROGRAM_REGISTRY[rule_id] = ProgramRule(
            rule_id=rule_id,
            severity=severity,
            title=title,
            checker=checker,
        )
        return checker

    return register


def _ensure_rules_loaded() -> None:
    # Rule modules register on import; importing here (not at module
    # top) avoids a cycle, since they import this registry.
    from repro.analysis import invariants, lints  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule id {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def run_rules(
    ctx: AuditContext, rule_ids: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run rules applicable to *ctx*'s strategy; deterministic order."""
    if rule_ids is None:
        selected = all_rules()
    else:
        selected = [get_rule(rid) for rid in rule_ids]
    findings: List[Finding] = []
    for r in selected:
        if r.applies_to(ctx.strategy):
            findings.extend(r.checker(r, ctx))
    return findings


def all_program_rules() -> List[ProgramRule]:
    """Every registered whole-program rule, ordered by id."""
    _ensure_rules_loaded()
    return [_PROGRAM_REGISTRY[rid] for rid in sorted(_PROGRAM_REGISTRY)]


def run_program_rules(program) -> List[Finding]:
    """Run every whole-program rule over *program*; deterministic order."""
    findings: List[Finding] = []
    for r in all_program_rules():
        findings.extend(r.checker(r, program))
    return findings


@dataclass(frozen=True)
class Suppressions:
    """Parsed ``--suppress`` patterns: rule ids, optionally per-function."""

    #: rule ids suppressed everywhere
    global_rules: FrozenSet[str] = frozenset()
    #: (rule id, function name) pairs suppressed in one function
    scoped: FrozenSet[Tuple[str, str]] = frozenset()

    @classmethod
    def parse(cls, text: Optional[str]) -> "Suppressions":
        """Parse ``"AUD001,LNT002@main"`` into a suppression set."""
        if not text:
            return cls()
        global_rules: Set[str] = set()
        scoped: Set[Tuple[str, str]] = set()
        for raw in text.split(","):
            token = raw.strip()
            if not token:
                continue
            if "@" in token:
                rid, _, fn = token.partition("@")
                rid, fn = rid.strip(), fn.strip()
                if not rid or not fn:
                    raise AnalysisError(
                        f"bad suppression {token!r}; use RULE or RULE@function"
                    )
                scoped.add((rid, fn))
            else:
                global_rules.add(token)
        return cls(frozenset(global_rules), frozenset(scoped))

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule_id in self.global_rules
            or (finding.rule_id, finding.function) in self.scoped
        )

    def apply(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], int]:
        """(kept findings, suppressed count)."""
        kept: List[Finding] = []
        dropped = 0
        for finding in findings:
            if self.matches(finding):
                dropped += 1
            else:
                kept.append(finding)
        return kept, dropped
