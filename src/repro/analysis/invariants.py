"""Invariant certifier rules: the structure that implies Property 1.

Each rule certifies one clause of the paper's static argument (§2–§3.2)
on a transformed function's decoded CFG:

========  ==================================================================
AUD001    checking-code purity — no INSTR/GUARDED_INSTR reachable when no
          check fires (decided by the instrumentation-reachability
          dataflow analysis over the checking projection)
AUD002    every check's taken target lies in duplicated code
AUD003    duplicated code is acyclic (backedges redirected out)
AUD004    every check is chargeable: entry-placed or immediately followed
          by a counted backward jump on its not-taken path
AUD005    check coverage matches the strategy's promise: entry and/or
          every loop backedge of the checking code is guarded
AUD006    trampolines entered from duplicated code have empty bodies
          (Full-Duplication, where every dup backedge lands on one)
AUD007    Partial-Duplication left a prunable non-empty top-/bottom-node
AUD008    No-Duplication output carries no CHECKs and no raw INSTRs
========  ==================================================================

AUD003 is skipped under counted backedges (``sample_iterations > 1``):
the burst counter deliberately closes bounded cycles inside duplicated
code, so the acyclic-pass property is traded for a counter bound and the
cost certificate reports no duplicated-code residency.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.context import (
    CHECKED_STRATEGIES,
    CHECKS_ONLY_BACKEDGE,
    CHECKS_ONLY_ENTRY,
    DUPLICATING_STRATEGIES,
    FULL_DUPLICATION,
    NO_DUPLICATION,
    PARTIAL_DUPLICATION,
    AuditContext,
    CheckKind,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, rule
from repro.bytecode.opcodes import Op
from repro.cfg.basic_block import CheckBranch
from repro.cfg.dataflow import InstrumentationReachability, solve


@rule(
    "AUD001",
    Severity.ERROR,
    "checking-code purity",
    strategies=CHECKED_STRATEGIES,
)
def checking_code_purity(r: Rule, ctx: AuditContext) -> List[Finding]:
    """No instrumentation may execute unless a check transfers control
    into duplicated code — the framework's zero-cost-when-not-sampling
    claim. Decided by the forward may-analysis over the checking
    projection; findings name the offending blocks."""
    proj = ctx.projection
    in_facts, out_facts = solve(InstrumentationReachability(), proj)
    reachable_sites: Set[str] = set()
    for bid in ctx.checking:
        reachable_sites |= out_facts[bid]
    if not reachable_sites:
        return []
    findings = [
        r.finding(
            ctx,
            "checking code contains instrumentation "
            "(reachable with no check taken)",
            block=bid,
        )
        for bid in ctx.instrumented_checking_blocks()
    ]
    if not findings:  # pragma: no cover - the scans agree by construction
        findings.append(
            r.finding(
                ctx,
                f"instrumentation reachable in checking code: "
                f"{sorted(reachable_sites)}",
            )
        )
    return findings


@rule(
    "AUD002",
    Severity.ERROR,
    "checks must target duplicated code",
    strategies=DUPLICATING_STRATEGIES,
)
def check_targets_duplicated_code(
    r: Rule, ctx: AuditContext
) -> List[Finding]:
    """A taken check must transfer into duplicated code; a check whose
    taken edge stays in checking code samples nothing and (worse) may
    re-run checking paths. Checks-only strategies are exempt: their
    checks deliberately fall back into checking code (there is no
    duplicate to enter)."""
    findings = []
    for bid in ctx.checking_check_bids:
        taken = ctx.cfg.block(bid).terminator.taken
        if taken in ctx.checking:
            findings.append(
                r.finding(
                    ctx,
                    f"check targets checking code B{taken}",
                    block=bid,
                )
            )
    return findings


@rule(
    "AUD003",
    Severity.ERROR,
    "duplicated code must be acyclic",
    strategies=DUPLICATING_STRATEGIES,
)
def duplicated_code_acyclic(r: Rule, ctx: AuditContext) -> List[Finding]:
    """Duplicated-code backedges must have been redirected to checking
    code, so one sample executes at most one acyclic pass (§2). Kahn's
    algorithm over the duplicated subgraph; any leftover is a cycle."""
    if ctx.sample_iterations > 1:
        # Counted backedges close bounded cycles on purpose.
        return []
    dup = ctx.duplicated
    succs: Dict[int, List[int]] = {
        bid: [s for s in ctx.cfg.block(bid).successors() if s in dup]
        for bid in dup
    }
    indegree = {bid: 0 for bid in dup}
    for bid in dup:
        for succ in succs[bid]:
            indegree[succ] += 1
    ready = [bid for bid, deg in indegree.items() if deg == 0]
    visited: Set[int] = set()
    while ready:
        bid = ready.pop()
        visited.add(bid)
        for succ in succs[bid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    cyclic = sorted(dup - visited)
    if not cyclic:
        return []
    return [
        r.finding(
            ctx,
            f"duplicated code contains a cycle through "
            f"{', '.join(f'B{b}' for b in cyclic[:8])}"
            + ("…" if len(cyclic) > 8 else ""),
            block=cyclic[0],
        )
    ]


@rule(
    "AUD004",
    Severity.ERROR,
    "every check must be chargeable to an entry or backedge",
    strategies={FULL_DUPLICATION, CHECKS_ONLY_ENTRY, CHECKS_ONLY_BACKEDGE},
)
def checks_chargeable(r: Rule, ctx: AuditContext) -> List[Finding]:
    """Property 1's charging argument, block by block: each check is the
    function's entry block (paid by a CALL/SPAWN) or its not-taken
    continuation jumps backward before executing anything (paid by a
    backward jump, or by ``checks_taken`` when the sample fires).
    Partial-Duplication is exempt — its residual re-entry checks are
    covered by the §3.1 ≤-Full-Duplication argument instead."""
    findings = []
    for bid, kind in sorted(ctx.classification.items()):
        if kind == CheckKind.RESIDUAL:
            findings.append(
                r.finding(
                    ctx,
                    "check is neither entry-placed nor followed by a "
                    "backward jump (uncharged under Property 1)",
                    block=bid,
                )
            )
    return findings


@rule(
    "AUD005",
    Severity.ERROR,
    "check coverage must match the strategy's placement promise",
    strategies={FULL_DUPLICATION, CHECKS_ONLY_ENTRY, CHECKS_ONLY_BACKEDGE},
)
def check_coverage(r: Rule, ctx: AuditContext) -> List[Finding]:
    """Checks must sit exactly where the strategy promises: at the
    method entry (full duplication, checks-only-entry) and on every
    loop backedge of the checking code (full duplication,
    checks-only-backedge). An unguarded backedge means iterations that
    can never be sampled; a missing entry check means calls that can
    never be sampled.

    The obligation is over *loop* backedges (dominator-based, the
    notion the transforms place trampolines on), not over every
    pc-retreating edge: the linearizer also lays loop-free forward
    flow at retreating pcs, and those edges legitimately carry no
    check. A backedge counts as guarded when it lies on some check's
    not-taken free chain — the check then fires on every traversal."""
    findings = []
    kinds = ctx.classification
    wants_entry = ctx.strategy in (FULL_DUPLICATION, CHECKS_ONLY_ENTRY)
    wants_backedges = ctx.strategy in (
        FULL_DUPLICATION,
        CHECKS_ONLY_BACKEDGE,
    )
    if wants_entry and CheckKind.ENTRY not in kinds.values():
        findings.append(
            r.finding(
                ctx,
                "method entry carries no check",
                block=ctx.cfg.entry,
            )
        )
    if wants_backedges:
        guarded = {
            edge
            for bid in ctx.checking_check_bids
            for edge in ctx.check_chain_edges[bid]
        }
        for src, dst in ctx.projection_sampling_backedges:
            if (src, dst) not in guarded:
                findings.append(
                    r.finding(
                        ctx,
                        f"checking-code backedge B{src} -> B{dst} "
                        "carries no check",
                        block=src,
                    )
                )
    return findings


@rule(
    "AUD006",
    Severity.ERROR,
    "trampolines entered from duplicated code must be empty",
    strategies={FULL_DUPLICATION},
)
def check_blocks_empty(r: Rule, ctx: AuditContext) -> List[Finding]:
    """A trampoline that duplicated code returns through (the landing
    pad of a redirected dup backedge) must be pure control flow: a
    jump always enters the block at its start, so any body there
    re-executes on every sample's return, outside both the checking
    code's checks-only accounting and the duplicate's acyclic pass.
    Under Full-Duplication every dup backedge lands on such a
    trampoline, so the rule is exact there.

    Everything else is exempt for structural reasons, not leniency:
    trampolines reached purely by checking-code fallthrough may
    legally absorb their predecessor's body at linearization (the
    block then reads "predecessor code; CHECK" — ordinary checking
    code ahead of the check), and Partial-Duplication's pruned
    bottom-nodes legally redirect dup exits into the *checking
    counterpart* of the pruned block, entering real checking code that
    may itself end in a merged trampoline. The checks-only strategies'
    well-formedness is exactly the AUD004 chargeability walk."""
    findings = []
    dup = ctx.duplicated
    for bid in ctx.check_bids:
        block = ctx.cfg.block(bid)
        if not block.instructions:
            continue
        if any(pred in dup for pred in ctx.predecessors.get(bid, ())):
            findings.append(
                r.finding(
                    ctx,
                    f"check block carries {len(block.instructions)} "
                    "body instruction(s) but is entered from "
                    "duplicated code; trampolines must be empty",
                    block=bid,
                )
            )
    return findings


@rule(
    "AUD007",
    Severity.WARNING,
    "prunable top-/bottom-node left in duplicated code",
    strategies={PARTIAL_DUPLICATION},
)
def partial_pruning_complete(r: Rule, ctx: AuditContext) -> List[Finding]:
    """Partial-Duplication's fixpoint legality check, recomputed on the
    final CFG: no duplicated block with a body should remain that is
    (a) unable to reach instrumentation (bottom-node) or (b) unreached
    by any instrumented ancestor within the duplicated DAG (top-node).
    Either means the transform kept code §3.1 says it could delete.
    Empty connector blocks (bare gotos the pruning rewires exits
    through) are ignored — they cost nothing and are a layout artifact
    of edge redirection, not retained work."""
    dup = ctx.duplicated
    if not dup:
        return []
    # Duplicated-code DAG edges (dup-internal only; edges back into
    # checking code are the redirected backedges / exits).
    succs: Dict[int, List[int]] = {
        bid: [s for s in ctx.cfg.block(bid).successors() if s in dup]
        for bid in dup
    }
    instrumented = {
        bid for bid in dup if ctx.cfg.block(bid).has_instrumentation()
    }
    # Bottom-nodes: cannot reach an instrumented block.
    reaches: Set[int] = set(instrumented)
    preds: Dict[int, List[int]] = {bid: [] for bid in dup}
    for bid, ss in succs.items():
        for s in ss:
            preds[s].append(bid)
    stack = list(instrumented)
    while stack:
        bid = stack.pop()
        for pred in preds[bid]:
            if pred not in reaches:
                reaches.add(pred)
                stack.append(pred)
    # Top-nodes: no instrumented block above them in the DAG.
    below: Set[int] = set(instrumented)
    stack = list(instrumented)
    while stack:
        bid = stack.pop()
        for succ in succs[bid]:
            if succ not in below:
                below.add(succ)
                stack.append(succ)
    nonempty = {bid for bid in dup if ctx.cfg.block(bid).instructions}
    bottoms = (dup - reaches) & nonempty
    tops = (dup - below - bottoms) & nonempty
    findings = []
    for bid in sorted(bottoms):
        findings.append(
            r.finding(
                ctx,
                "duplicated block cannot reach instrumentation "
                "(prunable bottom-node)",
                block=bid,
            )
        )
    for bid in sorted(tops):
        findings.append(
            r.finding(
                ctx,
                "duplicated block has no instrumented ancestor "
                "(prunable top-node)",
                block=bid,
            )
        )
    return findings


@rule(
    "AUD008",
    Severity.ERROR,
    "no-duplication output must guard every instrumentation op",
    strategies={NO_DUPLICATION},
)
def no_duplication_guarded(r: Rule, ctx: AuditContext) -> List[Finding]:
    """§3.2 replaces every INSTR with a GUARDED_INSTR poll and inserts
    no checks at all; a leftover CHECK or raw INSTR means the transform
    mislabeled its output (and the 0-check cost bound would be wrong)."""
    findings = []
    for bid in sorted(ctx.reachable):
        block = ctx.cfg.block(bid)
        if isinstance(block.terminator, CheckBranch):
            findings.append(
                r.finding(
                    ctx,
                    "no-duplication output contains a CHECK",
                    block=bid,
                )
            )
        for ins in block.instructions:
            if ins.op == Op.INSTR:
                findings.append(
                    r.finding(
                        ctx,
                        "raw INSTR survived no-duplication "
                        "(must be GUARDED_INSTR)",
                        block=bid,
                    )
                )
                break
    return findings
