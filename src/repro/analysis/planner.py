"""Static strategy planner: per-function instrumentation strategies
chosen before the first run.

The paper picks one cost-control strategy for the whole program; the
planner instead consumes the interprocedural cost analysis
(:mod:`repro.analysis.interproc`) and assigns each function the
cheapest strategy that fits a budget:

* *no-duplication* for functions the call graph proves unreachable
  (LNT004's fact — zero predicted activations, so duplicated bodies
  would be pure code growth) and wherever guarded instrumentation is
  predicted cheaper than check placement;
* *partial-duplication* when it ties full-duplication's predicted
  check executions with less duplicated code;
* *full-duplication* where entry/backedge checks are the cheapest way
  to sample a hot loop nest.

Predictions are per-candidate and exact about placement: each function
is actually transformed under each candidate strategy and the
candidate's own checking projection is re-analysed for trip counts, so
the predicted polynomial counts the check/guard sites the candidate
really emits, weighted by their loop-nest frequency.

The resulting :class:`StrategyPlan` is a JSON artifact (per-function
strategy, predicted cpe/cpb, predicted cost polynomial, rationale and
rule citations) and a runnable configuration: ``StrategyPlan.key()``
feeds ``RunSpec.plan`` / ``ExperimentRunner(plan=...)``, which applies
the whole mix in one run via
:func:`repro.sampling.framework.transform_planned`; the plan reconciler
(:func:`repro.analysis.reconcile.reconcile_plan`) then holds the run to
each function's *certified* bound — predictions rank, certificates
enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.context import (
    AuditContext,
    FULL_DUPLICATION,
    NO_DUPLICATION,
    PARTIAL_DUPLICATION,
)
from repro.analysis.cost import function_cost_bound
from repro.analysis.interproc import (
    CostPoly,
    FunctionLoopInfo,
    ProgramAnalysis,
    analyze_program,
)
from repro.bytecode.opcodes import Op
from repro.errors import AnalysisError

#: Candidate strategies, in tie-break preference order (least code
#: growth first). Checks-only strategies drop the instrumentation and
#: exhaustive defeats sampling, so neither is plannable.
CANDIDATE_STRATEGIES: Tuple[str, ...] = (
    NO_DUPLICATION,
    PARTIAL_DUPLICATION,
    FULL_DUPLICATION,
)

#: Nominal workload scale the cost polynomials are evaluated at when a
#: scalar ranking is needed.
NOMINAL_SCALE = 64.0


@dataclass(frozen=True)
class PlanBudget:
    """One planning budget: how to trade predicted dynamic cost
    against static code growth.

    ``size_weight`` prices one extra emitted instruction in units of
    predicted check-site executions — 0 ranks candidates purely by
    predicted dynamic cost, larger values push cold and near-tied
    functions toward the smaller-code strategies.
    """

    name: str
    description: str
    size_weight: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "size_weight": self.size_weight,
        }


#: The named budget presets ``repro plan --budget`` accepts.
BUDGETS: Dict[str, PlanBudget] = {
    "strict": PlanBudget(
        "strict",
        "minimum predicted overhead; code growth only breaks exact ties",
        size_weight=0.0,
    ),
    "default": PlanBudget(
        "default",
        "predicted overhead first; near-ties resolve to smaller code",
        size_weight=0.05,
    ),
    "relaxed": PlanBudget(
        "relaxed",
        "tolerate predicted overhead to keep duplicated code small",
        size_weight=2.0,
    ),
}


def resolve_budget(budget: Any) -> PlanBudget:
    if isinstance(budget, PlanBudget):
        return budget
    try:
        return BUDGETS[str(budget)]
    except KeyError:
        raise AnalysisError(
            f"unknown plan budget {budget!r}; choose from "
            f"{sorted(BUDGETS)}"
        ) from None


@dataclass(frozen=True)
class CandidateCost:
    """Predicted facts for one (function, strategy) candidate."""

    strategy: str
    checks: CostPoly  # check executions per activation
    guards: CostPoly  # guarded-instrumentation polls per activation
    cost: float  # (checks+guards) * activations, evaluated at scale
    score: float  # cost + size_weight * extra instructions
    instructions: int
    extra_instructions: int
    predicted_cpe: int
    predicted_cpb: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "checks": self.checks.as_dict(),
            "guards": self.guards.as_dict(),
            "cost": self.cost,
            "score": self.score,
            "instructions": self.instructions,
            "extra_instructions": self.extra_instructions,
            "predicted_cpe": self.predicted_cpe,
            "predicted_cpb": self.predicted_cpb,
        }


@dataclass(frozen=True)
class FunctionPlan:
    """The planner's decision for one function."""

    function: str
    strategy: str
    predicted_cpe: int
    predicted_cpb: int
    predicted_cost: float
    checks: CostPoly
    activations: CostPoly
    code_growth: float
    rationale: str
    rules: Tuple[str, ...] = ()
    candidates: Tuple[CandidateCost, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "strategy": self.strategy,
            "predicted_cpe": self.predicted_cpe,
            "predicted_cpb": self.predicted_cpb,
            "predicted_cost": self.predicted_cost,
            "checks": self.checks.as_dict(),
            "activations": self.activations.as_dict(),
            "code_growth": self.code_growth,
            "rationale": self.rationale,
            "rules": list(self.rules),
            "candidates": [c.as_dict() for c in self.candidates],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FunctionPlan":
        return cls(
            function=payload["function"],
            strategy=payload["strategy"],
            predicted_cpe=payload["predicted_cpe"],
            predicted_cpb=payload["predicted_cpb"],
            predicted_cost=payload["predicted_cost"],
            checks=CostPoly.from_dict(payload.get("checks", {})),
            activations=CostPoly.from_dict(payload.get("activations", {})),
            code_growth=payload.get("code_growth", 1.0),
            rationale=payload.get("rationale", ""),
            rules=tuple(payload.get("rules", ())),
            candidates=tuple(
                CandidateCost(
                    strategy=c["strategy"],
                    checks=CostPoly.from_dict(c.get("checks", {})),
                    guards=CostPoly.from_dict(c.get("guards", {})),
                    cost=c["cost"],
                    score=c["score"],
                    instructions=c["instructions"],
                    extra_instructions=c["extra_instructions"],
                    predicted_cpe=c["predicted_cpe"],
                    predicted_cpb=c["predicted_cpb"],
                )
                for c in payload.get("candidates", ())
            ),
        )


#: Schema stamp of the serialized plan artifact.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StrategyPlan:
    """A complete per-function strategy assignment for one program."""

    label: str
    budget: str
    default_strategy: str
    scale: float
    entries: Tuple[FunctionPlan, ...]
    interval: Optional[int] = None
    instrumentation: Tuple[str, ...] = ()
    unreachable: Tuple[str, ...] = ()

    # -- lookups ---------------------------------------------------------

    def entry_for(self, name: str) -> Optional[FunctionPlan]:
        for entry in self.entries:
            if entry.function == name:
                return entry
        return None

    def assignments(self) -> Dict[str, str]:
        return {e.function: e.strategy for e in self.entries}

    def key(self) -> Tuple[Tuple[str, str], ...]:
        """Hashable form for ``RunSpec.plan`` (sorted, deterministic)."""
        return tuple(
            sorted((e.function, e.strategy) for e in self.entries)
        )

    def strategy_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.strategy] = counts.get(entry.strategy, 0) + 1
        return counts

    def predicted_cost(self) -> float:
        return sum(e.predicted_cost for e in self.entries)

    # -- rendering -------------------------------------------------------

    def summary(self) -> str:
        counts = ", ".join(
            f"{count} {name}"
            for name, count in sorted(self.strategy_counts().items())
        )
        return (
            f"{self.label}: {len(self.entries)} function(s) planned "
            f"under budget {self.budget!r} ({counts}); predicted "
            f"{self.predicted_cost():g} check-site executions at "
            f"n={self.scale:g}"
        )

    def explain(self) -> str:
        lines = [self.summary()]
        for entry in self.entries:
            lines.append(
                f"  {entry.function}: {entry.strategy} "
                f"(cpe={entry.predicted_cpe}, cpb={entry.predicted_cpb}, "
                f"predicted {entry.predicted_cost:g}) — {entry.rationale}"
                + (f" [{', '.join(entry.rules)}]" if entry.rules else "")
            )
        if self.unreachable:
            lines.append(
                "  unreachable: " + ", ".join(self.unreachable)
            )
        return "\n".join(lines)

    def diff(self, other: "StrategyPlan") -> List[Dict[str, Any]]:
        """Per-function differences against *other* (the older plan)."""
        mine = {e.function: e for e in self.entries}
        theirs = {e.function: e for e in other.entries}
        changes: List[Dict[str, Any]] = []
        for name in sorted(set(mine) | set(theirs)):
            a, b = theirs.get(name), mine.get(name)
            if a is None or b is None or a.strategy != b.strategy:
                changes.append(
                    {
                        "function": name,
                        "before": a.strategy if a is not None else None,
                        "after": b.strategy if b is not None else None,
                        "predicted_cost_before": (
                            a.predicted_cost if a is not None else None
                        ),
                        "predicted_cost_after": (
                            b.predicted_cost if b is not None else None
                        ),
                    }
                )
        return changes

    # -- serialization ---------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "label": self.label,
            "budget": self.budget,
            "default_strategy": self.default_strategy,
            "scale": self.scale,
            "interval": self.interval,
            "instrumentation": list(self.instrumentation),
            "unreachable": list(self.unreachable),
            "strategies": self.strategy_counts(),
            "predicted_cost": self.predicted_cost(),
            "functions": [e.as_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StrategyPlan":
        return cls(
            label=payload["label"],
            budget=payload["budget"],
            default_strategy=payload["default_strategy"],
            scale=payload["scale"],
            interval=payload.get("interval"),
            instrumentation=tuple(payload.get("instrumentation", ())),
            unreachable=tuple(payload.get("unreachable", ())),
            entries=tuple(
                FunctionPlan.from_dict(e)
                for e in payload.get("functions", ())
            ),
        )


# ---------------------------------------------------------------------------
# candidate evaluation


def _guard_poly(ctx: AuditContext, info: FunctionLoopInfo) -> CostPoly:
    """Guarded-instrumentation polls per activation: every
    ``GUARDED_INSTR`` in checking code, weighted by its block's
    loop-nest frequency."""
    total = CostPoly.zero()
    for bid in sorted(ctx.checking):
        count = sum(
            1
            for ins in ctx.cfg.block(bid).instructions
            if ins.op == Op.GUARDED_INSTR
        )
        if count:
            total = total.add(info.block_weight(bid).scale(count))
    return total


def _check_poly(ctx: AuditContext, info: FunctionLoopInfo) -> CostPoly:
    """Check executions per activation: each check block's frequency in
    the candidate's own checking projection (checks execute on the
    not-taken path, so the projection's loop structure is the right
    weight; sample-taken detours add a bounded constant on top)."""
    total = CostPoly.zero()
    for bid in ctx.checking_check_bids:
        total = total.add(info.block_weight(bid))
    return total


def evaluate_candidate(
    fn,
    program,
    instrumentations,
    strategy: str,
    activations: CostPoly,
    scale: float,
    size_weight: float,
) -> CandidateCost:
    """Transform one function under one candidate strategy and predict
    its dynamic cost."""
    from repro.sampling.framework import SamplingFramework, Strategy

    framework = SamplingFramework(Strategy(strategy), verify=False)
    instr = SamplingFramework._normalize_instrumentation(instrumentations)
    transformed = framework.transform_function(fn.copy(), program, instr)
    ctx = AuditContext(transformed)
    info = FunctionLoopInfo.from_cfg(ctx.projection, fn.name, program)
    checks = _check_poly(ctx, info)
    guards = _guard_poly(ctx, info)
    cost = checks.add(guards).multiply(activations).evaluate(scale)
    extra = transformed.instruction_count() - fn.instruction_count()
    bound = function_cost_bound(ctx)
    return CandidateCost(
        strategy=strategy,
        checks=checks,
        guards=guards,
        cost=cost,
        score=cost + size_weight * max(0, extra),
        instructions=transformed.instruction_count(),
        extra_instructions=max(0, extra),
        predicted_cpe=bound.checks_per_entry,
        predicted_cpb=bound.checks_per_backedge,
    )


def _loop_facts(info: Optional[FunctionLoopInfo]) -> str:
    if info is None or not info.loops:
        return "no loops"
    counts = info.classify_counts()
    parts = [
        f"{counts[kind]} {kind}"
        for kind in ("constant", "parameter", "unknown")
        if counts[kind]
    ]
    return "loops: " + ", ".join(parts)


def plan_program(
    program,
    instrumentation: Tuple[str, ...] = ("call-edge",),
    budget: Any = "default",
    interval: Optional[int] = None,
    label: str = "plan",
    scale: float = NOMINAL_SCALE,
    analysis: Optional[ProgramAnalysis] = None,
) -> StrategyPlan:
    """Plan a per-function strategy assignment for *program*.

    *instrumentation* names the kinds the run will carry (the
    :mod:`repro.harness` registry); candidates are evaluated with fresh
    instances so planning never perturbs a live profile. *analysis* may
    supply a precomputed :func:`analyze_program` result.
    """
    from repro.harness.experiment import make_instrumentations

    resolved = resolve_budget(budget)
    if analysis is None:
        analysis = analyze_program(program)
    unreachable = frozenset(analysis.graph.unreachable())
    bodies = dict(program.functions)
    for name, template in program.loadables.items():
        bodies.setdefault(name, template)

    entries: List[FunctionPlan] = []
    for name in analysis.graph.nodes:
        fn = bodies[name]
        summary = analysis.summary(name)
        activations = (
            summary.activations if summary is not None else CostPoly.zero()
        )
        loop_info = analysis.loop_info.get(name)

        if name in unreachable and name in program.functions:
            # LNT004's fact: no call path from the entry, so duplicated
            # bodies and checks would be pure code growth.
            entries.append(
                FunctionPlan(
                    function=name,
                    strategy=NO_DUPLICATION,
                    predicted_cpe=0,
                    predicted_cpb=0,
                    predicted_cost=0.0,
                    checks=CostPoly.zero(),
                    activations=CostPoly.zero(),
                    code_growth=1.0,
                    rationale=(
                        "statically unreachable from "
                        f"{analysis.graph.entry!r}: zero predicted "
                        "activations, no-duplication avoids all code "
                        "growth"
                    ),
                    rules=("LNT004",),
                )
            )
            continue

        candidates = tuple(
            evaluate_candidate(
                fn,
                program,
                make_instrumentations(tuple(instrumentation)),
                strategy,
                activations,
                scale,
                resolved.size_weight,
            )
            for strategy in CANDIDATE_STRATEGIES
        )
        best = min(candidates, key=lambda c: c.score)
        runners = [c for c in candidates if c.strategy != best.strategy]
        runner_up = min(runners, key=lambda c: c.score)
        if runner_up.score > best.score:
            margin = (
                f"beats {runner_up.strategy} "
                f"({runner_up.cost:g} predicted)"
            )
        else:
            margin = (
                f"ties {runner_up.strategy}; smaller code "
                f"({best.extra_instructions} vs "
                f"{runner_up.extra_instructions} extra instruction(s))"
            )
        rationale = (
            f"predicted {best.cost:g} check-site execution(s) "
            f"[{best.checks.add(best.guards).describe()} per activation "
            f"x {activations.describe()} activation(s)]; {margin}; "
            f"{_loop_facts(loop_info)}"
        )
        rules: Tuple[str, ...] = ()
        if summary is not None and summary.recursive:
            rationale += "; recursive (widened)"
        before = fn.instruction_count()
        entries.append(
            FunctionPlan(
                function=name,
                strategy=best.strategy,
                predicted_cpe=best.predicted_cpe,
                predicted_cpb=best.predicted_cpb,
                predicted_cost=best.cost,
                checks=best.checks.add(best.guards),
                activations=activations,
                code_growth=(
                    best.instructions / before if before else 1.0
                ),
                rationale=rationale,
                rules=rules,
                candidates=candidates,
            )
        )

    return StrategyPlan(
        label=label,
        budget=resolved.name,
        default_strategy=FULL_DUPLICATION,
        scale=scale,
        interval=interval,
        instrumentation=tuple(instrumentation),
        unreachable=tuple(sorted(unreachable & set(program.functions))),
        entries=tuple(entries),
    )
