"""Structured findings emitted by the static auditor.

A :class:`Finding` is one rule violation (or observation) anchored to a
function and, usually, a block. Findings are plain frozen data so they
pickle across pool workers, serialize into manifests, and compare in
tests. Severities order as integers: a report "fails" when it contains
anything at :attr:`Severity.ERROR` or above (``repro lint --strict``
lowers the bar to :attr:`Severity.WARNING`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

#: Version stamp of the shared findings-document schema emitted by
#: ``repro lint --format json`` and ``repro audit --format json``
#: (:func:`findings_document`). CI parses exactly this shape.
FINDINGS_SCHEMA_VERSION = 1


class Severity(enum.IntEnum):
    """Finding severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            choices = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {name!r}; choose from {choices}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One structured result from an auditor rule."""

    rule_id: str
    severity: Severity
    function: str
    message: str
    block: Optional[int] = None

    def format(self) -> str:
        where = f" (B{self.block})" if self.block is not None else ""
        return (
            f"{self.rule_id} {self.severity.label} "
            f"{self.function}: {self.message}{where}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "function": self.function,
            "message": self.message,
            "block": self.block,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule_id=payload["rule_id"],
            severity=Severity.parse(payload["severity"]),
            function=payload["function"],
            message=payload["message"],
            block=payload.get("block"),
        )


# ---------------------------------------------------------------------------
# shared CLI/CI document schema
#
# ``repro lint`` and ``repro audit`` historically emitted differently
# shaped JSON; CI jobs now parse one schema for both. A *findings
# document* is::
#
#     {
#       "schema": 1,
#       "tool": "lint" | "audit" | "plan",
#       "ok": bool,                 # drives the process exit code
#       "strict": bool,
#       "errors": int, "warnings": int, "infos": int,
#       "findings": [Finding.as_dict(), ...],   # across all reports
#       "reports": [...],           # tool-specific payloads, in order
#     }


def tally(findings: Iterable[Finding]) -> Dict[str, int]:
    """Severity tallies over *findings* (keys: errors/warnings/infos)."""
    counts = {"errors": 0, "warnings": 0, "infos": 0}
    for finding in findings:
        if finding.severity >= Severity.ERROR:
            counts["errors"] += 1
        elif finding.severity >= Severity.WARNING:
            counts["warnings"] += 1
        else:
            counts["infos"] += 1
    return counts


def findings_ok(
    findings: Iterable[Finding],
    strict: bool = False,
    extra_failures: int = 0,
) -> bool:
    """The unified pass/fail bar: errors always fail; ``--strict``
    lowers the bar to any finding at all; *extra_failures* folds in
    tool-specific failures (reconcile violations, failed verdicts)."""
    counts = tally(findings)
    if extra_failures:
        return False
    if counts["errors"]:
        return False
    if strict and (counts["warnings"] or counts["infos"]):
        return False
    return True


def findings_document(
    tool: str,
    findings: Iterable[Finding],
    reports: Optional[List[Dict[str, Any]]] = None,
    strict: bool = False,
    extra_failures: int = 0,
) -> Dict[str, Any]:
    """Assemble the shared JSON document (see module schema comment).

    ``document["ok"]`` is exactly ``exit code == 0`` for the emitting
    command, so CI can gate on one field regardless of the tool.
    """
    listed = list(findings)
    document: Dict[str, Any] = {
        "schema": FINDINGS_SCHEMA_VERSION,
        "tool": tool,
        "strict": bool(strict),
        "ok": findings_ok(listed, strict, extra_failures),
        "findings": [f.as_dict() for f in listed],
        "reports": reports or [],
    }
    document.update(tally(listed))
    return document
