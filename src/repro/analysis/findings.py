"""Structured findings emitted by the static auditor.

A :class:`Finding` is one rule violation (or observation) anchored to a
function and, usually, a block. Findings are plain frozen data so they
pickle across pool workers, serialize into manifests, and compare in
tests. Severities order as integers: a report "fails" when it contains
anything at :attr:`Severity.ERROR` or above (``repro lint --strict``
lowers the bar to :attr:`Severity.WARNING`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional


class Severity(enum.IntEnum):
    """Finding severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            choices = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {name!r}; choose from {choices}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One structured result from an auditor rule."""

    rule_id: str
    severity: Severity
    function: str
    message: str
    block: Optional[int] = None

    def format(self) -> str:
        where = f" (B{self.block})" if self.block is not None else ""
        return (
            f"{self.rule_id} {self.severity.label} "
            f"{self.function}: {self.message}{where}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "function": self.function,
            "message": self.message,
            "block": self.block,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule_id=payload["rule_id"],
            severity=Severity.parse(payload["severity"]),
            function=payload["function"],
            message=payload["message"],
            block=payload.get("block"),
        )
