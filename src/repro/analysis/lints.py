"""General bytecode/CFG lints hosted by the auditor's rule framework.

Unlike the AUD invariant rules, these do not certify Property 1 — they
flag code-quality problems any strategy's output (or untransformed
bytecode) can exhibit. All are warnings: ``repro lint`` passes unless
``--strict`` is given.
"""

from __future__ import annotations

from typing import List

from repro.analysis.context import (
    CHECKS_ONLY_BACKEDGE,
    CHECKS_ONLY_ENTRY,
    AuditContext,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, rule
from repro.analysis.rules import ProgramRule, program_rule
from repro.bytecode.opcodes import PSEUDO_OPS, Op
from repro.cfg.basic_block import CheckBranch

#: Ops whose presence means the function pays instrumentation cost.
_COST_OPS = frozenset(PSEUDO_OPS - {Op.YIELDPOINT})


@rule("LNT001", Severity.WARNING, "unreachable blocks")
def unreachable_blocks(r: Rule, ctx: AuditContext) -> List[Finding]:
    """Linearized code should contain no blocks the entry cannot reach;
    dead blocks inflate code size (Table 3's space column) for nothing."""
    dead = sorted(set(ctx.cfg.blocks) - ctx.reachable)
    return [
        r.finding(ctx, "block is unreachable from the entry", block=bid)
        for bid in dead
    ]


@rule("LNT002", Severity.WARNING, "dead trampoline")
def dead_trampolines(r: Rule, ctx: AuditContext) -> List[Finding]:
    """An empty check block nothing jumps to is a trampoline whose edge
    was redirected away (e.g. by later passes) — pure code-size waste."""
    findings = []
    for bid in sorted(ctx.reachable):
        block = ctx.cfg.block(bid)
        if (
            isinstance(block.terminator, CheckBranch)
            and not block.instructions
            and bid != ctx.cfg.entry
            and not ctx.predecessors.get(bid)
        ):
            findings.append(
                r.finding(
                    ctx, "trampoline check has no predecessors", block=bid
                )
            )
    return findings


@rule("LNT003", Severity.WARNING, "degenerate check")
def degenerate_checks(r: Rule, ctx: AuditContext) -> List[Finding]:
    """A check whose taken target equals its fallthrough can never
    transfer anywhere else — all poll cost, no sampling. The checks-only
    strategies are exempt: their checks are *deliberately* degenerate
    (they measure check overhead with nothing to sample)."""
    if ctx.strategy in (CHECKS_ONLY_ENTRY, CHECKS_ONLY_BACKEDGE):
        return []
    findings = []
    for bid in ctx.check_bids:
        term = ctx.cfg.block(bid).terminator
        if term.taken == term.fallthrough:
            findings.append(
                r.finding(
                    ctx,
                    f"check's taken and not-taken targets are both "
                    f"B{term.taken}",
                    block=bid,
                )
            )
    return findings


@program_rule(
    "LNT004",
    Severity.WARNING,
    "unreachable function carries instrumentation cost",
)
def unreachable_instrumented_functions(
    r: ProgramRule, program
) -> List[Finding]:
    """A function the entry can never reach — not called, not spawned,
    not a LOADFN target, not a REPLACEFN template — that was still
    instrumented is pure space and transform-time waste: its checks can
    never execute, so duplicating it buys nothing. Detected over the
    interprocedural call graph (conservative open-table edges keep
    dynamic workloads out of this lint); fires only when the dead
    function actually carries CHECK/INSTR/GUARDED_INSTR sites, so
    untransformed programs stay clean."""
    from repro.analysis.interproc import unreachable_functions

    findings = []
    for name in unreachable_functions(program):
        fn = program.function(name)
        if any(ins.op in _COST_OPS for ins in fn.code):
            findings.append(
                r.finding(
                    name,
                    "function is unreachable from "
                    f"{program.entry!r} (no call/spawn/load/replace "
                    "path) but carries instrumentation; plan it as "
                    "no-duplication or drop the dead code",
                )
            )
    return findings
