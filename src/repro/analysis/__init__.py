"""Static analysis of transformed programs: invariant certification,
cost-bound certificates, lints, and static↔dynamic reconciliation.

The auditor proves, per function, the structural facts the paper's
Property 1 rests on (checking-code purity, backedge redirection, check
placement, trampoline well-formedness), derives a machine-checkable
upper bound on dynamic check counts, and — through the reconciler —
fails any run whose observed counters exceed the certified bound.

Entry points:

* :func:`audit_program` / :func:`audit_function` — run the rule catalog.
* :func:`build_certificate` — the static cost bound (usually taken from
  the :class:`AuditReport` returned by :func:`audit_program`).
* :func:`reconcile` / :func:`reconcile_manifest` — validate dynamic
  ExecStats against a certificate; :func:`reconcile_stream` — validate
  a (compacted) telemetry stream against the run's counters.
* ``repro lint`` / ``repro audit`` — the CLI surfaces (see
  docs/ANALYSIS.md for the rule catalog and suppression syntax).
"""

from repro.analysis.auditor import (
    STRATEGY_MISMATCH_RULE,
    AuditReport,
    IncrementalCertifier,
    audit_function,
    audit_program,
)
from repro.analysis.context import AuditContext, checking_projection
from repro.analysis.cost import (
    CostCertificate,
    FunctionCostBound,
    build_certificate,
    function_cost_bound,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reconcile import (
    ReconcileVerdict,
    reconcile,
    reconcile_manifest,
    reconcile_profile,
    reconcile_stream,
)
from repro.analysis.rules import (
    Rule,
    Suppressions,
    all_rules,
    get_rule,
    run_rules,
)

__all__ = [
    "AuditContext",
    "AuditReport",
    "CostCertificate",
    "Finding",
    "FunctionCostBound",
    "IncrementalCertifier",
    "ReconcileVerdict",
    "Rule",
    "Severity",
    "Suppressions",
    "STRATEGY_MISMATCH_RULE",
    "all_rules",
    "audit_function",
    "audit_program",
    "build_certificate",
    "checking_projection",
    "function_cost_bound",
    "get_rule",
    "reconcile",
    "reconcile_manifest",
    "reconcile_profile",
    "reconcile_stream",
    "run_rules",
]
