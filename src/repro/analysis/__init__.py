"""Static analysis of transformed programs: invariant certification,
cost-bound certificates, lints, and static↔dynamic reconciliation.

The auditor proves, per function, the structural facts the paper's
Property 1 rests on (checking-code purity, backedge redirection, check
placement, trampoline well-formedness), derives a machine-checkable
upper bound on dynamic check counts, and — through the reconciler —
fails any run whose observed counters exceed the certified bound.

Entry points:

* :func:`audit_program` / :func:`audit_function` — run the rule catalog.
* :func:`build_certificate` — the static cost bound (usually taken from
  the :class:`AuditReport` returned by :func:`audit_program`).
* :func:`reconcile` / :func:`reconcile_manifest` — validate dynamic
  ExecStats against a certificate; :func:`reconcile_stream` — validate
  a (compacted) telemetry stream against the run's counters.
* :func:`analyze_program` — interprocedural cost analysis (call graph,
  trip counts, summary polynomials); :func:`plan_program` — the static
  strategy planner built on it; :func:`reconcile_plan` — per-function
  validation of a planned run.
* ``repro lint`` / ``repro audit`` / ``repro plan`` — the CLI surfaces
  (see docs/ANALYSIS.md for the rule catalog and suppression syntax).
"""

from repro.analysis.auditor import (
    STRATEGY_MISMATCH_RULE,
    AuditReport,
    IncrementalCertifier,
    audit_function,
    audit_program,
)
from repro.analysis.context import AuditContext, checking_projection
from repro.analysis.cost import (
    CostCertificate,
    FunctionCostBound,
    build_certificate,
    function_cost_bound,
)
from repro.analysis.findings import (
    FINDINGS_SCHEMA_VERSION,
    Finding,
    Severity,
    findings_document,
    findings_ok,
    tally,
)
from repro.analysis.interproc import (
    CallGraph,
    CallSite,
    CostPoly,
    FunctionLoopInfo,
    FunctionSummary,
    LoopBound,
    ProgramAnalysis,
    analyze_program,
    unreachable_functions,
)
from repro.analysis.planner import (
    BUDGETS,
    FunctionPlan,
    PlanBudget,
    StrategyPlan,
    plan_program,
)
from repro.analysis.reconcile import (
    ReconcileVerdict,
    measured_function_checks,
    reconcile,
    reconcile_manifest,
    reconcile_plan,
    reconcile_profile,
    reconcile_stream,
)
from repro.analysis.rules import (
    ProgramRule,
    Rule,
    Suppressions,
    all_program_rules,
    all_rules,
    get_rule,
    program_rule,
    run_program_rules,
    run_rules,
)

__all__ = [
    "BUDGETS",
    "CallGraph",
    "CallSite",
    "CostPoly",
    "FINDINGS_SCHEMA_VERSION",
    "FunctionLoopInfo",
    "FunctionPlan",
    "FunctionSummary",
    "LoopBound",
    "PlanBudget",
    "ProgramAnalysis",
    "ProgramRule",
    "StrategyPlan",
    "all_program_rules",
    "analyze_program",
    "findings_document",
    "findings_ok",
    "measured_function_checks",
    "plan_program",
    "program_rule",
    "reconcile_plan",
    "run_program_rules",
    "tally",
    "unreachable_functions",
    "AuditContext",
    "AuditReport",
    "CostCertificate",
    "Finding",
    "FunctionCostBound",
    "IncrementalCertifier",
    "ReconcileVerdict",
    "Rule",
    "Severity",
    "Suppressions",
    "STRATEGY_MISMATCH_RULE",
    "all_rules",
    "audit_function",
    "audit_program",
    "build_certificate",
    "checking_projection",
    "function_cost_bound",
    "get_rule",
    "reconcile",
    "reconcile_manifest",
    "reconcile_profile",
    "reconcile_stream",
    "run_rules",
]
