"""Shared static facts about one transformed function.

Every auditor rule and the cost-bound analysis read the same
:class:`AuditContext`: the decoded CFG, the checking/duplicated-code
partition, the *checking projection* (the CFG with every check edge
forced to its not-taken side), and the classification of each check as
entry-, backedge-, or residual-placed.

Two facts about CFGs decoded from linear bytecode make the analysis
exact rather than heuristic:

* ``CFG.from_function`` assigns block ids in ascending pc order, so
  "``dst <= src``" on block ids is precisely the VM's notion of a
  *backward jump* (the runtime counter Property 1 charges against).
* ``CHECK`` lowers to ``CHECK taken_pc`` followed by the fallthrough
  continuation, so a check's not-taken path is the block chain that
  physically follows it.

The classification mirrors the paper's charging argument (§2): a check
is *entry-chargeable* when it is the function's entry block (each
execution is paid for by a counted CALL/SPAWN), and *backedge-chargeable*
when its not-taken continuation transfers backward before executing
anything else (each not-taken execution is paid for by a counted
backward jump; a taken execution is paid for by ``checks_taken``).
Checks that are neither — Partial-Duplication's re-entry checks from
removed top-nodes — are *residual*; they stay within the Full-
Duplication bound by the paper's §3.1 argument (the removed→kept
boundary is crossed at most once per entry or iteration).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.bytecode.function import Function
from repro.cfg.basic_block import BasicBlock, CheckBranch, Goto
from repro.cfg.graph import CFG
from repro.cfg.loops import NaturalLoop, natural_loops, sampling_backedges

#: Strategy note values (mirrors ``Strategy.value`` without importing
#: :mod:`repro.sampling`, which imports *us* for its properties shim).
EXHAUSTIVE = "exhaustive"
FULL_DUPLICATION = "full-duplication"
PARTIAL_DUPLICATION = "partial-duplication"
NO_DUPLICATION = "no-duplication"
CHECKS_ONLY_ENTRY = "checks-only-entry"
CHECKS_ONLY_BACKEDGE = "checks-only-backedge"

#: Strategies whose output carries CHECK-based sampling structure.
CHECKED_STRATEGIES = frozenset(
    {
        FULL_DUPLICATION,
        PARTIAL_DUPLICATION,
        CHECKS_ONLY_ENTRY,
        CHECKS_ONLY_BACKEDGE,
    }
)

#: Strategies that duplicate code (and must keep the duplicate acyclic).
DUPLICATING_STRATEGIES = frozenset({FULL_DUPLICATION, PARTIAL_DUPLICATION})


def checking_projection(cfg: CFG) -> CFG:
    """The CFG with every :class:`CheckBranch` forced not-taken.

    Blocks keep their ids and share instruction lists with *cfg* (the
    projection is read-only); every check terminator becomes
    ``Goto(fallthrough)``. Reachability in the projection *is* the
    checking code: the blocks execution can touch when no sample ever
    fires.
    """
    proj = CFG(cfg.name, cfg.num_params, cfg.num_locals)
    for bid, block in cfg.blocks.items():
        term = block.terminator
        if isinstance(term, CheckBranch):
            new_term = Goto(term.fallthrough)
        else:
            new_term = term.copy()
        proj.blocks[bid] = BasicBlock(bid, block.instructions, new_term)
    proj.entry = cfg.entry
    proj._next_bid = cfg._next_bid
    return proj


class CheckKind:
    ENTRY = "entry"
    BACKEDGE = "backedge"
    RESIDUAL = "residual"


class AuditContext:
    """Lazily computed static facts for one function under audit."""

    def __init__(self, fn: Function, strategy: Optional[str] = None):
        self.fn = fn
        self.strategy: str = (
            strategy
            if strategy is not None
            else str(fn.notes.get("sampling", EXHAUSTIVE))
        )
        self.sample_iterations = int(fn.notes.get("sample_iterations", 1))
        self._cfg: Optional[CFG] = None
        self._proj: Optional[CFG] = None
        self._checking: Optional[FrozenSet[int]] = None
        self._reachable: Optional[FrozenSet[int]] = None
        self._preds: Optional[Dict[int, List[int]]] = None
        self._classification: Optional[Dict[int, str]] = None
        self._charged_edges: Optional[Dict[int, Tuple[int, int]]] = None
        self._chain_edges: Optional[Dict[int, List[Tuple[int, int]]]] = None
        self._proj_loops: Optional[List[NaturalLoop]] = None
        self._proj_backedges: Optional[List[Tuple[int, int]]] = None

    # -- graphs ----------------------------------------------------------

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = CFG.from_function(self.fn)
        return self._cfg

    @property
    def projection(self) -> CFG:
        if self._proj is None:
            self._proj = checking_projection(self.cfg)
        return self._proj

    @property
    def reachable(self) -> FrozenSet[int]:
        if self._reachable is None:
            self._reachable = frozenset(self.cfg.reachable())
        return self._reachable

    @property
    def checking(self) -> FrozenSet[int]:
        """Checking-code block ids (projection reachability)."""
        if self._checking is None:
            self._checking = frozenset(self.projection.reachable())
        return self._checking

    @property
    def duplicated(self) -> FrozenSet[int]:
        """Duplicated-code block ids (reachable but not checking)."""
        return self.reachable - self.checking

    @property
    def predecessors(self) -> Dict[int, List[int]]:
        if self._preds is None:
            self._preds = self.cfg.predecessors_map()
        return self._preds

    # -- checks ----------------------------------------------------------

    @property
    def check_bids(self) -> List[int]:
        """Reachable blocks ending in a check, ascending."""
        return [
            bid
            for bid in sorted(self.reachable)
            if isinstance(self.cfg.block(bid).terminator, CheckBranch)
        ]

    @property
    def checking_check_bids(self) -> List[int]:
        """Checks that sit inside the checking code."""
        return [bid for bid in self.check_bids if bid in self.checking]

    @property
    def classification(self) -> Dict[int, str]:
        """Check block id -> :class:`CheckKind` constant."""
        if self._classification is None:
            self._classify()
        return self._classification

    @property
    def charged_edges(self) -> Dict[int, Tuple[int, int]]:
        """Backedge-chargeable check -> the backward edge that pays it."""
        if self._charged_edges is None:
            self._classify()
        return self._charged_edges

    def _classify(self) -> None:
        classification: Dict[int, str] = {}
        charged: Dict[int, Tuple[int, int]] = {}
        for bid in self.check_bids:
            block = self.cfg.block(bid)
            if (
                bid == self.cfg.entry
                and not block.instructions
                and not self.predecessors.get(bid)
            ):
                classification[bid] = CheckKind.ENTRY
                continue
            edge = self._backward_continuation(bid)
            if edge is not None:
                classification[bid] = CheckKind.BACKEDGE
                charged[bid] = edge
            else:
                classification[bid] = CheckKind.RESIDUAL
        self._classification = classification
        self._charged_edges = charged

    def _backward_continuation(
        self, check_bid: int
    ) -> Optional[Tuple[int, int]]:
        """The first backward (pc-decreasing) hop on the check's
        not-taken continuation, provided nothing executes before it.

        Follows the fallthrough through empty ``Goto`` blocks; returns
        the backward edge ``(src, dst)`` or None if the continuation
        runs an instruction, branches, or only moves forward. When this
        returns an edge, every not-taken execution of the check is
        immediately followed by a counted backward jump.
        """
        prev = check_bid
        cur = self.cfg.block(check_bid).terminator.fallthrough
        seen: Set[int] = set()
        while True:
            if cur <= prev:
                return (prev, cur)
            if cur in seen:
                return None
            seen.add(cur)
            block = self.cfg.block(cur)
            if block.instructions or not isinstance(block.terminator, Goto):
                return None
            prev, cur = cur, block.terminator.target

    @property
    def check_chain_edges(self) -> Dict[int, List[Tuple[int, int]]]:
        """Check block id -> every edge on its not-taken free chain.

        The chain is the maximal run of empty ``Goto`` blocks the
        not-taken continuation traverses without executing anything
        (the same walk :meth:`_backward_continuation` charges from,
        but continued past the first backward hop). A backedge whose
        edge appears on some check's chain is guarded: the check fires
        on every traversal of that edge.
        """
        if self._chain_edges is None:
            chains: Dict[int, List[Tuple[int, int]]] = {}
            for bid in self.check_bids:
                edges: List[Tuple[int, int]] = []
                prev = bid
                cur = self.cfg.block(bid).terminator.fallthrough
                seen: Set[int] = set()
                while True:
                    edges.append((prev, cur))
                    if cur in seen:
                        break
                    seen.add(cur)
                    block = self.cfg.block(cur)
                    if block.instructions or not isinstance(
                        block.terminator, Goto
                    ):
                        break
                    prev, cur = cur, block.terminator.target
                chains[bid] = edges
            self._chain_edges = chains
        return self._chain_edges

    # -- projection structure --------------------------------------------

    @property
    def projection_backward_edges(self) -> List[Tuple[int, int]]:
        """Backward (pc-order retreating) edges of the checking code.

        ``dst <= src`` on block ids is exactly the VM's backward-jump
        accounting, so these are the edges whose traversals Property 1
        counts as backedge opportunities. A superset of
        :attr:`projection_sampling_backedges`: the linearizer also lays
        loop-free forward control flow (shared ``||`` arms, merged
        continues) at retreating pcs, and those traversals *add*
        opportunities without requiring checks.
        """
        proj = self.projection
        return sorted(
            (src, dst)
            for src in self.checking
            for dst in proj.block(src).successors()
            if dst <= src
        )

    @property
    def projection_sampling_backedges(self) -> List[Tuple[int, int]]:
        """Loop backedges of the checking code — the edges the strategy
        promises to guard (natural-loop backedges plus irreducible
        retreating edges, the same notion the transforms place
        trampolines on)."""
        if self._proj_backedges is None:
            self._proj_backedges = sampling_backedges(self.projection)
        return self._proj_backedges

    @property
    def projection_loops(self) -> List[NaturalLoop]:
        if self._proj_loops is None:
            self._proj_loops = natural_loops(self.projection)
        return self._proj_loops

    # -- instrumentation --------------------------------------------------

    def instrumented_checking_blocks(self) -> List[int]:
        return [
            bid
            for bid in sorted(self.checking)
            if self.cfg.block(bid).has_instrumentation()
        ]
