"""Static↔dynamic reconciliation: validate a run against its certificate.

The reconciler closes the loop the paper argues only statically: after a
run, the observed :class:`~repro.vm.tracing.ExecStats` counters must
satisfy the :class:`~repro.analysis.cost.CostCertificate` bound derived
before the run. ``ExperimentRunner`` reconciles every audited cell and
raises on violation, making Property 1 a hard error in every experiment
rather than a test-suite assertion; manifests embed the verdict next to
the stats so archived runs can be re-checked offline
(:func:`reconcile_manifest`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.analysis.cost import CostCertificate, _stat
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ReconcileVerdict:
    """Outcome of validating one run against one certificate."""

    ok: bool
    bound: int
    observed: int
    formula: str
    violations: List[str] = field(default_factory=list)
    #: True when the reconciled stream ended in a truncated trailing
    #: segment (crash read-back) — the lower bound was waived.
    truncated: bool = False

    def summary(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        suffix = " (truncated stream)" if self.truncated else ""
        return (
            f"checks {self.observed} <= static bound {self.bound}: "
            f"{status}{suffix}"
        )

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "ok": self.ok,
            "bound": self.bound,
            "observed": self.observed,
            "formula": self.formula,
            "violations": list(self.violations),
        }
        if self.truncated:
            payload["truncated"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReconcileVerdict":
        return cls(
            ok=payload["ok"],
            bound=payload["bound"],
            observed=payload["observed"],
            formula=payload.get("formula", ""),
            violations=list(payload.get("violations", [])),
            truncated=bool(payload.get("truncated", False)),
        )


def reconcile(
    certificate: CostCertificate, stats: Union[Mapping[str, Any], Any]
) -> ReconcileVerdict:
    """Check one run's counters against the static certificate.

    *stats* is an ExecStats or its ``as_dict()`` form. The verdict never
    raises — callers decide whether a violation is fatal (the harness
    does; ``repro audit`` reports and sets the exit code).
    """
    violations = certificate.violations(stats)
    return ReconcileVerdict(
        ok=not violations,
        bound=certificate.bound_against(stats),
        observed=_stat(stats, "checks_executed"),
        formula=certificate.formula,
        violations=violations,
    )


def reconcile_profile(snapshot: Mapping[str, Any]) -> ReconcileVerdict:
    """Check an :class:`~repro.profiling.OverheadProfiler` snapshot
    against its Property-1-style sample bound.

    The profiler drives a counter trigger from the engines' observer
    boundaries, so the same argument that caps guest samples caps
    profiler samples: ``samples <= boundaries // interval + 1`` (one
    in-flight countdown per run). A merged snapshot whose parts
    disagree on the interval carries ``interval: None`` and cannot be
    re-checked — that raises, since calling this on such a snapshot is
    a harness bug, not a bound violation.
    """
    interval = snapshot.get("interval")
    if not interval:
        raise AnalysisError(
            "profile snapshot carries no sample interval "
            "(merged from runs with differing intervals?)"
        )
    boundaries = int(snapshot.get("boundaries", 0))
    samples = int(snapshot.get("samples", 0))
    # One countdown may be in flight per profiled run; merged snapshots
    # sum ``runs`` so the slack scales with the number of folds.
    runs = max(1, int(snapshot.get("runs", 1)))
    bound = boundaries // int(interval) + runs
    violations = []
    if samples > bound:
        violations.append(
            f"profiler took {samples} samples but {boundaries} "
            f"boundaries at interval {interval} admit at most {bound}"
        )
    return ReconcileVerdict(
        ok=not violations,
        bound=bound,
        observed=samples,
        formula="samples <= boundaries // interval + runs",
        violations=violations,
    )


def reconcile_stream(
    stats: Union[Mapping[str, Any], Any],
    records,
    dropped_events: int = 0,
    truncated: bool = False,
) -> ReconcileVerdict:
    """Check a (possibly compacted, possibly truncated) telemetry stream
    against the run's counters.

    Every sample the VM counted emits exactly one ``sample.fired``
    event, so the stream's sample weight can never exceed
    ``samples_taken``, and can fall short only by what ring evictions
    discarded — *dropped_events* is the eviction loss **in original
    events** (:attr:`CompactingRecorder.dropped_events`; a plain
    recorder's ``ring.dropped``). *records* may mix plain events and
    :class:`~repro.telemetry.compaction.SuppressedRun` entries; runs
    count with their full weight.

    Pass ``truncated=True`` for a stream read back from a spool whose
    tail was cut off mid-write (``SpoolReader.truncated``): an
    arbitrary suffix of events is then legitimately missing, so the
    lower bound is waived and the verdict reports ``truncated=True``
    instead of a violation. The upper bound still applies — a crash
    cannot *add* samples.
    """
    from repro.telemetry.compaction import record_weight
    from repro.telemetry.events import SAMPLE_FIRED, Event

    stream_samples = sum(
        record_weight(rec)
        for rec in records
        if (rec.kind if isinstance(rec, Event) else rec.first.kind)
        == SAMPLE_FIRED
    )
    taken = _stat(stats, "checks_taken") + _stat(
        stats, "guarded_checks_taken"
    )
    violations = []
    if stream_samples > taken:
        violations.append(
            f"stream carries {stream_samples} samples but the run "
            f"took only {taken}"
        )
    if not truncated and taken - dropped_events > stream_samples:
        violations.append(
            f"stream carries {stream_samples} samples; the run took "
            f"{taken} and only {dropped_events} were evicted — "
            f"{taken - dropped_events - stream_samples} unaccounted for"
        )
    return ReconcileVerdict(
        ok=not violations,
        bound=taken,
        observed=stream_samples,
        formula="samples_taken - dropped <= stream samples <= samples_taken",
        violations=violations,
        truncated=truncated,
    )


#: Labelled counter the plan reconciler reads measured per-function
#: check counts from (maintained by TelemetryRecorder.check on every
#: executed CHECK, so it is engine-identical by construction).
PLAN_CHECKS_METRIC = "vm.checks.by_function"


def measured_function_checks(
    snapshot: Mapping[str, Any]
) -> Dict[str, int]:
    """Extract per-function executed-check counts from a metrics
    snapshot (``{"vm.checks.by_function{function=main}": {...}}``)."""
    prefix = PLAN_CHECKS_METRIC + "{function="
    out: Dict[str, int] = {}
    for key, payload in snapshot.items():
        if not key.startswith(prefix) or not key.endswith("}"):
            continue
        name = key[len(prefix):-1]
        value = (
            payload.get("value", 0)
            if isinstance(payload, Mapping)
            else payload
        )
        out[name] = int(value)
    return out


def reconcile_plan(
    certificate: CostCertificate,
    stats: Union[Mapping[str, Any], Any],
    metrics: Optional[Mapping[str, Any]] = None,
) -> ReconcileVerdict:
    """Validate a (possibly mixed-strategy) run *per function*.

    Two layers, both hard bounds rather than planner predictions:

    * the whole-program certificate bound (same as :func:`reconcile`);
    * when a metrics snapshot is supplied, each function's measured
      executed-check count against its own certified bound
      (:meth:`FunctionCostBound.bound_against`) — in particular a
      function planned as no-duplication or left exhaustive has bound
      **0** and must never execute a CHECK. Per-function counts are
      charged against the run's *global* entry/backedge opportunity
      totals, which over-approximates each function's own share, so
      the per-function checks stay sound for any strategy mix and for
      code loaded mid-run (the dynamic certificate's function table
      covers arrivals). A function that executed checks but appears in
      no certificate is itself a violation.
    """
    violations = list(certificate.violations(stats))
    if metrics:
        measured = measured_function_checks(metrics)
        bounds = certificate.function_bounds_against(stats)
        covered = {f.function for f in certificate.functions}
        for name in sorted(measured):
            observed = measured[name]
            if name not in covered:
                violations.append(
                    f"function {name!r} executed {observed} check(s) "
                    "but the certificate does not cover it"
                )
                continue
            bound = bounds[name]
            if observed > bound:
                violations.append(
                    f"function {name!r} executed {observed} check(s), "
                    f"exceeding its certified bound {bound} "
                    f"({certificate.function_bound(name).formula})"
                )
    return ReconcileVerdict(
        ok=not violations,
        bound=certificate.bound_against(stats),
        observed=_stat(stats, "checks_executed"),
        formula=(
            "per function: checks_executed[f] <= cpe_f*(calls + "
            "threads_spawned + 1) + cpb_f*(backward_jumps + checks_taken)"
        ),
        violations=violations,
    )


def reconcile_manifest(manifest) -> ReconcileVerdict:
    """Re-validate an archived :class:`RunManifest` offline.

    Reads the certificate embedded under ``manifest.analysis`` and the
    stats dict recorded at run time; raises :class:`AnalysisError` when
    the manifest was produced without the auditor enabled.
    """
    payload = getattr(manifest, "analysis", None) or {}
    cert_payload = payload.get("certificate")
    if not cert_payload:
        raise AnalysisError(
            "manifest carries no cost certificate "
            "(was the run audited? see ExperimentRunner(audit=...))"
        )
    certificate = CostCertificate.from_dict(cert_payload)
    return reconcile(certificate, manifest.stats)
