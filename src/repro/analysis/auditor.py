"""The auditor facade: run every applicable rule over a transformed
program and assemble findings plus the cost certificate into one
:class:`AuditReport`.

Per-function strategy resolution: the sampling framework stamps
``fn.notes["sampling"]`` on everything it transforms, so each function
is audited under the strategy that actually produced it. A caller-
supplied expected strategy is cross-checked against the stamp (finding
``AUD009`` on mismatch); functions with no stamp — untransformed code,
or exhaustive instrumentation — get lints and cost accounting only,
never the placement invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.context import EXHAUSTIVE, AuditContext
from repro.analysis.cost import (
    CostCertificate,
    FunctionCostBound,
    build_certificate,
    function_cost_bound,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Suppressions, run_program_rules, run_rules
from repro.bytecode.function import Function
from repro.bytecode.program import Program

#: Pseudo-rule id for the auditor-level strategy-label cross-check (not
#: in the registry: it guards the audit request, not the audited CFG).
STRATEGY_MISMATCH_RULE = "AUD009"


@dataclass
class AuditReport:
    """Findings + certificate for one audited program (or function)."""

    label: str
    strategy: Optional[str]
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    certificate: Optional[CostCertificate] = None
    functions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing at ERROR severity survived suppression."""
        return not any(
            f.severity >= Severity.ERROR for f in self.findings
        )

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def worst_severity(self) -> Optional[Severity]:
        return max(
            (f.severity for f in self.findings), default=None
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.functions)} function(s) audited",
            f"{self.count(Severity.ERROR)} error(s)",
            f"{self.count(Severity.WARNING)} warning(s)",
        ]
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed")
        return ", ".join(parts)

    def render(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(f"{self.label}: {self.summary()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "strategy": self.strategy,
            "ok": self.ok,
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "suppressed": self.suppressed,
            "functions": list(self.functions),
            "findings": [f.as_dict() for f in self.findings],
            "certificate": (
                self.certificate.as_dict()
                if self.certificate is not None
                else None
            ),
        }


def audit_function(
    fn: Function,
    strategy: Optional[str] = None,
    suppressions: Optional[Suppressions] = None,
) -> List[Finding]:
    """Run every applicable rule over one function; returns findings.

    *strategy* overrides the function's ``notes["sampling"]`` stamp
    (useful for auditing hand-built functions in tests); by default
    the stamp decides which rules apply.
    """
    ctx = AuditContext(fn, strategy=strategy)
    findings = run_rules(ctx)
    if suppressions is not None:
        findings, _ = suppressions.apply(findings)
    return findings


def audit_program(
    program: Program,
    strategy: Optional[str] = None,
    suppressions: Optional[Suppressions] = None,
    functions: Optional[Iterable[str]] = None,
    label: Optional[str] = None,
    program_rules: bool = False,
) -> AuditReport:
    """Audit every (or the named) function of *program*.

    Returns an :class:`AuditReport` whose certificate covers exactly
    the audited functions; ``report.ok`` is the audit verdict.
    *program_rules* additionally runs the whole-program rules (LNT004
    unreachable-function analysis over the interprocedural call graph);
    ``repro lint``/``repro audit`` enable it, the per-cell harness audit
    keeps the per-function invariant set.
    """
    names = (
        list(functions) if functions is not None else program.function_names()
    )
    report = AuditReport(
        label=label or "program",
        strategy=strategy,
        functions=list(names),
    )
    contexts: List[AuditContext] = []
    all_findings: List[Finding] = []
    for name in names:
        fn = program.function(name)
        stamped = fn.notes.get("sampling")
        if (
            strategy is not None
            and stamped is not None
            and stamped != strategy
        ):
            all_findings.append(
                Finding(
                    rule_id=STRATEGY_MISMATCH_RULE,
                    severity=Severity.ERROR,
                    function=name,
                    message=(
                        f"function is stamped {stamped!r} but the audit "
                        f"expected {strategy!r}"
                    ),
                )
            )
        # The stamp is authoritative for rule selection; the expected
        # strategy only fills in when the function carries no stamp at
        # all (it was never transformed -> lints + cost only).
        effective = stamped if stamped is not None else EXHAUSTIVE
        ctx = AuditContext(fn, strategy=effective)
        contexts.append(ctx)
        all_findings.extend(run_rules(ctx))
    if program_rules:
        all_findings.extend(run_program_rules(program))
    if suppressions is not None:
        all_findings, report.suppressed = suppressions.apply(all_findings)
    report.findings = all_findings
    report.certificate = build_certificate(
        report.label, strategy or EXHAUSTIVE, contexts
    )
    return report


class IncrementalCertifier:
    """Certificate maintenance for dynamically growing programs.

    A program with loadables changes its function table mid-run
    (``LOADFN``/``REPLACEFN``), so the certificate audited before the
    run stops describing the code that actually executed. The certifier
    subscribes to the VM's code-event stream (:meth:`attach`, via
    ``VM.on_code_event``) and, at every load/replace event, audits
    **only the arriving function** and folds its
    :class:`FunctionCostBound` into the running per-function state — a
    certificate *delta*, not a from-scratch rebuild.

    Two certificates come out the other end:

    * :meth:`snapshot` — the bounds of the functions *currently*
      installed. By construction this equals a from-scratch
      :func:`audit_program` of the final program (the delta-vs-rebuild
      reconciliation the tests assert).
    * :meth:`dynamic_certificate` — the snapshot's functions under
      **monotone** ``cpe``/``cpb`` coefficients: the maximum over every
      version that was ever installed (and the pre-run seed). Retired
      versions executed checks before they were swapped out, so
      validating a run's counters against the *final* coefficients
      alone would be unsound — e.g. replacing a checked body with a
      check-free one must not retroactively assert
      ``checks_executed == 0``. Coefficients only ever grow, exactly
      like the run's counters.

    Every event also runs the full placement-rule set over the arriving
    function; findings ride on the event record, and :attr:`ok` is
    False if any event introduced an ERROR-severity finding.
    """

    def __init__(self, strategy: Optional[str] = None, label: str = "program"):
        self.strategy = strategy
        self.label = label
        self._bounds: Dict[str, FunctionCostBound] = {}
        self._floor_cpe = 0
        self._floor_cpb = 0
        self.events: List[Dict[str, Any]] = []

    # -- construction ----------------------------------------------------

    @classmethod
    def from_program(
        cls,
        program: Program,
        strategy: Optional[str] = None,
        label: str = "program",
    ) -> "IncrementalCertifier":
        """Seed the certifier with the program's pre-run function table
        (the same per-function facts :func:`audit_program` derives)."""
        certifier = cls(strategy=strategy, label=label)
        for name in program.function_names():
            fn = program.function(name)
            certifier._bounds[name] = certifier._audit_one(fn)
        certifier._raise_floor()
        return certifier

    def attach(self, vm) -> "IncrementalCertifier":
        """Subscribe to *vm*'s load/replace event stream."""
        vm.on_code_event = self.on_event
        return self

    # -- event stream ----------------------------------------------------

    def on_event(
        self, kind: str, name: str, template: str, fn: Function
    ) -> None:
        """Fold one load/replace event into the running certificate.

        Matches the ``VM.on_code_event`` signature: *kind* is ``"load"``
        or ``"replace"``, *fn* is the function actually installed (the
        instrumented body when a loader transformed the template).
        """
        ctx = AuditContext(
            fn, strategy=str(fn.notes.get("sampling", EXHAUSTIVE))
        )
        findings = run_rules(ctx)
        bound = function_cost_bound(ctx)
        previous = self._bounds.get(name)
        self._bounds[name] = bound
        self._raise_floor()
        self.events.append(
            {
                "kind": kind,
                "function": name,
                "template": template,
                "strategy": ctx.strategy,
                "bound": bound.as_dict(),
                "previous_bound": (
                    previous.as_dict() if previous is not None else None
                ),
                "findings": [f.as_dict() for f in findings],
                "errors": sum(
                    1 for f in findings if f.severity >= Severity.ERROR
                ),
                "checks_per_entry": self._floor_cpe,
                "checks_per_backedge": self._floor_cpb,
            }
        )

    # -- certificates ----------------------------------------------------

    def snapshot(self) -> CostCertificate:
        """Certificate of the currently installed function table —
        bit-equal to a from-scratch audit of the final program."""
        functions = [self._bounds[n] for n in sorted(self._bounds)]
        has_entry = any(
            f.entry_checks > 0 or f.residual_checks > 0 for f in functions
        )
        has_backedge = any(
            f.backedge_checks > 0 or f.residual_checks > 0
            for f in functions
        )
        return CostCertificate(
            label=self.label,
            strategy=self.strategy or EXHAUSTIVE,
            checks_per_entry=1 if has_entry else 0,
            checks_per_backedge=1 if has_backedge else 0,
            functions=functions,
        )

    def dynamic_certificate(self) -> CostCertificate:
        """The snapshot under the monotone coefficient floor — the
        certificate a run's :class:`ExecStats` must be validated
        against (retired function versions executed checks too)."""
        snap = self.snapshot()
        return CostCertificate(
            label=snap.label,
            strategy=snap.strategy,
            checks_per_entry=max(snap.checks_per_entry, self._floor_cpe),
            checks_per_backedge=max(
                snap.checks_per_backedge, self._floor_cpb
            ),
            functions=snap.functions,
        )

    # -- reporting -------------------------------------------------------

    @property
    def ok(self) -> bool:
        return all(event["errors"] == 0 for event in self.events)

    @property
    def loads(self) -> int:
        return sum(1 for e in self.events if e["kind"] == "load")

    @property
    def replaces(self) -> int:
        return sum(1 for e in self.events if e["kind"] == "replace")

    def as_dict(self) -> Dict[str, Any]:
        """Manifest payload (``analysis["incremental"]``)."""
        return {
            "ok": self.ok,
            "loads": self.loads,
            "replaces": self.replaces,
            "events": list(self.events),
            "certificate": self.snapshot().as_dict(),
            "dynamic_certificate": self.dynamic_certificate().as_dict(),
        }

    # -- helpers ---------------------------------------------------------

    def _audit_one(self, fn: Function) -> FunctionCostBound:
        ctx = AuditContext(
            fn, strategy=str(fn.notes.get("sampling", EXHAUSTIVE))
        )
        return function_cost_bound(ctx)

    def _raise_floor(self) -> None:
        bounds = self._bounds.values()
        if any(f.entry_checks > 0 or f.residual_checks > 0 for f in bounds):
            self._floor_cpe = 1
        if any(
            f.backedge_checks > 0 or f.residual_checks > 0 for f in bounds
        ):
            self._floor_cpb = 1
