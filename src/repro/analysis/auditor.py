"""The auditor facade: run every applicable rule over a transformed
program and assemble findings plus the cost certificate into one
:class:`AuditReport`.

Per-function strategy resolution: the sampling framework stamps
``fn.notes["sampling"]`` on everything it transforms, so each function
is audited under the strategy that actually produced it. A caller-
supplied expected strategy is cross-checked against the stamp (finding
``AUD009`` on mismatch); functions with no stamp — untransformed code,
or exhaustive instrumentation — get lints and cost accounting only,
never the placement invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.context import EXHAUSTIVE, AuditContext
from repro.analysis.cost import CostCertificate, build_certificate
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Suppressions, run_rules
from repro.bytecode.function import Function
from repro.bytecode.program import Program

#: Pseudo-rule id for the auditor-level strategy-label cross-check (not
#: in the registry: it guards the audit request, not the audited CFG).
STRATEGY_MISMATCH_RULE = "AUD009"


@dataclass
class AuditReport:
    """Findings + certificate for one audited program (or function)."""

    label: str
    strategy: Optional[str]
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    certificate: Optional[CostCertificate] = None
    functions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing at ERROR severity survived suppression."""
        return not any(
            f.severity >= Severity.ERROR for f in self.findings
        )

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def worst_severity(self) -> Optional[Severity]:
        return max(
            (f.severity for f in self.findings), default=None
        )

    def summary(self) -> str:
        parts = [
            f"{len(self.functions)} function(s) audited",
            f"{self.count(Severity.ERROR)} error(s)",
            f"{self.count(Severity.WARNING)} warning(s)",
        ]
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed")
        return ", ".join(parts)

    def render(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(f"{self.label}: {self.summary()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "strategy": self.strategy,
            "ok": self.ok,
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "suppressed": self.suppressed,
            "functions": list(self.functions),
            "findings": [f.as_dict() for f in self.findings],
            "certificate": (
                self.certificate.as_dict()
                if self.certificate is not None
                else None
            ),
        }


def audit_function(
    fn: Function,
    strategy: Optional[str] = None,
    suppressions: Optional[Suppressions] = None,
) -> List[Finding]:
    """Run every applicable rule over one function; returns findings.

    *strategy* overrides the function's ``notes["sampling"]`` stamp
    (useful for auditing hand-built functions in tests); by default
    the stamp decides which rules apply.
    """
    ctx = AuditContext(fn, strategy=strategy)
    findings = run_rules(ctx)
    if suppressions is not None:
        findings, _ = suppressions.apply(findings)
    return findings


def audit_program(
    program: Program,
    strategy: Optional[str] = None,
    suppressions: Optional[Suppressions] = None,
    functions: Optional[Iterable[str]] = None,
    label: Optional[str] = None,
) -> AuditReport:
    """Audit every (or the named) function of *program*.

    Returns an :class:`AuditReport` whose certificate covers exactly
    the audited functions; ``report.ok`` is the audit verdict.
    """
    names = (
        list(functions) if functions is not None else program.function_names()
    )
    report = AuditReport(
        label=label or "program",
        strategy=strategy,
        functions=list(names),
    )
    contexts: List[AuditContext] = []
    all_findings: List[Finding] = []
    for name in names:
        fn = program.function(name)
        stamped = fn.notes.get("sampling")
        if (
            strategy is not None
            and stamped is not None
            and stamped != strategy
        ):
            all_findings.append(
                Finding(
                    rule_id=STRATEGY_MISMATCH_RULE,
                    severity=Severity.ERROR,
                    function=name,
                    message=(
                        f"function is stamped {stamped!r} but the audit "
                        f"expected {strategy!r}"
                    ),
                )
            )
        # The stamp is authoritative for rule selection; the expected
        # strategy only fills in when the function carries no stamp at
        # all (it was never transformed -> lints + cost only).
        effective = stamped if stamped is not None else EXHAUSTIVE
        ctx = AuditContext(fn, strategy=effective)
        contexts.append(ctx)
        all_findings.extend(run_rules(ctx))
    if suppressions is not None:
        all_findings, report.suppressed = suppressions.apply(all_findings)
    report.findings = all_findings
    report.certificate = build_certificate(
        report.label, strategy or EXHAUSTIVE, contexts
    )
    return report
